"""Reproduction of *Distributed MST and Routing in Almost Mixing Time*.

Ghaffari, Kuhn, Su — PODC 2017.

Public API tour:

* :func:`repro.run` with a :class:`repro.RunConfig` — the front door:
  one frozen config (seed, params, backend, validate, trace, faults)
  executes any operation (``build`` / ``route`` / ``mst`` / ``mincut`` /
  ``clique``) and returns a :class:`~repro.runtime.RunOutcome` carrying
  the result, the ledger, and the trace.
* :mod:`repro.runtime` — the execution layer behind it:
  :class:`repro.RunContext` (named RNG streams, run ledger, structured
  trace events) and the oracle/native :class:`~repro.runtime.Backend`
  protocol.
* :class:`repro.ExpanderNetwork` — an object façade over the same
  machinery (one network, all applications).
* :mod:`repro.graphs`, :mod:`repro.walks`, :mod:`repro.congest` — the
  substrates: graph families and spectra, random-walk engines with
  congestion-measured scheduling (Lemmas 2.3–2.5), and a faithful
  CONGEST simulator with seeded fault injection
  (:class:`~repro.congest.FaultPlan`) and reliable delivery
  (:mod:`repro.congest.reliable`).

Two legacy per-function entry points remain as deprecated shims —
:func:`build_hierarchy` and :func:`minimum_spanning_tree` — and both
now dispatch through :func:`repro.run` (the op table in
:mod:`repro.runtime.ops` is the only dispatch site).  The other PR-1
entry points (``repro.Router``, ``repro.emulate_clique``,
``repro.approximate_min_cut``) were removed after five releases of
deprecation warnings: use ``repro.run("route" / "clique" / "mincut",
graph)`` or import the un-deprecated originals from :mod:`repro.core`.
"""

import warnings as _warnings

from . import baselines, congest, graphs, hashing, runtime, theory, walks
from .core import (
    Hierarchy,
    MstResult,
    MstRunner,
    RoundLedger,
    RoutingError,
    RoutingResult,
    build_g0,
    build_partition,
    build_portals,
)
from .params import Params
from .runtime import (
    RunConfig,
    RunContext,
    RunOutcome,
    Session,
    make_backend,
    run,
)
from .system import ExpanderNetwork

__version__ = "1.0.0"


def _deprecated(name: str, hint: str) -> None:
    _warnings.warn(
        f"repro.{name} is deprecated; use repro.run({hint}) with a "
        "RunConfig instead (repro.core keeps the un-deprecated "
        "original)",
        DeprecationWarning,
        stacklevel=3,
    )


def _reject_rng(name: str, rng) -> None:
    if rng is not None:
        raise TypeError(
            f"repro.{name} now dispatches through repro.run and takes "
            "seed= instead of rng= (named streams derive from the "
            f"seed); pass seed=, or use repro.core.{name} for the "
            "rng-based original"
        )


def build_hierarchy(graph, params=None, *, seed=0, rng=None):
    """Deprecated shim: ``repro.run("build", graph)`` via the op table.

    Returns the built :class:`~repro.core.hierarchy.Hierarchy`, exactly
    as ``run("build", graph, config=RunConfig(seed=seed,
    params=params)).result`` would.  The historical ``rng=`` argument
    is gone — runs are configured by seed; :func:`repro.core.\
build_hierarchy` keeps the rng-based signature.
    """
    _deprecated("build_hierarchy", "'build', graph")
    _reject_rng("build_hierarchy", rng)
    config = RunConfig(seed=seed, params=params)
    return run("build", graph, config=config).result


def minimum_spanning_tree(graph, params=None, *, seed=0, rng=None):
    """Deprecated shim: ``repro.run("mst", graph)`` via the op table.

    Returns the :class:`~repro.core.mst.MstResult`; unweighted graphs
    get i.i.d. uniform weights from the config's ``"weights"`` stream,
    exactly as the front door does.  ``rng=`` is gone (see
    :func:`build_hierarchy`); :func:`repro.core.minimum_spanning_tree`
    keeps the rng-based original.
    """
    _deprecated("minimum_spanning_tree", "'mst', graph")
    _reject_rng("minimum_spanning_tree", rng)
    config = RunConfig(seed=seed, params=params)
    return run("mst", graph, config=config).result


__all__ = [
    "baselines",
    "congest",
    "graphs",
    "hashing",
    "runtime",
    "theory",
    "walks",
    "RunConfig",
    "RunContext",
    "RunOutcome",
    "Session",
    "run",
    "make_backend",
    "Hierarchy",
    "MstResult",
    "MstRunner",
    "RoundLedger",
    "RoutingError",
    "RoutingResult",
    "build_g0",
    "build_hierarchy",
    "build_partition",
    "build_portals",
    "minimum_spanning_tree",
    "Params",
    "ExpanderNetwork",
    "__version__",
]
