"""Reproduction of *Distributed MST and Routing in Almost Mixing Time*.

Ghaffari, Kuhn, Su — PODC 2017.

Public API tour:

* :func:`repro.run` with a :class:`repro.RunConfig` — the front door:
  one frozen config (seed, params, backend, validate, trace, faults)
  executes any operation (``build`` / ``route`` / ``mst`` / ``mincut`` /
  ``clique``) and returns a :class:`~repro.runtime.RunOutcome` carrying
  the result, the ledger, and the trace.
* :mod:`repro.runtime` — the execution layer behind it:
  :class:`repro.RunContext` (named RNG streams, run ledger, structured
  trace events) and the oracle/native :class:`~repro.runtime.Backend`
  protocol.
* :class:`repro.ExpanderNetwork` — an object façade over the same
  machinery (one network, all applications).
* :mod:`repro.graphs`, :mod:`repro.walks`, :mod:`repro.congest` — the
  substrates: graph families and spectra, random-walk engines with
  congestion-measured scheduling (Lemmas 2.3–2.5), and a faithful
  CONGEST simulator with seeded fault injection
  (:class:`~repro.congest.FaultPlan`) and reliable delivery
  (:mod:`repro.congest.reliable`).

The original per-function entry points (:func:`build_hierarchy`,
:class:`Router`, :func:`minimum_spanning_tree`,
:func:`emulate_clique`, :func:`approximate_min_cut`) still work but are
deprecated in favour of :func:`repro.run`; importing them from
:mod:`repro.core` keeps the un-deprecated originals.
"""

import warnings as _warnings

from . import baselines, congest, graphs, hashing, runtime, theory, walks
from .core import (
    Hierarchy,
    MstResult,
    MstRunner,
    RoundLedger,
    RoutingError,
    RoutingResult,
    build_g0,
    build_partition,
    build_portals,
)
from .core import Router as _CoreRouter
from .core import approximate_min_cut as _approximate_min_cut
from .core import build_hierarchy as _build_hierarchy
from .core import emulate_clique as _emulate_clique
from .core import minimum_spanning_tree as _minimum_spanning_tree
from .params import Params
from .runtime import (
    RunConfig,
    RunContext,
    RunOutcome,
    Session,
    make_backend,
    run,
)
from .system import ExpanderNetwork

__version__ = "1.0.0"


def _deprecated(name: str, hint: str) -> None:
    _warnings.warn(
        f"repro.{name} is deprecated; use repro.run({hint}) with a "
        "RunConfig instead (repro.core keeps the un-deprecated "
        "original)",
        DeprecationWarning,
        stacklevel=3,
    )


def build_hierarchy(*args, **kwargs):
    """Deprecated shim over :func:`repro.core.build_hierarchy`."""
    _deprecated("build_hierarchy", "'build', graph")
    return _build_hierarchy(*args, **kwargs)


def minimum_spanning_tree(*args, **kwargs):
    """Deprecated shim over :func:`repro.core.minimum_spanning_tree`."""
    _deprecated("minimum_spanning_tree", "'mst', graph")
    return _minimum_spanning_tree(*args, **kwargs)


def emulate_clique(*args, **kwargs):
    """Deprecated shim over :func:`repro.core.emulate_clique`."""
    _deprecated("emulate_clique", "'clique', graph")
    return _emulate_clique(*args, **kwargs)


def approximate_min_cut(*args, **kwargs):
    """Deprecated shim over :func:`repro.core.approximate_min_cut`."""
    _deprecated("approximate_min_cut", "'mincut', graph")
    return _approximate_min_cut(*args, **kwargs)


class Router(_CoreRouter):
    """Deprecated alias of :class:`repro.core.router.Router`.

    Constructing it warns; behaviour is identical (it *is* the core
    router).  New code routes via ``repro.run("route", graph,
    config=RunConfig(...))``.
    """

    def __init__(self, *args, **kwargs):
        _deprecated("Router", "'route', graph")
        super().__init__(*args, **kwargs)


# Keep docstrings/introspection close to the originals.
build_hierarchy.__wrapped__ = _build_hierarchy
minimum_spanning_tree.__wrapped__ = _minimum_spanning_tree
emulate_clique.__wrapped__ = _emulate_clique
approximate_min_cut.__wrapped__ = _approximate_min_cut

__all__ = [
    "baselines",
    "congest",
    "graphs",
    "hashing",
    "runtime",
    "theory",
    "walks",
    "RunConfig",
    "RunContext",
    "RunOutcome",
    "Session",
    "run",
    "make_backend",
    "Hierarchy",
    "MstResult",
    "MstRunner",
    "RoundLedger",
    "Router",
    "RoutingError",
    "RoutingResult",
    "approximate_min_cut",
    "build_g0",
    "build_hierarchy",
    "build_partition",
    "build_portals",
    "emulate_clique",
    "minimum_spanning_tree",
    "Params",
    "ExpanderNetwork",
    "__version__",
]
