"""Reproduction of *Distributed MST and Routing in Almost Mixing Time*.

Ghaffari, Kuhn, Su — PODC 2017.

Public API tour:

* :func:`repro.build_hierarchy` — construct the hierarchical embedding of
  random graphs on a base graph (Section 3.1).
* :class:`repro.Router` — permutation routing on that structure
  (Section 3.2, Theorem 1.2).
* :func:`repro.minimum_spanning_tree` — distributed MST in almost mixing
  time (Section 4, Theorem 1.1).
* :func:`repro.emulate_clique` — congested-clique emulation
  (Theorem 1.3).
* :func:`repro.approximate_min_cut` — tree-packing approximate min cut
  (the Section 4 corollary).
* :mod:`repro.runtime` — the execution layer: :class:`repro.RunContext`
  (named RNG streams, run ledger, structured trace events) and the
  oracle/native :class:`~repro.runtime.Backend` protocol.
* :mod:`repro.graphs`, :mod:`repro.walks`, :mod:`repro.congest` — the
  substrates: graph families and spectra, random-walk engines with
  congestion-measured scheduling (Lemmas 2.3–2.5), and a faithful
  CONGEST simulator used by the baselines.
"""

from . import baselines, congest, graphs, hashing, runtime, theory, walks
from .core import (
    Hierarchy,
    MstResult,
    MstRunner,
    RoundLedger,
    Router,
    RoutingError,
    RoutingResult,
    approximate_min_cut,
    build_g0,
    build_hierarchy,
    build_partition,
    build_portals,
    emulate_clique,
    minimum_spanning_tree,
)
from .params import Params
from .runtime import RunContext, make_backend
from .system import ExpanderNetwork

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "congest",
    "graphs",
    "hashing",
    "runtime",
    "theory",
    "walks",
    "RunContext",
    "make_backend",
    "Hierarchy",
    "MstResult",
    "MstRunner",
    "RoundLedger",
    "Router",
    "RoutingError",
    "RoutingResult",
    "approximate_min_cut",
    "build_g0",
    "build_hierarchy",
    "build_partition",
    "build_portals",
    "emulate_clique",
    "minimum_spanning_tree",
    "Params",
    "ExpanderNetwork",
    "__version__",
]
