"""Drive an open-loop stream against a warm session; report percentiles.

The engine is the measurement half of the workload package: it takes a
:class:`~repro.workloads.scenarios.Scenario`, generates its
deterministic request stream, serves the stream against one warm
:class:`~repro.runtime.Session` (built once, amortized across the whole
run), and reduces the per-request outcomes to what a service under load
cares about:

* **delivery rounds** — the paper's currency, seed-deterministic and
  therefore gateable across machines;
* **wall latency** — per-request service seconds (machine-dependent,
  reported but never gated);
* **sojourn latency** — open-loop queueing delay: the stream's arrival
  schedule does not wait for the server, so a request's latency is
  ``completion - arrival`` with ``completion = max(arrival,
  previous_completion) + service``.

Two serving modes exercise the two public surfaces: ``"session"`` calls
:meth:`Session.submit` / :meth:`Session.route_batch` directly;
``"jsonl"`` replays the stream through :func:`~repro.runtime.serve_jsonl`
(the wire path, error records and all).  Both tolerate per-request
failures — a :class:`~repro.congest.faults.DeliveryTimeout` under an
injected fault plan becomes an error record, never a dead serving loop.
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import ExitStack
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from ..congest.faults import DeliveryTimeout
from ..graphs.graph import Graph
from ..rng import derive_rng, stream_entropy
from ..runtime.chaos import (
    ChaosPlan,
    ChaosSpec,
    corrupt_store_entry,
    kill_session,
    truncate_journal_tail,
)
from ..runtime.config import RunConfig
from ..runtime.journal import Journal
from ..runtime.resilience import ResiliencePolicy
from ..runtime.session import Request, Session, serve_jsonl
from ..runtime.store import HierarchyStore
from .generator import Workload, WorkloadSpec, generate_workload
from .scenarios import Scenario, get_scenario

__all__ = [
    "MODES",
    "PERCENTILES",
    "WorkloadReport",
    "fault_rate_curve",
    "offered_load_curve",
    "percentile_summary",
    "run_workload",
]

#: The reported latency/round percentiles.
PERCENTILES = (50, 95, 99)

#: Serving modes: direct session API, or the serve_jsonl wire path.
MODES = ("session", "jsonl")


def percentile_summary(values: Sequence[float]) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over ``values``.

    Linear-interpolated percentiles (``numpy.percentile`` default), so
    the summary of a deterministic series is itself deterministic.
    Empty input reports zeros rather than NaNs — a run where every
    request errored still writes a well-formed record.
    """
    if len(values) == 0:
        return {f"p{p}": 0.0 for p in PERCENTILES}
    data = np.asarray(values, dtype=np.float64)
    return {
        f"p{p}": float(np.percentile(data, p)) for p in PERCENTILES
    }


@dataclass(frozen=True)
class WorkloadReport:
    """What one sustained run measured.

    Attributes:
        scenario / mode / n / seed / epochs / batch: run identity.
        requests: route requests the generator scheduled.
        served: requests that produced a response.
        errors: requests (or updates) that produced an error record.
        updates / rebuilds: churn updates applied / of those, full
            rebuilds forced by the staleness bound.
        total_rounds: delivery rounds across all served requests
            (amortized per batch, so a batch's cost counts once).
        total_wall_s: server busy seconds (sum of service times).
        makespan_s: completion second of the last served request under
            the open-loop clock.
        offered_rps: the generator's scheduled load.
        achieved_rps: ``served / makespan_s``.
        rounds / wall_s / sojourn_s: p50/p95/p99 summaries of
            per-request delivery rounds, service wall seconds, and
            open-loop sojourn seconds.
    """

    scenario: str
    mode: str
    n: int
    seed: int
    epochs: int
    batch: int
    requests: int
    served: int
    errors: int
    updates: int
    rebuilds: int
    total_rounds: float
    total_wall_s: float
    makespan_s: float
    offered_rps: float
    achieved_rps: float
    rounds: dict[str, float]
    wall_s: dict[str, float]
    sojourn_s: dict[str, float]
    # Governed/chaos extension (PR 10) — all defaulted so ungoverned
    # reports (and their committed baselines) are byte-identical to
    # PR 9: summary() only emits these keys when ``governed`` is set.
    governed: bool = False
    goodput: int = 0
    deadline_miss: int = 0
    shed: int = 0
    circuit_open: int = 0
    timeouts: int = 0
    retries: int = 0
    breaker_trips: int = 0
    kills: int = 0
    recoveries: int = 0
    corruptions: int = 0
    truncations: int = 0
    fault_windows: int = 0
    recover_s: dict[str, float] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """JSON-safe report payload (the bench record's metrics shape).

        Deterministic fields (gateable): ``served``, ``errors``,
        ``updates``, ``rebuilds``, ``total_rounds``, ``rounds_p*`` —
        plus, on governed runs, the goodput/shed/deadline-miss/chaos
        counters.  Wall-clock fields (including time-to-recover) are
        reported for humans, never gated.
        """
        payload: dict[str, Any] = {
            "scenario": self.scenario,
            "mode": self.mode,
            "n": self.n,
            "seed": self.seed,
            "epochs": self.epochs,
            "batch": self.batch,
            "requests": self.requests,
            "served": self.served,
            "errors": self.errors,
            "updates": self.updates,
            "rebuilds": self.rebuilds,
            "total_rounds": float(self.total_rounds),
            "total_wall_s": round(self.total_wall_s, 6),
            "makespan_s": round(self.makespan_s, 6),
            "offered_rps": round(self.offered_rps, 3),
            "achieved_rps": round(self.achieved_rps, 3),
        }
        for name, pcts in (
            ("rounds", self.rounds),
            ("wall_s", self.wall_s),
            ("sojourn_s", self.sojourn_s),
        ):
            for key in sorted(pcts):
                payload[f"{name}_{key}"] = (
                    float(pcts[key])
                    if name == "rounds"
                    else round(pcts[key], 6)
                )
        if self.governed:
            attempted = max(1, self.requests)
            payload.update(
                goodput=self.goodput,
                deadline_miss=self.deadline_miss,
                shed=self.shed,
                circuit_open=self.circuit_open,
                timeouts=self.timeouts,
                retries=self.retries,
                breaker_trips=self.breaker_trips,
                deadline_miss_rate=round(
                    self.deadline_miss / attempted, 6
                ),
                shed_rate=round(self.shed / attempted, 6),
                goodput_rate=round(self.goodput / attempted, 6),
                kills=self.kills,
                recoveries=self.recoveries,
                corruptions=self.corruptions,
                truncations=self.truncations,
                fault_windows=self.fault_windows,
            )
            for key in sorted(self.recover_s):
                payload[f"recover_s_{key}"] = round(
                    self.recover_s[key], 6
                )
        return payload


def _as_scenario(
    scenario: Union[str, Scenario, WorkloadSpec]
) -> Scenario:
    """Coerce any accepted scenario spelling to a :class:`Scenario`."""
    if isinstance(scenario, str):
        return get_scenario(scenario)
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, WorkloadSpec):
        values = {
            spec_field.name: getattr(scenario, spec_field.name)
            for spec_field in fields(WorkloadSpec)
        }
        return Scenario(name="custom", **values)
    raise TypeError(
        "scenario must be a catalogue name, Scenario, or WorkloadSpec, "
        f"got {type(scenario).__name__}"
    )


def _drive(
    session: Session,
    workload: Workload,
    *,
    batch: int,
    mode: str,
) -> Iterator[dict[str, Any]]:
    """Serve the stream; yield response/update/error summary dicts."""
    if mode == "jsonl":
        yield from serve_jsonl(session, workload.records, batch=batch)
        return

    pending: list[Request] = []

    def flush() -> Iterator[dict[str, Any]]:
        if pending:
            group = list(pending)
            pending.clear()
            try:
                responses = session.route_batch(group)
            except DeliveryTimeout as error:
                yield {
                    "error": str(error),
                    "ids": [request.id for request in group],
                }
                return
            for response in responses:
                yield response.summary()

    for record in workload.records:
        if "update" in record:
            yield from flush()
            update = dict(record["update"])
            try:
                report = session.apply_update(
                    edges_added=update.get("edges_added", ()),
                    edges_removed=update.get("edges_removed", ()),
                    nodes_down=update.get("nodes_down", ()),
                )
            except (ValueError, TypeError, DeliveryTimeout) as error:
                yield {"error": str(error), "record": dict(record)}
                continue
            yield report.summary()
            continue
        request = Request(
            op=record["op"],
            args=dict(record["args"]),
            id=record.get("id"),
        )
        if batch > 0 and request.op == "route":
            pending.append(request)
            if len(pending) >= batch:
                yield from flush()
            continue
        yield from flush()
        try:
            yield session.submit(request).summary()
        except DeliveryTimeout as error:
            yield {"error": str(error), "id": request.id}
    yield from flush()


def run_workload(
    graph: Graph,
    scenario: Union[str, Scenario, WorkloadSpec],
    *,
    seed: int = 0,
    mode: str = "session",
    backend: str = "oracle",
    workers: int = 1,
    config: Optional[RunConfig] = None,
    policy: Optional[ResiliencePolicy] = None,
    chaos: Optional[ChaosSpec] = None,
) -> WorkloadReport:
    """One sustained multi-epoch run of ``scenario`` over ``graph``.

    Builds the hierarchy once (``Session.open``), then serves the
    scenario's full deterministic stream against the warm structure.
    The scenario's ``faults`` / ``recovery`` / ``batch`` knobs configure
    the serving side unless an explicit ``config`` overrides them.

    With a ``policy``
    (:class:`~repro.runtime.resilience.ResiliencePolicy`, or
    ``config.resilience``) and/or a ``chaos``
    (:class:`~repro.runtime.chaos.ChaosSpec`) campaign, serving runs
    through the governed loop: requests pass the breaker / admission /
    retry / deadline pipeline individually, chaos kills sever and
    recover the session through its write-ahead journal, and the
    report grows goodput, shed, deadline-miss, and time-to-recover
    columns.  Without either knob the classic ungoverned loop runs —
    bit-identical reports to before the resilience layer existed.
    """
    if mode not in MODES:
        raise ValueError(
            f"mode must be one of {MODES}, got {mode!r}"
        )
    resolved = _as_scenario(scenario)
    if config is None:
        config = RunConfig(
            seed=seed,
            backend=backend,
            faults=resolved.faults,
            recovery=resolved.recovery,
            workers=workers,
        )
    if policy is None:
        policy = config.resilience
    workload = generate_workload(graph, resolved, seed=seed)
    if policy is not None or (chaos is not None and not chaos.is_null):
        if mode != "session":
            raise ValueError(
                "governed/chaos runs serve requests individually; "
                f"use mode='session', got {mode!r}"
            )
        return _run_governed(
            graph,
            resolved,
            workload,
            config=config,
            policy=policy,
            chaos=chaos,
            seed=seed,
        )

    arrivals: dict[Optional[str], float] = {}
    for record, second in zip(workload.records, workload.arrivals):
        if "op" in record:
            arrivals[record.get("id")] = float(second)

    rounds_values: list[float] = []
    wall_values: list[float] = []
    sojourn_values: list[float] = []
    served = errors = updates = rebuilds = 0
    total_rounds = 0.0
    total_wall = 0.0
    clock = 0.0

    with Session.open(graph, config) as session:
        summaries = _drive(
            session, workload, batch=resolved.batch, mode=mode
        )
        for summary in summaries:
            if "error" in summary:
                errors += 1
                continue
            if "update" in summary:
                updates += 1
                rebuilds += int(bool(summary["update"]["rebuilt"]))
                continue
            served += 1
            size = int(summary.get("batch_size", 1))
            rounds = float(
                summary.get("rounds_amortized", summary["rounds"])
            )
            service = float(summary["wall_s"]) / size
            rounds_values.append(rounds)
            wall_values.append(service)
            total_rounds += rounds
            total_wall += service
            arrival = arrivals.get(summary.get("id"), clock)
            clock = max(clock, arrival) + service
            sojourn_values.append(clock - arrival)

    makespan = max(clock, 1e-9)
    return WorkloadReport(
        scenario=resolved.name,
        mode=mode,
        n=graph.num_nodes,
        seed=seed,
        epochs=resolved.epochs,
        batch=resolved.batch,
        requests=workload.requests,
        served=served,
        errors=errors,
        updates=updates,
        rebuilds=rebuilds,
        total_rounds=total_rounds,
        total_wall_s=total_wall,
        makespan_s=clock,
        offered_rps=workload.offered_rps,
        achieved_rps=served / makespan,
        rounds=percentile_summary(rounds_values),
        wall_s=percentile_summary(wall_values),
        sojourn_s=percentile_summary(sojourn_values),
    )


def _error_summary(
    error: Exception, request_id: Optional[str]
) -> dict[str, Any]:
    """A structured error record for an ungoverned serve failure."""
    payload: dict[str, Any] = {"error": str(error), "id": request_id}
    if isinstance(error, DeliveryTimeout):
        payload["kind"] = "delivery_timeout"
        payload["culprits"] = [list(c) for c in error.culprits]
    return payload


def _run_governed(
    graph: Graph,
    resolved: Scenario,
    workload: Workload,
    *,
    config: RunConfig,
    policy: Optional[ResiliencePolicy],
    chaos: Optional[ChaosSpec],
    seed: int,
) -> WorkloadReport:
    """The governed serving loop: per-request SLO pipeline + chaos.

    Requests are served individually through :meth:`Session.serve`
    (batched admission would blur per-request deadlines and arrival
    accounting).  When the chaos campaign can kill, the session runs
    over a temporary store + write-ahead journal so each kill can be
    recovered from durable state; the governor object is carried
    across recoveries, because the SLO timeline (virtual clock,
    in-flight completions, breaker state) belongs to the *service*,
    not to any single process incarnation.
    """
    plan: Optional[ChaosPlan] = None
    if chaos is not None and not chaos.is_null:
        plan = ChaosPlan(
            chaos,
            rng=derive_rng(int(config.seed), stream_entropy("chaos")),
        )

    arrivals: dict[Optional[str], float] = {}
    for record, second in zip(workload.records, workload.arrivals):
        if "op" in record:
            arrivals[record.get("id")] = float(second)

    rounds_values: list[float] = []
    wall_values: list[float] = []
    sojourn_values: list[float] = []
    recover_samples: list[float] = []
    served = errors = updates = rebuilds = 0
    kills = recoveries = corruptions = truncations = windows = 0
    timeouts_seen = 0
    total_rounds = 0.0
    total_wall = 0.0
    clock = 0.0

    recoverable = (ValueError, TypeError, DeliveryTimeout)
    with ExitStack() as stack:
        store: Optional[HierarchyStore] = None
        journal_path: Optional[str] = None
        if plan is not None and chaos is not None and chaos.kill_rate > 0:
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-chaos-")
            )
            store = HierarchyStore(os.path.join(tmp, "store"))
            journal_path = os.path.join(tmp, "journal.jsonl")
        session = Session.open(
            graph,
            config,
            store=store,
            journal=journal_path,
            policy=policy,
        )
        governor = session.governor
        window_left = 0
        window_stack = stack.enter_context(ExitStack())
        request_index = 0
        try:
            for record in workload.records:
                if "update" in record:
                    update = dict(record["update"])
                    try:
                        report = session.apply_update(
                            edges_added=update.get("edges_added", ()),
                            edges_removed=update.get("edges_removed", ()),
                            nodes_down=update.get("nodes_down", ()),
                        )
                    except recoverable:
                        errors += 1
                        continue
                    updates += 1
                    rebuilds += int(bool(report.rebuilt))
                    continue

                index = request_index
                request_index += 1
                action = plan.action(index) if plan is not None else None
                if (
                    action is not None
                    and action.kill
                    and journal_path is not None
                    and chaos is not None
                ):
                    window_stack.close()
                    window_left = 0
                    cache_key = session.cache_key
                    kill_session(session)
                    kills += 1
                    if action.corrupt and store is not None and cache_key:
                        corruptions += int(
                            corrupt_store_entry(store, cache_key)
                        )
                    if action.truncate:
                        truncations += int(
                            truncate_journal_tail(
                                journal_path, chaos.truncate_bytes
                            )
                        )
                    began = time.perf_counter()  # reprolint: disable=R003
                    session = Session.recover(
                        graph,
                        config,
                        journal=journal_path,
                        store=store,
                        policy=policy,
                    )
                    recover_samples.append(
                        time.perf_counter() - began  # reprolint: disable=R003
                    )
                    recoveries += 1
                    if governor is not None:
                        # The SLO timeline survives the crash.
                        session.governor = governor
                if (
                    action is not None
                    and action.open_window
                    and chaos is not None
                    and chaos.fault_spec is not None
                ):
                    window_stack.close()
                    window_stack = stack.enter_context(ExitStack())
                    window_stack.enter_context(
                        session.fault_window(
                            chaos.fault_spec, entropy=action.entropy
                        )
                    )
                    window_left = chaos.fault_window
                    windows += 1

                request = Request(
                    op=record["op"],
                    args=dict(record["args"]),
                    id=record.get("id"),
                )
                arrival = arrivals.get(request.id)
                try:
                    summary = session.serve(request, arrival_s=arrival)
                except recoverable as error:
                    summary = _error_summary(error, request.id)

                if "error" in summary:
                    errors += 1
                    if summary.get("kind") == "delivery_timeout":
                        timeouts_seen += 1
                else:
                    served += 1
                    rounds = float(summary["rounds"])
                    service = float(
                        summary.get("service_s", summary["wall_s"])
                    )
                    rounds_values.append(rounds)
                    wall_values.append(service)
                    total_rounds += rounds
                    total_wall += service
                    if "sojourn_s" in summary:
                        sojourn_values.append(float(summary["sojourn_s"]))
                    else:
                        start = arrival if arrival is not None else clock
                        clock = max(clock, start) + service
                        sojourn_values.append(clock - start)

                if window_left > 0:
                    window_left -= 1
                    if window_left == 0:
                        window_stack.close()
                        window_stack = stack.enter_context(ExitStack())
        finally:
            window_stack.close()
            session.close()

    if governor is not None:
        counts = governor.counters
        goodput = counts["goodput"]
        shed = counts["shed"]
        deadline_miss = counts["deadline_miss"]
        circuit_open = counts["circuit_open"]
        timeouts = counts["timeouts"]
        retries = counts["retries"]
        breaker_trips = counts["breaker_trips"]
        clock = max(clock, governor.clock)
    else:
        goodput = served
        shed = deadline_miss = circuit_open = 0
        retries = breaker_trips = 0
        timeouts = timeouts_seen

    makespan = max(clock, 1e-9)
    return WorkloadReport(
        scenario=resolved.name,
        mode="session",
        n=graph.num_nodes,
        seed=seed,
        epochs=resolved.epochs,
        batch=resolved.batch,
        requests=workload.requests,
        served=served,
        errors=errors,
        updates=updates,
        rebuilds=rebuilds,
        total_rounds=total_rounds,
        total_wall_s=total_wall,
        makespan_s=clock,
        offered_rps=workload.offered_rps,
        achieved_rps=served / makespan,
        rounds=percentile_summary(rounds_values),
        wall_s=percentile_summary(wall_values),
        sojourn_s=percentile_summary(sojourn_values),
        governed=True,
        goodput=int(goodput),
        deadline_miss=int(deadline_miss),
        shed=int(shed),
        circuit_open=int(circuit_open),
        timeouts=int(timeouts),
        retries=int(retries),
        breaker_trips=int(breaker_trips),
        kills=kills,
        recoveries=recoveries,
        corruptions=corruptions,
        truncations=truncations,
        fault_windows=windows,
        recover_s=(
            percentile_summary(recover_samples) if recover_samples else {}
        ),
    )


def fault_rate_curve(
    graph: Graph,
    scenario: Union[str, Scenario, WorkloadSpec],
    rates: Sequence[float],
    *,
    seed: int = 0,
    mode: str = "session",
    backend: str = "oracle",
) -> list[dict[str, Any]]:
    """Throughput vs. wire fault rate: one run per drop probability.

    Each point reruns the *same* deterministic request stream under a
    ``drop=<rate>`` fault plan (rate 0 = clean wire), so the curve
    isolates the fault knob.  Deterministic columns (served, errors,
    delivery-round percentiles) are gateable; throughput is wall-clock.
    """
    resolved = _as_scenario(scenario)
    points = []
    for rate in rates:
        spec = None if rate == 0 else f"drop={rate:g}"
        report = run_workload(
            graph,
            replace(resolved, faults=spec),
            seed=seed,
            mode=mode,
            backend=backend,
        )
        point = {"fault_rate": float(rate)}
        point.update(report.summary())
        points.append(point)
    return points


def offered_load_curve(
    graph: Graph,
    scenario: Union[str, Scenario, WorkloadSpec],
    rates_rps: Sequence[float],
    *,
    seed: int = 0,
    mode: str = "session",
    backend: str = "oracle",
) -> list[dict[str, Any]]:
    """Throughput and sojourn latency vs. offered load.

    Each point reruns the scenario with a different open-loop arrival
    rate; as the offered rate passes the server's capacity, achieved
    throughput saturates and sojourn percentiles blow up — the classic
    open-loop hockey stick.
    """
    resolved = _as_scenario(scenario)
    points = []
    for rate in rates_rps:
        report = run_workload(
            graph,
            replace(resolved, rate=float(rate)),
            seed=seed,
            mode=mode,
            backend=backend,
        )
        point = {"offered_rate": float(rate)}
        point.update(report.summary())
        points.append(point)
    return points
