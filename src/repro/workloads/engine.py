"""Drive an open-loop stream against a warm session; report percentiles.

The engine is the measurement half of the workload package: it takes a
:class:`~repro.workloads.scenarios.Scenario`, generates its
deterministic request stream, serves the stream against one warm
:class:`~repro.runtime.Session` (built once, amortized across the whole
run), and reduces the per-request outcomes to what a service under load
cares about:

* **delivery rounds** — the paper's currency, seed-deterministic and
  therefore gateable across machines;
* **wall latency** — per-request service seconds (machine-dependent,
  reported but never gated);
* **sojourn latency** — open-loop queueing delay: the stream's arrival
  schedule does not wait for the server, so a request's latency is
  ``completion - arrival`` with ``completion = max(arrival,
  previous_completion) + service``.

Two serving modes exercise the two public surfaces: ``"session"`` calls
:meth:`Session.submit` / :meth:`Session.route_batch` directly;
``"jsonl"`` replays the stream through :func:`~repro.runtime.serve_jsonl`
(the wire path, error records and all).  Both tolerate per-request
failures — a :class:`~repro.congest.faults.DeliveryTimeout` under an
injected fault plan becomes an error record, never a dead serving loop.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from ..congest.faults import DeliveryTimeout
from ..graphs.graph import Graph
from ..runtime.config import RunConfig
from ..runtime.session import Request, Session, serve_jsonl
from .generator import Workload, WorkloadSpec, generate_workload
from .scenarios import Scenario, get_scenario

__all__ = [
    "MODES",
    "PERCENTILES",
    "WorkloadReport",
    "fault_rate_curve",
    "offered_load_curve",
    "percentile_summary",
    "run_workload",
]

#: The reported latency/round percentiles.
PERCENTILES = (50, 95, 99)

#: Serving modes: direct session API, or the serve_jsonl wire path.
MODES = ("session", "jsonl")


def percentile_summary(values: Sequence[float]) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over ``values``.

    Linear-interpolated percentiles (``numpy.percentile`` default), so
    the summary of a deterministic series is itself deterministic.
    Empty input reports zeros rather than NaNs — a run where every
    request errored still writes a well-formed record.
    """
    if len(values) == 0:
        return {f"p{p}": 0.0 for p in PERCENTILES}
    data = np.asarray(values, dtype=np.float64)
    return {
        f"p{p}": float(np.percentile(data, p)) for p in PERCENTILES
    }


@dataclass(frozen=True)
class WorkloadReport:
    """What one sustained run measured.

    Attributes:
        scenario / mode / n / seed / epochs / batch: run identity.
        requests: route requests the generator scheduled.
        served: requests that produced a response.
        errors: requests (or updates) that produced an error record.
        updates / rebuilds: churn updates applied / of those, full
            rebuilds forced by the staleness bound.
        total_rounds: delivery rounds across all served requests
            (amortized per batch, so a batch's cost counts once).
        total_wall_s: server busy seconds (sum of service times).
        makespan_s: completion second of the last served request under
            the open-loop clock.
        offered_rps: the generator's scheduled load.
        achieved_rps: ``served / makespan_s``.
        rounds / wall_s / sojourn_s: p50/p95/p99 summaries of
            per-request delivery rounds, service wall seconds, and
            open-loop sojourn seconds.
    """

    scenario: str
    mode: str
    n: int
    seed: int
    epochs: int
    batch: int
    requests: int
    served: int
    errors: int
    updates: int
    rebuilds: int
    total_rounds: float
    total_wall_s: float
    makespan_s: float
    offered_rps: float
    achieved_rps: float
    rounds: dict[str, float]
    wall_s: dict[str, float]
    sojourn_s: dict[str, float]

    def summary(self) -> dict[str, Any]:
        """JSON-safe report payload (the bench record's metrics shape).

        Deterministic fields (gateable): ``served``, ``errors``,
        ``updates``, ``rebuilds``, ``total_rounds``, ``rounds_p*``.
        Wall-clock fields are reported for humans, never gated.
        """
        payload: dict[str, Any] = {
            "scenario": self.scenario,
            "mode": self.mode,
            "n": self.n,
            "seed": self.seed,
            "epochs": self.epochs,
            "batch": self.batch,
            "requests": self.requests,
            "served": self.served,
            "errors": self.errors,
            "updates": self.updates,
            "rebuilds": self.rebuilds,
            "total_rounds": float(self.total_rounds),
            "total_wall_s": round(self.total_wall_s, 6),
            "makespan_s": round(self.makespan_s, 6),
            "offered_rps": round(self.offered_rps, 3),
            "achieved_rps": round(self.achieved_rps, 3),
        }
        for name, pcts in (
            ("rounds", self.rounds),
            ("wall_s", self.wall_s),
            ("sojourn_s", self.sojourn_s),
        ):
            for key in sorted(pcts):
                payload[f"{name}_{key}"] = (
                    float(pcts[key])
                    if name == "rounds"
                    else round(pcts[key], 6)
                )
        return payload


def _as_scenario(
    scenario: Union[str, Scenario, WorkloadSpec]
) -> Scenario:
    """Coerce any accepted scenario spelling to a :class:`Scenario`."""
    if isinstance(scenario, str):
        return get_scenario(scenario)
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, WorkloadSpec):
        values = {
            spec_field.name: getattr(scenario, spec_field.name)
            for spec_field in fields(WorkloadSpec)
        }
        return Scenario(name="custom", **values)
    raise TypeError(
        "scenario must be a catalogue name, Scenario, or WorkloadSpec, "
        f"got {type(scenario).__name__}"
    )


def _drive(
    session: Session,
    workload: Workload,
    *,
    batch: int,
    mode: str,
) -> Iterator[dict[str, Any]]:
    """Serve the stream; yield response/update/error summary dicts."""
    if mode == "jsonl":
        yield from serve_jsonl(session, workload.records, batch=batch)
        return

    pending: list[Request] = []

    def flush() -> Iterator[dict[str, Any]]:
        if pending:
            group = list(pending)
            pending.clear()
            try:
                responses = session.route_batch(group)
            except DeliveryTimeout as error:
                yield {
                    "error": str(error),
                    "ids": [request.id for request in group],
                }
                return
            for response in responses:
                yield response.summary()

    for record in workload.records:
        if "update" in record:
            yield from flush()
            update = dict(record["update"])
            try:
                report = session.apply_update(
                    edges_added=update.get("edges_added", ()),
                    edges_removed=update.get("edges_removed", ()),
                    nodes_down=update.get("nodes_down", ()),
                )
            except (ValueError, TypeError, DeliveryTimeout) as error:
                yield {"error": str(error), "record": dict(record)}
                continue
            yield report.summary()
            continue
        request = Request(
            op=record["op"],
            args=dict(record["args"]),
            id=record.get("id"),
        )
        if batch > 0 and request.op == "route":
            pending.append(request)
            if len(pending) >= batch:
                yield from flush()
            continue
        yield from flush()
        try:
            yield session.submit(request).summary()
        except DeliveryTimeout as error:
            yield {"error": str(error), "id": request.id}
    yield from flush()


def run_workload(
    graph: Graph,
    scenario: Union[str, Scenario, WorkloadSpec],
    *,
    seed: int = 0,
    mode: str = "session",
    backend: str = "oracle",
    workers: int = 1,
    config: Optional[RunConfig] = None,
) -> WorkloadReport:
    """One sustained multi-epoch run of ``scenario`` over ``graph``.

    Builds the hierarchy once (``Session.open``), then serves the
    scenario's full deterministic stream against the warm structure.
    The scenario's ``faults`` / ``recovery`` / ``batch`` knobs configure
    the serving side unless an explicit ``config`` overrides them.
    """
    if mode not in MODES:
        raise ValueError(
            f"mode must be one of {MODES}, got {mode!r}"
        )
    resolved = _as_scenario(scenario)
    if config is None:
        config = RunConfig(
            seed=seed,
            backend=backend,
            faults=resolved.faults,
            recovery=resolved.recovery,
            workers=workers,
        )
    workload = generate_workload(graph, resolved, seed=seed)

    arrivals: dict[Optional[str], float] = {}
    for record, second in zip(workload.records, workload.arrivals):
        if "op" in record:
            arrivals[record.get("id")] = float(second)

    rounds_values: list[float] = []
    wall_values: list[float] = []
    sojourn_values: list[float] = []
    served = errors = updates = rebuilds = 0
    total_rounds = 0.0
    total_wall = 0.0
    clock = 0.0

    with Session.open(graph, config) as session:
        summaries = _drive(
            session, workload, batch=resolved.batch, mode=mode
        )
        for summary in summaries:
            if "error" in summary:
                errors += 1
                continue
            if "update" in summary:
                updates += 1
                rebuilds += int(bool(summary["update"]["rebuilt"]))
                continue
            served += 1
            size = int(summary.get("batch_size", 1))
            rounds = float(
                summary.get("rounds_amortized", summary["rounds"])
            )
            service = float(summary["wall_s"]) / size
            rounds_values.append(rounds)
            wall_values.append(service)
            total_rounds += rounds
            total_wall += service
            arrival = arrivals.get(summary.get("id"), clock)
            clock = max(clock, arrival) + service
            sojourn_values.append(clock - arrival)

    makespan = max(clock, 1e-9)
    return WorkloadReport(
        scenario=resolved.name,
        mode=mode,
        n=graph.num_nodes,
        seed=seed,
        epochs=resolved.epochs,
        batch=resolved.batch,
        requests=workload.requests,
        served=served,
        errors=errors,
        updates=updates,
        rebuilds=rebuilds,
        total_rounds=total_rounds,
        total_wall_s=total_wall,
        makespan_s=clock,
        offered_rps=workload.offered_rps,
        achieved_rps=served / makespan,
        rounds=percentile_summary(rounds_values),
        wall_s=percentile_summary(wall_values),
        sojourn_s=percentile_summary(sojourn_values),
    )


def fault_rate_curve(
    graph: Graph,
    scenario: Union[str, Scenario, WorkloadSpec],
    rates: Sequence[float],
    *,
    seed: int = 0,
    mode: str = "session",
    backend: str = "oracle",
) -> list[dict[str, Any]]:
    """Throughput vs. wire fault rate: one run per drop probability.

    Each point reruns the *same* deterministic request stream under a
    ``drop=<rate>`` fault plan (rate 0 = clean wire), so the curve
    isolates the fault knob.  Deterministic columns (served, errors,
    delivery-round percentiles) are gateable; throughput is wall-clock.
    """
    resolved = _as_scenario(scenario)
    points = []
    for rate in rates:
        spec = None if rate == 0 else f"drop={rate:g}"
        report = run_workload(
            graph,
            replace(resolved, faults=spec),
            seed=seed,
            mode=mode,
            backend=backend,
        )
        point = {"fault_rate": float(rate)}
        point.update(report.summary())
        points.append(point)
    return points


def offered_load_curve(
    graph: Graph,
    scenario: Union[str, Scenario, WorkloadSpec],
    rates_rps: Sequence[float],
    *,
    seed: int = 0,
    mode: str = "session",
    backend: str = "oracle",
) -> list[dict[str, Any]]:
    """Throughput and sojourn latency vs. offered load.

    Each point reruns the scenario with a different open-loop arrival
    rate; as the offered rate passes the server's capacity, achieved
    throughput saturates and sojourn percentiles blow up — the classic
    open-loop hockey stick.
    """
    resolved = _as_scenario(scenario)
    points = []
    for rate in rates_rps:
        report = run_workload(
            graph,
            replace(resolved, rate=float(rate)),
            seed=seed,
            mode=mode,
            backend=backend,
        )
        point = {"offered_rate": float(rate)}
        point.update(report.summary())
        points.append(point)
    return points
