"""Open-loop workload engine over the session layer.

The paper's economics — one ``2^O(sqrt(log n))``-round embedding
amortized across an unbounded stream of routing instances — only means
something under *load*.  This package turns the PR 8
:class:`~repro.runtime.Session` into a measured service:

* :mod:`repro.workloads.generator` — a deterministic open-loop request
  generator.  Every draw comes from a named, seed-derived RNG stream,
  so the same ``(graph, spec, seed)`` always produces the identical
  request stream — arrival times, key skew, and churn schedule included
  — regardless of backend or of what else ran in the process.
* :mod:`repro.workloads.scenarios` — the scenario catalogue: named
  combinations of key skew (uniform / Zipf / hotspot / adversarial
  permutations), load curve (constant / diurnal / burst), churn, and
  fault injection.  See ``docs/workloads.md``.
* :mod:`repro.workloads.engine` — drives a generated stream against a
  warm session (request-by-request, batched, or through the
  :func:`~repro.runtime.serve_jsonl` wire path) over sustained
  multi-epoch runs and reports p50/p95/p99 delivery rounds and wall
  latency, plus throughput-vs-fault-rate and throughput-vs-offered-load
  curves.

The legacy single-shot demand shapes live on in
:mod:`repro.analysis.workloads`; this package is about *streams* of
them.
"""

from .engine import (
    PERCENTILES,
    WorkloadReport,
    fault_rate_curve,
    offered_load_curve,
    percentile_summary,
    run_workload,
)
from .generator import (
    ChurnSpec,
    Workload,
    WorkloadSpec,
    adversarial_permutation,
    generate_workload,
    sample_destinations,
)
from .scenarios import SCENARIOS, Scenario, get_scenario

__all__ = [
    "PERCENTILES",
    "SCENARIOS",
    "ChurnSpec",
    "Scenario",
    "Workload",
    "WorkloadReport",
    "WorkloadSpec",
    "adversarial_permutation",
    "fault_rate_curve",
    "generate_workload",
    "get_scenario",
    "offered_load_curve",
    "percentile_summary",
    "run_workload",
    "sample_destinations",
]
