"""The scenario catalogue: named workload shapes, one schema.

A :class:`Scenario` is a :class:`~repro.workloads.generator.WorkloadSpec`
plus the *service* side of the run: fault injection, recovery mode, and
the batched-admission width.  The catalogue below is the vocabulary the
benchmark registry and the ``repro bench`` CLI speak; add a scenario
here and every harness (engine, curves, registry suites) can run it.
See ``docs/workloads.md`` for the catalogue's intent and the report
schema.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .generator import ChurnSpec, WorkloadSpec

__all__ = ["SCENARIOS", "Scenario", "get_scenario"]


@dataclass(frozen=True)
class Scenario(WorkloadSpec):
    """A named workload spec plus its service-side knobs.

    Attributes (beyond :class:`WorkloadSpec`):
        name / description: catalogue identity.
        faults: ``--faults``-grammar spec string applied to the serving
            session (``None`` = clean wire).
        recovery: the session's recovery mode.
        batch: group up to this many consecutive explicit-demand route
            requests into one routing instance (0 = serve one by one).
    """

    name: str = ""
    description: str = ""
    faults: Optional[str] = None
    recovery: str = "fail-fast"
    batch: int = 0

    def scaled(self, *, quick: bool) -> "Scenario":
        """The quick tier: same shape, smaller sustained run.

        The churn period shrinks with the request count so a quick soak
        still exercises concurrent churn (not just a fault plan)."""
        if not quick:
            return self
        churn = self.churn
        if churn is not None:
            churn = replace(churn, period=max(2, churn.period // 4))
        return replace(
            self,
            requests=max(6, self.requests // 4),
            epochs=min(self.epochs, 2) if self.epochs > 2 else self.epochs,
            churn=churn,
        )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="steady",
            description="uniform keys at a constant offered rate",
            requests=32,
            epochs=2,
            packets=8,
        ),
        Scenario(
            name="zipf",
            description="Zipf-skewed destinations (s=1.2), constant rate",
            key_skew="zipf",
            zipf_s=1.2,
            requests=32,
            epochs=2,
            packets=8,
        ),
        Scenario(
            name="hotspot",
            description="80% of destinations hit 4 hot nodes",
            key_skew="hotspot",
            hotspots=4,
            hotspot_skew=0.8,
            requests=32,
            epochs=2,
            packets=8,
        ),
        Scenario(
            name="diurnal",
            description="uniform keys under a sinusoidal load curve",
            load_curve="diurnal",
            diurnal_amplitude=0.8,
            requests=32,
            epochs=2,
            packets=8,
        ),
        Scenario(
            name="burst",
            description="6x rate burst in the middle eighth of each epoch",
            load_curve="burst",
            burst_factor=6.0,
            burst_fraction=0.125,
            requests=32,
            epochs=2,
            packets=8,
        ),
        Scenario(
            name="adversarial",
            description=(
                "deterministic worst-case permutations "
                "(bit-reversal family), one per node per request"
            ),
            key_skew="adversarial",
            requests=12,
            epochs=2,
        ),
        Scenario(
            name="churn",
            description="steady traffic with periodic edge churn",
            requests=32,
            epochs=2,
            packets=8,
            churn=ChurnSpec(period=12, edges_removed=1, edges_added=1),
        ),
        Scenario(
            name="soak",
            description=(
                "the sustained serve-soak: Zipf skew, diurnal load, "
                "concurrent churn and wire faults, multi-epoch"
            ),
            key_skew="zipf",
            zipf_s=1.2,
            load_curve="diurnal",
            diurnal_amplitude=0.6,
            requests=24,
            epochs=3,
            packets=8,
            churn=ChurnSpec(period=16, edges_removed=1, edges_added=1),
            faults="drop=0.01",
            batch=4,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """The catalogue entry for ``name``, or ``ValueError`` naming it."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from "
            f"{tuple(sorted(SCENARIOS))}"
        ) from None
