"""Deterministic open-loop request generation.

An *open-loop* workload decides its arrival times in advance — requests
arrive on the generator's schedule whether or not the server has
finished the previous one — which is what a service under real traffic
experiences (a closed loop, where the next request waits for the last
response, can never observe queueing).  Everything here is a pure
function of ``(graph, spec, seed)``:

* arrival times come from the ``<stream>/arrivals`` derived stream,
  thinned through the spec's load curve (constant / diurnal / burst);
* request demands come from the ``<stream>/keys`` stream under the
  spec's key-skew model (uniform / Zipf / hotspot) or from the
  deterministic adversarial-permutation family;
* churn schedules come from the ``<stream>/churn`` stream, tracking the
  evolving edge set so every removal names an edge that exists at that
  point of the stream.

The produced :class:`Workload` is wire-ready: ``records`` is exactly the
JSONL record sequence :func:`repro.runtime.serve_jsonl` consumes
(request records interleaved with update records), with a parallel
``arrivals`` array carrying each record's scheduled arrival second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..graphs.graph import Graph
from ..rng import derive_rng, stream_entropy

__all__ = [
    "KEY_SKEWS",
    "LOAD_CURVES",
    "ChurnSpec",
    "Workload",
    "WorkloadSpec",
    "adversarial_permutation",
    "generate_workload",
    "sample_destinations",
    "zipf_weights",
]

#: Key-skew models the generator understands.
KEY_SKEWS = ("uniform", "zipf", "hotspot", "adversarial", "permutation")

#: Load-curve shapes for the open-loop arrival process.
LOAD_CURVES = ("constant", "diurnal", "burst")


@dataclass(frozen=True)
class ChurnSpec:
    """Concurrent graph churn riding the request stream.

    Every ``period`` requests the generator emits one update record
    (the :meth:`~repro.runtime.Session.apply_update` wire format)
    removing ``edges_removed`` existing edges, adding ``edges_added``
    fresh ones, and downing ``nodes_down`` nodes.  The schedule draws
    only from the churn stream and tracks the evolving edge set, so a
    removal always names a live edge.
    """

    period: int = 16
    edges_removed: int = 1
    edges_added: int = 1
    nodes_down: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"churn period must be >= 1, got {self.period}")
        for name in ("edges_removed", "edges_added", "nodes_down"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class WorkloadSpec:
    """What one open-loop request stream looks like.

    Attributes:
        requests: route requests per epoch.
        epochs: epochs in the run; the load curve repeats per epoch and
            the churn schedule spans all of them.
        rate: offered load in requests per second (the open-loop
            schedule; the server may or may not keep up).
        load_curve: ``"constant"``, ``"diurnal"`` (sinusoidal rate over
            each epoch), or ``"burst"`` (rate multiplied by
            ``burst_factor`` during the middle ``burst_fraction`` of
            each epoch).
        diurnal_amplitude: relative swing of the diurnal curve in
            ``[0, 1)``.
        burst_factor / burst_fraction: burst-curve shape.
        key_skew: demand model — ``"uniform"``, ``"zipf"``,
            ``"hotspot"``, ``"adversarial"`` (deterministic worst-case
            permutations), or ``"permutation"`` (random permutations).
        zipf_s: Zipf exponent (> 0); larger = more skew.
        hotspots / hotspot_skew: hotspot-model shape (``hotspot_skew``
            of destinations hit one of ``hotspots`` hot nodes).
        packets: explicit demands per request (permutation-shaped skews
            always carry one packet per node instead).
        churn: optional concurrent churn schedule.
    """

    requests: int = 32
    epochs: int = 1
    rate: float = 200.0
    load_curve: str = "constant"
    diurnal_amplitude: float = 0.8
    burst_factor: float = 6.0
    burst_fraction: float = 0.125
    key_skew: str = "uniform"
    zipf_s: float = 1.2
    hotspots: int = 4
    hotspot_skew: float = 0.8
    packets: int = 8
    churn: Optional[ChurnSpec] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.load_curve not in LOAD_CURVES:
            raise ValueError(
                f"load_curve must be one of {LOAD_CURVES}, "
                f"got {self.load_curve!r}"
            )
        if self.key_skew not in KEY_SKEWS:
            raise ValueError(
                f"key_skew must be one of {KEY_SKEWS}, "
                f"got {self.key_skew!r}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                "diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}"
            )
        if self.zipf_s <= 0:
            raise ValueError(f"zipf_s must be > 0, got {self.zipf_s}")
        if self.packets < 1:
            raise ValueError(f"packets must be >= 1, got {self.packets}")

    @property
    def total_requests(self) -> int:
        """Route requests across all epochs."""
        return self.requests * self.epochs


@dataclass(frozen=True)
class Workload:
    """A generated request stream, wire-ready for the session layer.

    Attributes:
        records: the JSONL record sequence
            (:func:`repro.runtime.serve_jsonl` format) — route requests
            interleaved with churn update records.
        arrivals: scheduled arrival second of each record (same length
            as ``records``, non-decreasing; an update record inherits
            the arrival of the request point it rides on).
        requests / updates: record counts by type.
        spec: the :class:`WorkloadSpec` that produced the stream.
    """

    records: tuple
    arrivals: np.ndarray
    requests: int
    updates: int
    spec: WorkloadSpec = field(repr=False)

    @property
    def duration_s(self) -> float:
        """The schedule's span: last arrival second (offered time)."""
        return float(self.arrivals[-1]) if len(self.arrivals) else 0.0

    @property
    def offered_rps(self) -> float:
        """Offered load actually scheduled (requests per second)."""
        if self.duration_s <= 0:
            return float(self.spec.rate)
        return self.requests / self.duration_s


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Finite-support Zipf probabilities over ``n`` keys (rank = key)."""
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
    return weights / weights.sum()


def adversarial_permutation(n: int, shift: int = 0) -> np.ndarray:
    """The ``shift``-th member of a deterministic worst-case family.

    Bit-reversal permutations (when ``n`` is a power of two, the classic
    router-adversarial demand: every prefix of address bits maps across
    the hierarchy) or index reversal otherwise, composed with a cyclic
    shift so consecutive requests never repeat a demand.  No randomness:
    an adversary does not roll dice.
    """
    indices = np.arange(n, dtype=np.int64)
    if n >= 2 and (n & (n - 1)) == 0:
        bits = int(n).bit_length() - 1
        reversed_indices = np.zeros(n, dtype=np.int64)
        work = indices.copy()
        for _ in range(bits):
            reversed_indices = (reversed_indices << 1) | (work & 1)
            work >>= 1
        base = reversed_indices
    else:
        base = indices[::-1].copy()
    return (base + shift) % n


def sample_destinations(
    graph: Graph,
    count: int,
    spec: WorkloadSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` destinations under the spec's key-skew model.

    Zipf ranks map to node ids directly (node 0 is the hottest key), so
    the hit distribution is inspectable without carrying a hidden
    rank-to-node table.
    """
    n = graph.num_nodes
    if spec.key_skew == "zipf":
        return rng.choice(n, size=count, p=zipf_weights(n, spec.zipf_s))
    if spec.key_skew == "hotspot":
        destinations = rng.integers(0, n, size=count)
        hot_nodes = rng.choice(
            n, size=min(spec.hotspots, n), replace=False
        )
        hot_mask = rng.random(count) < spec.hotspot_skew
        destinations[hot_mask] = hot_nodes[
            rng.integers(0, hot_nodes.shape[0], size=int(hot_mask.sum()))
        ]
        return destinations
    return rng.integers(0, n, size=count)


def _arrival_times(
    spec: WorkloadSpec, rng: np.random.Generator
) -> np.ndarray:
    """Open-loop arrival seconds for every route request, in order.

    A non-homogeneous Poisson process simulated step by step: the gap to
    the next arrival is exponential with the *current* instantaneous
    rate, so the diurnal and burst curves modulate density exactly where
    they should.  One epoch spans ``requests / rate`` scheduled seconds.
    """
    epoch_span = spec.requests / spec.rate
    times = np.empty(spec.total_requests, dtype=np.float64)
    now = 0.0
    for index in range(spec.total_requests):
        position = (now % epoch_span) / epoch_span if epoch_span else 0.0
        rate = spec.rate
        if spec.load_curve == "diurnal":
            rate *= 1.0 + spec.diurnal_amplitude * np.sin(
                2.0 * np.pi * position
            )
        elif spec.load_curve == "burst":
            half_window = spec.burst_fraction / 2.0
            if abs(position - 0.5) <= half_window:
                rate *= spec.burst_factor
        now += rng.exponential(1.0 / max(rate, 1e-9))
        times[index] = now
    return times


class _EdgeTracker:
    """The evolving edge set, so churn removals always name live edges."""

    def __init__(self, graph: Graph) -> None:
        self.num_nodes = graph.num_nodes
        self.edges: list[tuple[int, int]] = [
            (int(u), int(v)) for u, v in graph.edge_array
        ]
        self.present = {self._key(u, v) for u, v in self.edges}

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u <= v else (v, u)

    def remove(self, count: int, rng: np.random.Generator) -> list:
        removed = []
        for _ in range(min(count, max(0, len(self.edges) - 1))):
            position = int(rng.integers(0, len(self.edges)))
            u, v = self.edges.pop(position)
            self.present.discard(self._key(u, v))
            removed.append([u, v])
        return removed

    def add(self, count: int, rng: np.random.Generator) -> list:
        added = []
        attempts = 0
        while len(added) < count and attempts < 64 * max(1, count):
            attempts += 1
            u = int(rng.integers(0, self.num_nodes))
            v = int(rng.integers(0, self.num_nodes))
            if u == v or self._key(u, v) in self.present:
                continue
            self.present.add(self._key(u, v))
            self.edges.append((u, v))
            added.append([u, v])
        return added


def generate_workload(
    graph: Graph,
    spec: WorkloadSpec,
    seed: int = 0,
    *,
    stream: str = "workload",
) -> Workload:
    """Generate the full request stream for ``(graph, spec, seed)``.

    Three derived streams, one per concern, so e.g. enabling churn can
    never change which demands the requests carry:

    * ``<stream>/arrivals`` — the open-loop arrival schedule;
    * ``<stream>/keys`` — demand sources and destinations;
    * ``<stream>/churn`` — which edges/nodes each update touches.

    The result is bit-identical for the same inputs on any backend and
    in any process (streams are SHA-derived, hash-seed independent).
    """
    arrivals_rng = derive_rng(seed, stream_entropy(f"{stream}/arrivals"))
    keys_rng = derive_rng(seed, stream_entropy(f"{stream}/keys"))
    churn_rng = derive_rng(seed, stream_entropy(f"{stream}/churn"))

    times = _arrival_times(spec, arrivals_rng)
    tracker = _EdgeTracker(graph) if spec.churn else None

    records: list[dict[str, Any]] = []
    arrivals: list[float] = []
    n = graph.num_nodes
    updates = 0
    for index in range(spec.total_requests):
        if (
            spec.churn is not None
            and tracker is not None
            and index > 0
            and index % spec.churn.period == 0
        ):
            update: dict[str, Any] = {
                "edges_removed": tracker.remove(
                    spec.churn.edges_removed, churn_rng
                ),
                "edges_added": tracker.add(
                    spec.churn.edges_added, churn_rng
                ),
            }
            if spec.churn.nodes_down:
                update["nodes_down"] = sorted(
                    int(node)
                    for node in churn_rng.choice(
                        n,
                        size=min(spec.churn.nodes_down, n),
                        replace=False,
                    )
                )
            records.append({"update": update})
            arrivals.append(float(times[index]))
            updates += 1

        if spec.key_skew in ("adversarial", "permutation"):
            sources = np.arange(n)
            if spec.key_skew == "adversarial":
                destinations = adversarial_permutation(n, shift=index)
            else:
                destinations = keys_rng.permutation(n)
        else:
            sources = keys_rng.integers(0, n, size=spec.packets)
            destinations = sample_destinations(
                graph, spec.packets, spec, keys_rng
            )
        records.append(
            {
                "op": "route",
                "args": {
                    "sources": [int(s) for s in sources],
                    "destinations": [int(d) for d in destinations],
                },
                "id": f"req-{index}",
            }
        )
        arrivals.append(float(times[index]))

    return Workload(
        records=tuple(records),
        arrivals=np.asarray(arrivals, dtype=np.float64),
        requests=spec.total_requests,
        updates=updates,
        spec=spec,
    )
