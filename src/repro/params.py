"""Tunable constants for the routing/MST construction.

The paper states its constants for asymptotic w.h.p. guarantees (e.g.
``200 log n`` random walks per virtual node when building the level-zero
overlay ``G0``).  At the sizes a Python simulation can reach
(``n <= 4096``), the literal constants are far larger than needed for the
structural guarantees to hold and make runs infeasible.  All constants
therefore live in one :class:`Params` dataclass:

* :meth:`Params.default` — constants calibrated for simulable sizes; the
  structural guarantees (overlay degrees, successful-walk counts, portal
  availability, part balance) still hold w.h.p. at these sizes and are
  asserted by the test suite.
* :meth:`Params.paper` — the literal constants from the paper, usable on
  small inputs for fidelity checks.

See DESIGN.md section 4 ("Scaled constants").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Params:
    """All tunable constants of the hierarchical routing construction.

    Attributes:
        g0_walks_per_vnode_factor: number of walks each virtual node starts
            when building ``G0``, as a multiple of ``log2 n``.  The paper
            uses 200; the overlay keeps half of the successful ones.
        g0_degree_factor: out-degree of each ``G0`` node as a multiple of
            ``log2 n``.  The paper uses 100 (half the walk count).
        mixing_slack: multiplier on the measured/estimated mixing time used
            as the walk length (the paper's remark after Definition 2.1
            runs walks for ``O(tau_mix)`` steps to sharpen the deviation).
        beta: branching factor of the hierarchy; ``None`` means use the
            paper's optimum ``2^ceil(sqrt(log2 n * log2 log2 n))`` capped
            for feasibility (see :func:`repro.theory.optimal_beta`).
        level_walks_factor: walks per node, per target sample, as a multiple
            of ``beta`` when building level ``i >= 1`` overlays (the paper
            starts ``O(beta log n)`` walks so that ``Theta(log n)`` land in
            the node's own part).
        level_degree_factor: overlay degree within a part as a multiple of
            ``log2 n`` (the paper's ``Theta(log n)`` samples).
        level_walk_length_factor: length of overlay walks as a multiple of
            ``log2 n`` (overlay random graphs mix in ``O(log n)`` steps).
        bottom_size_factor: recursion stops when parts have at most
            ``bottom_size_factor * log2 n`` nodes; such parts use the
            complete graph (paper: parts of size ``O(log n)``).
        portal_walks_factor: walks per node per sibling part during portal
            discovery, as a multiple of ``beta`` (paper: ``beta`` walks).
        portal_redundancy_factor: under ``recovery="self-heal"``, number
            of independent portals each node holds per sibling part, as
            a multiple of ``log2 n`` (``k = O(log n)`` — a crashed
            portal then strands a packet only if all ``k`` are down).
        hash_independence: ``W`` for the ``W``-wise independent partition
            hash, as a multiple of ``log2 n`` (paper: ``Theta(log n)``).
        packets_per_node_factor: routing-load promise — each node may be
            source/destination of ``d(v) * packets_per_node_factor *
            log2 n`` packets per routing instance.
        use_walk_portals: if True, discover portals with the faithful
            walk-based procedure (Lemma 3.3); if False, sample the
            identical uniform-boundary-node distribution directly and
            charge the analytic cost (fast path; see DESIGN.md §4.3).
        use_walk_overlays: if True, build each level overlay from actual
            ``2*Delta``-regular walks on the previous overlay (costs a
            ``beta`` factor more simulation time); if False, sample the
            identical uniform same-part neighbour distribution directly.
            Either way the emulation cost is *measured* on a calibration
            walk batch.
        use_correlated_walks: if True, the G0 construction walks and the
            routing preparation walks run token-balanced (correlated)
            instead of independent, removing the additive ``log n`` from
            the Lemma 2.5 schedule (the paper's deferred ``k = o(log n)``
            refinement; see :mod:`repro.walks.correlated`).
    """

    g0_walks_per_vnode_factor: float = 8.0
    g0_degree_factor: float = 4.0
    mixing_slack: float = 2.0
    beta: int | None = None
    level_walks_factor: float = 4.0
    level_degree_factor: float = 4.0
    level_walk_length_factor: float = 3.0
    bottom_size_factor: float = 4.0
    portal_walks_factor: float = 2.0
    portal_redundancy_factor: float = 1.0
    hash_independence: float = 1.0
    packets_per_node_factor: float = 1.0
    use_walk_portals: bool = False
    use_walk_overlays: bool = False
    use_correlated_walks: bool = False

    @classmethod
    def default(cls) -> "Params":
        """Constants calibrated for simulable sizes (``n <= 4096``)."""
        return cls()

    @classmethod
    def paper(cls) -> "Params":
        """The literal constants from the paper (feasible only for tiny n)."""
        return cls(
            g0_walks_per_vnode_factor=200.0,
            g0_degree_factor=100.0,
            mixing_slack=2.0,
            level_walks_factor=8.0,
            level_degree_factor=8.0,
            bottom_size_factor=8.0,
            portal_walks_factor=4.0,
            hash_independence=2.0,
            use_walk_portals=True,
            use_walk_overlays=True,
        )

    @classmethod
    def fast(cls) -> "Params":
        """Aggressively reduced constants for large benchmark sweeps.

        Guarantees become "with good probability" rather than w.h.p.; used
        only where the benchmark verifies delivery/corectness explicitly.
        """
        return cls(
            g0_walks_per_vnode_factor=4.0,
            g0_degree_factor=2.0,
            mixing_slack=1.5,
            level_walks_factor=3.0,
            level_degree_factor=3.0,
            level_walk_length_factor=2.0,
            bottom_size_factor=6.0,
        )

    def with_overrides(self, **kwargs) -> "Params":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- derived quantities -------------------------------------------------

    def g0_walks_per_vnode(self, n: int) -> int:
        """Number of walks each virtual node starts when building G0."""
        return max(4, int(round(self.g0_walks_per_vnode_factor * _log2(n))))

    def g0_degree(self, n: int) -> int:
        """Out-degree of each G0 node."""
        return max(2, int(round(self.g0_degree_factor * _log2(n))))

    def level_degree(self, n: int) -> int:
        """Number of same-part overlay neighbours sampled per node."""
        return max(2, int(round(self.level_degree_factor * _log2(n))))

    def level_walk_length(self, n: int) -> int:
        """Length of the regular walks used to build level overlays."""
        return max(4, int(round(self.level_walk_length_factor * _log2(n))))

    def bottom_size(self, n: int) -> int:
        """Part size below which the recursion bottoms out on a clique."""
        return max(4, int(round(self.bottom_size_factor * _log2(n))))

    def portal_redundancy(self, n: int) -> int:
        """Independent portals per (node, sibling) under self-heal."""
        return max(2, int(round(self.portal_redundancy_factor * _log2(n))))

    def hash_wise(self, n: int) -> int:
        """Independence ``W`` of the partition hash family."""
        return max(4, int(round(self.hash_independence * _log2(n))))

    def packets_per_node(self, n: int, degree: int) -> int:
        """Routing-load promise for a node of the given degree."""
        return max(
            1, int(round(self.packets_per_node_factor * degree * _log2(n)))
        )


def _log2(n: int) -> float:
    """log2 clamped away from zero so tiny graphs get sane constants."""
    return max(1.0, math.log2(max(2, n)))
