"""Expansion, conductance, spectra, and exact mixing times.

Implements the quantities of Section 2 of the paper:

* edge expansion ``h(G) = min_{|S| <= n/2} e(S, V-S) / |S|``,
* conductance ``phi(G) = min_{vol(S) <= m} e(S, V-S) / vol(S)``,
* the exact mixing time of Definition 2.1 for lazy walks,
* the ``2*Delta``-regular walk of Definition 2.2 and its mixing time,
* the Cheeger upper bound of Lemma 2.3.

Exact ``h``/``phi`` enumerate all cuts and are exponential; they are only
for graphs with ``n <= ~20``.  For larger graphs use the spectral
(Cheeger-inequality) estimates.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .graph import Graph

__all__ = [
    "edge_expansion_exact",
    "fiedler_cut",
    "conductance_exact",
    "spectral_gap",
    "conductance_spectral_bounds",
    "edge_expansion_spectral_lower",
    "lazy_transition_matrix",
    "regular_transition_matrix",
    "mixing_time",
    "regular_mixing_time",
    "cut_size",
]

_EXACT_LIMIT = 22


def cut_size(graph: Graph, side: np.ndarray) -> int:
    """Number of edges crossing the cut given by boolean mask ``side``."""
    edges = graph.edge_array
    if edges.size == 0:
        return 0
    return int(np.sum(side[edges[:, 0]] != side[edges[:, 1]]))


def _all_cuts(graph: Graph):
    n = graph.num_nodes
    for size in range(1, n // 2 + 1):
        for subset in combinations(range(n), size):
            mask = np.zeros(n, dtype=bool)
            mask[list(subset)] = True
            yield mask


def edge_expansion_exact(graph: Graph) -> float:
    """Exact ``h(G)`` by cut enumeration (only for ``n <= 22``)."""
    n = graph.num_nodes
    if n > _EXACT_LIMIT:
        raise ValueError(
            f"exact edge expansion is exponential; n={n} > {_EXACT_LIMIT}"
        )
    best = np.inf
    for mask in _all_cuts(graph):
        best = min(best, cut_size(graph, mask) / mask.sum())
    return float(best)


def conductance_exact(graph: Graph) -> float:
    """Exact ``phi(G)`` by cut enumeration (only for ``n <= 22``)."""
    n = graph.num_nodes
    if n > _EXACT_LIMIT:
        raise ValueError(
            f"exact conductance is exponential; n={n} > {_EXACT_LIMIT}"
        )
    degrees = graph.degrees
    m = graph.num_edges
    best = np.inf
    for mask in _all_cuts(graph):
        volume = degrees[mask].sum()
        volume = min(volume, 2 * m - volume)
        if volume > 0:
            best = min(best, cut_size(graph, mask) / volume)
    return float(best)


def lazy_transition_matrix(graph: Graph) -> np.ndarray:
    """Transition matrix of the lazy walk: stay w.p. 1/2, else uniform edge."""
    n = graph.num_nodes
    matrix = np.zeros((n, n))
    for v in range(n):
        neighbors = graph.neighbors(v)
        d = len(neighbors)
        if d:
            np.add.at(matrix[v], neighbors, 0.5 / d)
        matrix[v, v] += 0.5
    return matrix


def regular_transition_matrix(graph: Graph) -> np.ndarray:
    """Transition matrix of the ``2*Delta``-regular walk (Definition 2.2).

    Move to each neighbour w.p. ``1/(2*Delta)``; stay otherwise.  This is
    the lazy walk on the graph padded with ``Delta - d(v)`` self-loops.
    """
    n = graph.num_nodes
    delta = graph.max_degree
    matrix = np.zeros((n, n))
    for v in range(n):
        neighbors = graph.neighbors(v)
        np.add.at(matrix[v], neighbors, 1.0 / (2.0 * delta))
        matrix[v, v] += 1.0 - len(neighbors) / (2.0 * delta)
    return matrix


def spectral_gap(
    graph: Graph, regular: bool = False, sparse_threshold: int = 800
) -> float:
    """Spectral gap ``1 - lambda_2`` of the (lazy or regular) walk matrix.

    The lazy/regular walk matrices are similar to symmetric matrices, so
    the spectrum is real.  Above ``sparse_threshold`` nodes, a sparse
    Lanczos solve (scipy) replaces the dense eigendecomposition when
    scipy is available.
    """
    if graph.num_nodes > sparse_threshold:
        try:
            return _spectral_gap_sparse(graph, regular)
        except ImportError:
            pass  # fall through to the dense path
    if regular:
        matrix = regular_transition_matrix(graph)
        eigenvalues = np.linalg.eigvalsh(matrix)
    else:
        # Symmetrize: D^{-1/2} A D^{-1/2} has the same spectrum as D^{-1} A.
        matrix = lazy_transition_matrix(graph)
        d = graph.degrees.astype(float)
        scale = np.sqrt(d)
        sym = matrix * scale[:, None] / scale[None, :]
        eigenvalues = np.linalg.eigvalsh(sym)
    eigenvalues.sort()
    return float(1.0 - eigenvalues[-2])


def _spectral_gap_sparse(graph: Graph, regular: bool) -> float:
    """Lanczos spectral gap via scipy.sparse (for large graphs)."""
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    n = graph.num_nodes
    edges = graph.edge_array
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    adjacency = sp.coo_matrix(
        (np.ones(rows.shape[0]), (rows, cols)), shape=(n, n)
    ).tocsr()
    if regular:
        delta = max(1, graph.max_degree)
        diagonal = 1.0 - graph.degrees / (2.0 * delta)
        matrix = adjacency / (2.0 * delta) + sp.diags(diagonal)
    else:
        inv_sqrt = 1.0 / np.sqrt(np.maximum(graph.degrees, 1))
        scale = sp.diags(inv_sqrt)
        matrix = 0.5 * sp.eye(n) + 0.5 * (scale @ adjacency @ scale)
    eigenvalues = spla.eigsh(
        matrix, k=2, which="LA", return_eigenvectors=False, maxiter=5000
    )
    eigenvalues.sort()
    return float(1.0 - eigenvalues[0])


def conductance_spectral_bounds(graph: Graph) -> tuple[float, float]:
    """Cheeger sandwich ``gap/2 <= phi <= sqrt(2 gap)`` for the lazy walk.

    The returned pair ``(low, high)`` brackets ``phi(G)``; the gap here is
    that of the *non-lazy* normalized walk, i.e. twice the lazy gap.
    """
    gap = 2.0 * spectral_gap(graph)
    return gap / 2.0, float(np.sqrt(2.0 * gap))


def edge_expansion_spectral_lower(graph: Graph) -> float:
    """A Cheeger-type lower bound on ``h(G)``: ``phi_low * min_degree``.

    Uses ``e(S, V-S)/|S| >= e(S, V-S)/vol(S) * min_deg``.
    """
    low, _ = conductance_spectral_bounds(graph)
    return float(low * graph.degrees.min())


def _mixing_time_from_matrix(
    matrix: np.ndarray, stationary: np.ndarray, tolerance: np.ndarray,
    max_steps: int,
) -> int:
    """Smallest ``t`` with ``|P_v^t(u) - pi(u)| <= tol(u)`` for all ``v, u``.

    Checks by doubling-and-scan on matrix powers so the cost is
    ``O(n^3 log t)`` — fine for ``n`` up to a couple of thousand.
    """
    power = matrix.copy()
    step = 1
    history = [(1, matrix)]
    # Double until mixed.
    while step < max_steps:
        deviation = np.abs(power - stationary[None, :]).max(axis=0)
        if np.all(deviation <= tolerance):
            break
        power = power @ power
        step *= 2
        history.append((step, power))
    else:
        raise RuntimeError(f"walk did not mix within {max_steps} steps")
    if step == 1:
        return 1
    # Binary search in (step/2, step] using history[-2] as the base.
    low_step, low_power = history[-2]
    high_step = step
    base = low_power
    base_step = low_step
    while base_step < high_step:
        # March one step at a time once the bracket is small, else jump.
        candidate = base @ matrix
        base_step += 1
        deviation = np.abs(candidate - stationary[None, :]).max(axis=0)
        base = candidate
        if np.all(deviation <= tolerance):
            return base_step
    return high_step


def mixing_time(graph: Graph, max_steps: int = 1 << 22) -> int:
    """Exact ``tau_mix(G)`` per Definition 2.1 for the lazy walk.

    The minimum ``t`` such that for all ``v, u``:
    ``|P_v^t(u) - d(u)/2m| <= d(u)/(2 m n)``.

    (The paper's definition writes ``d(v)/2m``; the stationary probability
    of *ending* at ``u`` is ``d(u)/2m``, which is the standard reading.)
    """
    if not graph.is_connected():
        raise ValueError("mixing time of a disconnected graph is infinite")
    n = graph.num_nodes
    if n == 1:
        return 1
    matrix = lazy_transition_matrix(graph)
    stationary = graph.degrees / (2.0 * graph.num_edges)
    tolerance = stationary / n
    return _mixing_time_from_matrix(matrix, stationary, tolerance, max_steps)


def regular_mixing_time(graph: Graph, max_steps: int = 1 << 22) -> int:
    """Exact ``tau_bar_mix(G)`` of the ``2*Delta``-regular walk.

    The stationary distribution is uniform; Lemma 2.3 upper-bounds this by
    ``8 Delta^2 ln(n) / h(G)^2``.
    """
    if not graph.is_connected():
        raise ValueError("mixing time of a disconnected graph is infinite")
    n = graph.num_nodes
    if n == 1:
        return 1
    matrix = regular_transition_matrix(graph)
    stationary = np.full(n, 1.0 / n)
    tolerance = stationary / n
    return _mixing_time_from_matrix(matrix, stationary, tolerance, max_steps)


def fiedler_cut(graph: Graph) -> tuple[np.ndarray, float]:
    """A low-conductance cut from the spectral sweep (Cheeger rounding).

    Sorts nodes by the lazy walk matrix's second eigenvector and scans
    all prefix cuts, returning the one with the best conductance — the
    constructive half of Cheeger's inequality, guaranteeing conductance
    at most ``sqrt(2 * gap)``.

    Returns:
        ``(membership mask of one side, its conductance)``.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes to cut")
    matrix = lazy_transition_matrix(graph)
    degrees = graph.degrees.astype(float)
    scale = np.sqrt(np.maximum(degrees, 1e-12))
    sym = matrix * scale[:, None] / scale[None, :]
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    fiedler = eigenvectors[:, -2] / scale
    order = np.argsort(fiedler)
    total_volume = float(degrees.sum())
    best_mask = None
    best_conductance = np.inf
    side = np.zeros(n, dtype=bool)
    volume = 0.0
    edges = graph.edge_array
    for node in order[:-1]:
        side[node] = True
        volume += degrees[node]
        crossing = int(np.sum(side[edges[:, 0]] != side[edges[:, 1]]))
        denominator = min(volume, total_volume - volume)
        if denominator <= 0:
            continue
        conductance = crossing / denominator
        if conductance < best_conductance:
            best_conductance = conductance
            best_mask = side.copy()
    assert best_mask is not None
    return best_mask, float(best_conductance)
