"""Static undirected graphs backed by CSR adjacency arrays.

The whole library operates on :class:`Graph`: an immutable, undirected
(multi-)graph over nodes ``0..n-1``, stored in compressed-sparse-row form
so random-walk steps and congestion counts vectorize with numpy.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "WeightedGraph"]


class Graph:
    """An immutable undirected multigraph in CSR form.

    Each undirected edge ``{u, v}`` is stored as two directed *arcs*
    ``u -> v`` and ``v -> u``.  Arc ``a`` has a *twin* arc (the reverse
    direction) and an *edge id* ``a // 1`` shared with its twin via
    :attr:`arc_edge`.  Virtual nodes in the routing construction are
    identified with arcs (2m of them), which is why arcs are first-class
    here.

    Attributes:
        num_nodes: number of nodes ``n``.
        num_edges: number of undirected edges ``m`` (self-loops count once).
        indptr: CSR row pointer, shape ``(n + 1,)``.
        indices: CSR column indices (arc heads), shape ``(2m,)``.
        arc_twin: for each arc, the index of the reverse arc.
        arc_edge: for each arc, the undirected edge id in ``0..m-1``.
    """

    def __init__(self, num_nodes: int, edges: Iterable[tuple[int, int]]):
        edge_list = [(int(u), int(v)) for u, v in edges]
        for u, v in edge_list:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {num_nodes} nodes"
                )
            if u == v:
                raise ValueError(f"self-loop at node {u} is not supported")
        self._num_nodes = int(num_nodes)
        self._num_edges = len(edge_list)
        self._build_csr(edge_list)
        self._edge_array = np.array(
            edge_list if edge_list else np.empty((0, 2)), dtype=np.int64
        ).reshape(-1, 2)

    def _build_csr(self, edge_list: Sequence[tuple[int, int]]) -> None:
        n = self._num_nodes
        m = len(edge_list)
        degree = np.zeros(n, dtype=np.int64)
        for u, v in edge_list:
            degree[u] += 1
            degree[v] += 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degree, out=indptr[1:])
        indices = np.empty(2 * m, dtype=np.int64)
        arc_twin = np.empty(2 * m, dtype=np.int64)
        arc_edge = np.empty(2 * m, dtype=np.int64)
        cursor = indptr[:-1].copy()
        for eid, (u, v) in enumerate(edge_list):
            a = cursor[u]
            cursor[u] += 1
            b = cursor[v]
            cursor[v] += 1
            indices[a] = v
            indices[b] = u
            arc_twin[a] = b
            arc_twin[b] = a
            arc_edge[a] = eid
            arc_edge[b] = eid
        self.indptr = indptr
        self.indices = indices
        self.arc_twin = arc_twin
        self.arc_edge = arc_edge
        self._degree = degree

    # -- basic accessors ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._num_edges

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs ``2m``."""
        return 2 * self._num_edges

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node, shape ``(n,)``."""
        return self._degree

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return int(self._degree[v])

    @property
    def max_degree(self) -> int:
        """Maximum degree ``Delta``."""
        return int(self._degree.max()) if self._num_nodes else 0

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbours of ``v`` (with multiplicity), as an array view."""
        return self.indices[self.indptr[v]: self.indptr[v + 1]]

    def arcs_of(self, v: int) -> range:
        """Arc ids leaving node ``v``."""
        return range(int(self.indptr[v]), int(self.indptr[v + 1]))

    def arc_tail(self, arc: int) -> int:
        """Tail node of an arc (the node it leaves)."""
        return int(np.searchsorted(self.indptr, arc, side="right") - 1)

    @property
    def arc_tails(self) -> np.ndarray:
        """Tail node of every arc, shape ``(2m,)``."""
        tails = np.empty(self.num_arcs, dtype=np.int64)
        for v in range(self._num_nodes):
            tails[self.indptr[v]: self.indptr[v + 1]] = v
        return tails

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` pairs."""
        for u, v in self._edge_array:
            yield int(u), int(v)

    @property
    def edge_array(self) -> np.ndarray:
        """Undirected edges as an ``(m, 2)`` array."""
        return self._edge_array

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge ``{u, v}`` exists."""
        return bool(np.any(self.neighbors(u) == v))

    # -- structure ----------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graphs count as connected)."""
        if self._num_nodes <= 1:
            return True
        return len(self.bfs_order(0)) == self._num_nodes

    def bfs_order(self, source: int) -> list[int]:
        """Nodes reachable from ``source`` in BFS order."""
        seen = np.zeros(self._num_nodes, dtype=bool)
        seen[source] = True
        order = [source]
        frontier = [source]
        while frontier:
            nxt = []
            for u in frontier:
                for w in self.neighbors(u):
                    w = int(w)
                    if not seen[w]:
                        seen[w] = True
                        order.append(w)
                        nxt.append(w)
            frontier = nxt
        return order

    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distance from ``source`` to every node (-1 if unreachable)."""
        dist = np.full(self._num_nodes, -1, dtype=np.int64)
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            d += 1
            nxt = []
            for u in frontier:
                for w in self.neighbors(u):
                    w = int(w)
                    if dist[w] < 0:
                        dist[w] = d
                        nxt.append(w)
            frontier = nxt
        return dist

    def diameter(self) -> int:
        """Exact hop diameter (O(n m); intended for small graphs)."""
        best = 0
        for v in range(self._num_nodes):
            dist = self.bfs_distances(v)
            if np.any(dist < 0):
                raise ValueError("diameter of a disconnected graph")
            best = max(best, int(dist.max()))
        return best

    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of nodes."""
        seen = np.zeros(self._num_nodes, dtype=bool)
        components = []
        for v in range(self._num_nodes):
            if not seen[v]:
                comp = self.bfs_order(v)
                for u in comp:
                    seen[u] = True
                components.append(comp)
        return components

    def __repr__(self) -> str:
        return f"Graph(n={self._num_nodes}, m={self._num_edges})"


class WeightedGraph(Graph):
    """An undirected graph with a weight per edge.

    Weights may repeat; algorithms break ties by ``(weight, edge_id)``,
    which makes the MST unique (the standard perturbation argument the
    paper invokes by assuming distinct weights).
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[float],
    ):
        super().__init__(num_nodes, edges)
        weights = np.asarray(list(weights), dtype=np.float64)
        if weights.shape != (self.num_edges,):
            raise ValueError(
                f"expected {self.num_edges} weights, got {weights.shape}"
            )
        self.weights = weights

    def edge_weight(self, eid: int) -> float:
        """Weight of the undirected edge with id ``eid``."""
        return float(self.weights[eid])

    def edge_key(self, eid: int) -> tuple[float, int]:
        """Total-order key making all edge weights distinct."""
        return (float(self.weights[eid]), int(eid))

    def total_weight(self, edge_ids: Iterable[int]) -> float:
        """Sum of weights over the given edge ids."""
        ids = np.fromiter((int(e) for e in edge_ids), dtype=np.int64)
        return float(self.weights[ids].sum()) if ids.size else 0.0

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.num_nodes}, m={self.num_edges})"
