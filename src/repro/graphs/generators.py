"""Graph families used throughout the experiments.

Expander families (random regular, hypercube) have mixing time
``polylog(n)`` and are where the paper's algorithm shines; slow-mixing
families (ring, barbell) are included as stress/contrast cases.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .graph import Graph, WeightedGraph

__all__ = [
    "caveman_graph",
    "complete_graph",
    "ring_graph",
    "path_graph",
    "star_graph",
    "binary_tree",
    "grid_torus",
    "hypercube",
    "barbell_graph",
    "erdos_renyi",
    "lollipop_graph",
    "random_regular",
    "watts_strogatz",
    "with_random_weights",
    "with_weights",
    "FAMILIES",
]


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (the congested-clique topology)."""
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Graph(n, edges)


def ring_graph(n: int) -> Graph:
    """The ``n``-cycle: diameter ``n/2``, mixing time ``Theta(n^2)``."""
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """The path on ``n`` nodes."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def star_graph(n: int) -> Graph:
    """A star: node 0 is the hub."""
    return Graph(n, [(0, i) for i in range(1, n)])


def binary_tree(n: int) -> Graph:
    """A complete binary tree on ``n`` nodes (heap numbering)."""
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // 2, child))
    return Graph(n, edges)


def grid_torus(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus: 4-regular, mixing time ``Theta(n)``."""
    if rows < 3 or cols < 3:
        raise ValueError("torus needs at least 3 rows and 3 columns")

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((node(r, c), node(r, (c + 1) % cols)))
            edges.append((node(r, c), node((r + 1) % rows, c)))
    return Graph(rows * cols, edges)


def hypercube(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube: ``log n``-regular expander-like."""
    n = 1 << dim
    edges = []
    for v in range(n):
        for bit in range(dim):
            u = v ^ (1 << bit)
            if u > v:
                edges.append((v, u))
    return Graph(n, edges)


def barbell_graph(clique_size: int, bridge_length: int = 1) -> Graph:
    """Two cliques joined by a path: near-zero conductance.

    The canonical slow-mixing graph — mixing time ``Theta(n^2)`` or worse —
    used to stress-test behaviour when ``tau_mix`` dominates.
    """
    k = clique_size
    n = 2 * k + max(0, bridge_length - 1)
    edges = []
    for u in range(k):
        for v in range(u + 1, k):
            edges.append((u, v))
    offset = k + max(0, bridge_length - 1)
    for u in range(k):
        for v in range(u + 1, k):
            edges.append((offset + u, offset + v))
    chain = [k - 1] + [k + i for i in range(bridge_length - 1)] + [offset]
    for a, b in zip(chain, chain[1:]):
        edges.append((a, b))
    return Graph(n, edges)


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """A clique with a path tail: the classic max-hitting-time graph.

    The expected hitting time from the clique to the tail end is
    ``Theta(n^3)`` — the worst case for blind-walk delivery, used as a
    stress family alongside the barbell.
    """
    if clique_size < 3 or tail_length < 1:
        raise ValueError("need clique_size >= 3 and tail_length >= 1")
    edges = []
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            edges.append((u, v))
    previous = clique_size - 1
    for i in range(tail_length):
        edges.append((previous, clique_size + i))
        previous = clique_size + i
    return Graph(clique_size + tail_length, edges)


def caveman_graph(
    num_caves: int, cave_size: int, rng: np.random.Generator
) -> Graph:
    """Connected caveman graph: cliques in a ring, one rewired edge each.

    A standard community-structure family: good local density, weak
    global expansion (conductance ``~1/cave_size``).
    """
    if num_caves < 2 or cave_size < 3:
        raise ValueError("need num_caves >= 2 and cave_size >= 3")
    n = num_caves * cave_size
    edges = set()
    for cave in range(num_caves):
        base = cave * cave_size
        for u in range(cave_size):
            for v in range(u + 1, cave_size):
                edges.add((base + u, base + v))
    # Link consecutive caves by rewiring one internal edge to a member of
    # the next cave.
    for cave in range(num_caves):
        base = cave * cave_size
        next_base = ((cave + 1) % num_caves) * cave_size
        u = base
        v = base + 1
        edges.discard((min(u, v), max(u, v)))
        w = next_base + int(rng.integers(0, cave_size))
        edges.add((min(u, w), max(u, w)))
    graph = Graph(n, sorted(edges))
    if not graph.is_connected():
        # Extremely unlikely (rewire collision); retry deterministically.
        return caveman_graph(num_caves, cave_size, rng)
    return graph


def erdos_renyi(
    n: int, p: float, rng: np.random.Generator, require_connected: bool = True
) -> Graph:
    """``G(n, p)``; retries until connected when requested.

    Above the connectivity threshold ``p = Omega(log n / n)`` the retry
    loop terminates quickly w.h.p.
    """
    if not (0.0 < p <= 1.0):
        raise ValueError(f"p must be in (0, 1], got {p}")
    for _ in range(200):
        mask = rng.random((n, n)) < p
        upper = np.triu(mask, k=1)
        us, vs = np.nonzero(upper)
        graph = Graph(n, list(zip(us.tolist(), vs.tolist())))
        if not require_connected or graph.is_connected():
            return graph
    raise RuntimeError(
        f"G({n}, {p}) was never connected in 200 attempts; "
        "p is likely below the connectivity threshold"
    )


def random_regular(n: int, d: int, rng: np.random.Generator) -> Graph:
    """A random ``d``-regular simple graph via the pairing model.

    Random regular graphs with ``d >= 3`` are expanders w.h.p. — the
    paper's motivating topology for overlay/peer-to-peer networks.
    """
    if n * d % 2 != 0:
        raise ValueError("n * d must be even")
    if d >= n:
        raise ValueError("degree must be below n")
    for _ in range(50):
        pairs = _repaired_pairing(n, d, rng)
        if pairs is None:
            continue
        us, vs = pairs
        graph = Graph(n, list(zip(us.tolist(), vs.tolist())))
        if graph.is_connected():
            return graph
    raise RuntimeError(f"failed to sample a connected {d}-regular graph")


def _repaired_pairing(n: int, d: int, rng: np.random.Generator):
    """One pairing-model sample with conflict repair.

    Full rejection has success probability ``~exp(-d^2/4)`` and is hopeless
    already at ``d = 6``; instead, stubs involved in self-loops or repeated
    edges are reshuffled among themselves until no conflict remains.
    """
    stubs = np.repeat(np.arange(n), d)
    rng.shuffle(stubs)
    for _ in range(300):
        pairs = stubs.reshape(-1, 2)
        us = np.minimum(pairs[:, 0], pairs[:, 1])
        vs = np.maximum(pairs[:, 0], pairs[:, 1])
        keys = us.astype(np.int64) * n + vs
        bad = us == vs
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        duplicate = np.zeros_like(bad)
        repeats = sorted_keys[1:] == sorted_keys[:-1]
        duplicate[order[1:][repeats]] = True
        duplicate[order[:-1][repeats]] = True
        bad |= duplicate
        if not bad.any():
            return us, vs
        bad_stub_mask = np.repeat(bad, 2)
        conflicted = stubs[bad_stub_mask]
        if conflicted.shape[0] < 4:
            # A single bad pair cannot fix itself; reshuffle everything.
            rng.shuffle(stubs)
            continue
        rng.shuffle(conflicted)
        stubs[bad_stub_mask] = conflicted
    return None


def watts_strogatz(
    n: int, k: int, p: float, rng: np.random.Generator
) -> Graph:
    """Watts–Strogatz small world: ring lattice with rewired edges."""
    if k % 2 != 0 or k < 2:
        raise ValueError("k must be even and >= 2")
    edge_set = set()
    for v in range(n):
        for j in range(1, k // 2 + 1):
            u, w = v, (v + j) % n
            edge_set.add((min(u, w), max(u, w)))
    edges = list(edge_set)
    for i, (u, w) in enumerate(edges):
        if rng.random() < p:
            for _ in range(20):
                new_w = int(rng.integers(n))
                candidate = (min(u, new_w), max(u, new_w))
                if new_w != u and candidate not in edge_set:
                    edge_set.discard((u, w))
                    edge_set.add(candidate)
                    edges[i] = candidate
                    break
    graph = Graph(n, sorted(edge_set))
    if not graph.is_connected():
        return watts_strogatz(n, k, p, rng)
    return graph


def with_random_weights(
    graph: Graph, rng: np.random.Generator, low: float = 0.0, high: float = 1.0
) -> WeightedGraph:
    """Attach i.i.d. uniform weights (distinct w.p. 1) to a graph."""
    weights = rng.uniform(low, high, size=graph.num_edges)
    return WeightedGraph(graph.num_nodes, list(graph.edges()), weights)


def with_weights(graph: Graph, weights) -> WeightedGraph:
    """Attach the given weights to a graph."""
    return WeightedGraph(graph.num_nodes, list(graph.edges()), weights)


def _expander_factory(n: int, rng: np.random.Generator) -> Graph:
    degree = max(4, 2 * int(round(math.log2(n) / 2)))
    return random_regular(n, degree, rng)


#: Named graph families ``name -> factory(n, rng)`` used by benchmarks.
FAMILIES: dict[str, Callable[[int, np.random.Generator], Graph]] = {
    "expander": _expander_factory,
    "hypercube": lambda n, rng: hypercube(int(round(math.log2(n)))),
    "torus": lambda n, rng: grid_torus(
        int(round(math.sqrt(n))), int(round(math.sqrt(n)))
    ),
    "ring": lambda n, rng: ring_graph(n),
    "barbell": lambda n, rng: barbell_graph(n // 2),
    "erdos_renyi": lambda n, rng: erdos_renyi(
        n, min(1.0, 4.0 * math.log(n) / n), rng
    ),
}
