"""Interop: NetworkX conversion and JSON (de)serialization.

Lets downstream users bring their own topologies (any NetworkX graph)
and persist/reload the graphs used in experiments for exact
reproducibility.
"""

from __future__ import annotations

import json

import numpy as np

from .graph import Graph, WeightedGraph

__all__ = [
    "to_networkx",
    "from_networkx",
    "to_json",
    "from_json",
    "save_graph",
    "load_graph",
]


def to_networkx(graph: Graph):
    """Convert to a ``networkx.Graph`` (weights become edge attributes)."""
    import networkx as nx

    result = nx.MultiGraph() if _has_multi_edges(graph) else nx.Graph()
    result.add_nodes_from(range(graph.num_nodes))
    weighted = isinstance(graph, WeightedGraph)
    for eid, (u, v) in enumerate(graph.edges()):
        if weighted:
            result.add_edge(u, v, weight=float(graph.weights[eid]))
        else:
            result.add_edge(u, v)
    return result


def from_networkx(nx_graph) -> Graph:
    """Convert from NetworkX; nodes are relabelled to ``0..n-1``.

    Edge ``weight`` attributes, when present on every edge, produce a
    :class:`WeightedGraph`.
    """
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = []
    weights = []
    all_weighted = nx_graph.number_of_edges() > 0
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            raise ValueError("self-loops are not supported")
        edges.append((index[u], index[v]))
        if "weight" in data:
            weights.append(float(data["weight"]))
        else:
            all_weighted = False
    if all_weighted:
        return WeightedGraph(len(nodes), edges, weights)
    return Graph(len(nodes), edges)


def to_json(graph: Graph) -> str:
    """Serialize to a JSON string."""
    payload: dict = {
        "num_nodes": graph.num_nodes,
        "edges": [[int(u), int(v)] for u, v in graph.edges()],
    }
    if isinstance(graph, WeightedGraph):
        payload["weights"] = [float(w) for w in graph.weights]
    return json.dumps(payload)


def from_json(text: str) -> Graph:
    """Deserialize a graph written by :func:`to_json`."""
    payload = json.loads(text)
    edges = [(int(u), int(v)) for u, v in payload["edges"]]
    if "weights" in payload:
        return WeightedGraph(
            int(payload["num_nodes"]), edges, payload["weights"]
        )
    return Graph(int(payload["num_nodes"]), edges)


def save_graph(graph: Graph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w") as handle:
        handle.write(to_json(graph))


def load_graph(path: str) -> Graph:
    """Read a graph from a JSON file."""
    with open(path) as handle:
        return from_json(handle.read())


def _has_multi_edges(graph: Graph) -> bool:
    if graph.num_edges == 0:
        return False
    edges = graph.edge_array
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    keys = lo * graph.num_nodes + hi
    return len(np.unique(keys)) != len(keys)
