"""ASCII table formatting for experiment output."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_number"]


def format_number(value) -> str:
    """Compact human-readable rendering of a numeric cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10000 else str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or 0 < abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dicts as an aligned ASCII table.

    Args:
        rows: the data; all rows should share keys.
        columns: column order (default: first row's key order).
        title: optional heading line.

    Returns:
        The formatted table as a string.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_number(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)
