"""Experiment runners for the E1–E11 reproduction suite (see DESIGN.md §5).

Each function returns a list of row dicts; ``benchmarks/bench_e*.py``
print them next to the paper's claims, and EXPERIMENTS.md records the
outcomes.  The paper is a theory paper, so every experiment reproduces a
theorem/lemma-shaped claim rather than a testbed number.
"""

from __future__ import annotations

import math

import numpy as np

from .. import theory
from ..baselines import (
    bfs_store_and_forward,
    ghs_mst,
    gkp_mst,
    kruskal,
    two_hop_relay_emulation,
)
from ..core import (
    MstRunner,
    Router,
    build_hierarchy,
    dense_clique_emulation,
    emulate_clique,
)
from ..graphs import (
    barbell_graph,
    erdos_renyi,
    grid_torus,
    hypercube,
    random_regular,
    ring_graph,
    with_random_weights,
)
from ..graphs.properties import edge_expansion_exact, regular_mixing_time
from ..params import Params
from ..rng import derive_rng
from ..walks import (
    degree_proportional_starts,
    estimate_mixing_time,
    run_correlated_walks,
    run_parallel_walks,
)

__all__ = [
    "routing_scaling",
    "mst_scaling",
    "clique_emulation_sweep",
    "dense_regime_sweep",
    "mixing_bound_survey",
    "mixing_scaling",
    "parallel_walk_sweep",
    "beta_ablation",
    "recursion_decomposition",
    "virtual_tree_trace",
    "partition_structure",
    "portal_uniformity",
    "correlated_ablation",
    "stretch_profile",
    "crossover_analysis",
    "native_fidelity",
    "preset_ablation",
]


def _expander(n: int, rng: np.random.Generator):
    degree = 6 if n <= 256 else 8
    return random_regular(n, degree, rng)


def routing_scaling(
    sizes=(64, 128, 256),
    params: Params | None = None,
    seed: int = 1,
    include_baseline: bool = True,
) -> list[dict]:
    """E1: permutation-routing rounds vs. n on expanders (Theorem 1.2)."""
    params = params or Params.default()
    rows = []
    for n in sizes:
        rng = derive_rng(seed + n)
        graph = _expander(n, rng)
        hierarchy = build_hierarchy(graph, params, rng)
        router = Router(hierarchy, params=params, rng=rng)
        perm = rng.permutation(n)
        result = router.route(np.arange(n), perm)
        row = {
            "n": n,
            "tau_mix": hierarchy.g0.tau_mix,
            "beta": hierarchy.beta,
            "depth": hierarchy.depth,
            "delivered": result.delivered,
            "rounds": result.cost_rounds,
            "rounds/tau": result.cost_rounds / hierarchy.g0.tau_mix,
            "envelope(c=3)": theory.subpolynomial_envelope(n, c=3.0),
        }
        if include_baseline:
            baseline = bfs_store_and_forward(graph, np.arange(n), perm, rng)
            row["bfs_fwd_rounds"] = baseline.rounds
        rows.append(row)
    return rows


def mst_scaling(
    sizes=(64, 128, 256),
    params: Params | None = None,
    seed: int = 2,
) -> list[dict]:
    """E2 + E11: MST rounds vs. n, against GHS / GKP / the barrier curve."""
    params = params or Params.default()
    rows = []
    for n in sizes:
        rng = derive_rng(seed + n)
        graph = with_random_weights(_expander(n, rng), rng)
        hierarchy = build_hierarchy(graph, params, rng)
        runner = MstRunner(graph, hierarchy=hierarchy, params=params, rng=rng)
        result = runner.run()
        correct = result.edge_ids == kruskal(graph)
        diameter = graph.diameter()
        rows.append(
            {
                "n": n,
                "tau_mix": hierarchy.g0.tau_mix,
                "correct": correct,
                "iterations": result.num_iterations,
                "rounds": result.rounds,
                "rounds/tau": result.rounds / hierarchy.g0.tau_mix,
                "ghs_rounds": ghs_mst(graph).rounds,
                "gkp_rounds": gkp_mst(graph).rounds,
                "D+sqrt(n)": theory.das_sarma_lower_bound(n, diameter),
            }
        )
    return rows


def clique_emulation_sweep(
    n: int = 48,
    probabilities=(0.2, 0.3, 0.45, 0.65),
    params: Params | None = None,
    seed: int = 3,
) -> list[dict]:
    """E3: clique emulation on G(n, p) vs. the Balliu baseline."""
    params = params or Params.default()
    rows = []
    for p in probabilities:
        rng = derive_rng(seed)
        graph = erdos_renyi(n, p, rng)
        hierarchy = build_hierarchy(graph, params, rng)
        ours = emulate_clique(hierarchy, params, rng)
        baseline = two_hop_relay_emulation(graph, rng)
        rows.append(
            {
                "p": p,
                "n": n,
                "delivered": ours.delivered,
                "phases": ours.num_phases,
                "rounds": ours.rounds,
                "phases*tau": ours.num_phases * hierarchy.g0.tau_mix,
                "balliu_rounds": baseline.rounds
                if baseline.delivered
                else float("inf"),
                "theory 1/p+logn": theory.clique_emulation_er_bound(n, p),
                "balliu min{1/p^2,np}": theory.balliu_emulation_bound(n, p),
            }
        )
    return rows


def dense_regime_sweep(
    n: int = 64,
    probabilities=(0.35, 0.5, 0.65, 0.8),
    seed: int = 11,
) -> list[dict]:
    """E3b: the dense-regime emulation (Theorem 1.3, second clause)."""
    rows = []
    for p in probabilities:
        rng = derive_rng(seed)
        graph = erdos_renyi(n, p, rng)
        result = dense_clique_emulation(graph, rng)
        baseline = two_hop_relay_emulation(graph, rng)
        h_estimate = n * p / 2.0  # h = Theta(np) w.h.p. in this regime
        rows.append(
            {
                "p": p,
                "n": n,
                "Delta": graph.max_degree,
                "delivered": result.delivered,
                "rounds": result.rounds,
                "retries": result.retries,
                "theory n/h*logn*log*n": theory.clique_emulation_bound(
                    n, h_estimate, graph.max_degree
                ),
                "balliu_rounds": baseline.rounds
                if baseline.delivered
                else float("inf"),
            }
        )
    return rows


def mixing_bound_survey(seed: int = 4) -> list[dict]:
    """E4: exact regular-walk mixing time vs. the Lemma 2.3 bound."""
    rng = derive_rng(seed)
    families = {
        "ring(16)": ring_graph(16),
        "torus(4x4)": grid_torus(4, 4),
        "hypercube(4)": hypercube(4),
        "expander(16,4)": random_regular(16, 4, rng),
        "barbell(8)": barbell_graph(8),
    }
    rows = []
    for name, graph in families.items():
        h = edge_expansion_exact(graph)
        measured = regular_mixing_time(graph)
        bound = theory.cheeger_mixing_bound(
            graph.max_degree, h, graph.num_nodes
        )
        rows.append(
            {
                "family": name,
                "n": graph.num_nodes,
                "h(G)": h,
                "Delta": graph.max_degree,
                "tau_bar measured": measured,
                "lemma2.3 bound": bound,
                "bound/measured": bound / measured,
            }
        )
    return rows


def mixing_scaling(
    sizes=(32, 64, 128, 256),
    seed: int = 15,
) -> list[dict]:
    """E4b: mixing-time scaling per family, with fitted exponents.

    The families bracket the paper's regime: rings mix in ``Theta(n^2)``,
    tori in ``Theta(n)``, expanders in ``O(log n)`` — the fitted exponent
    of ``tau_mix ~ n^alpha`` separates them cleanly and identifies where
    ``tau_mix``-parameterized algorithms are worthwhile.
    """
    from ..graphs import grid_torus, mixing_time, random_regular, ring_graph
    from .fits import power_law_exponent

    rng = derive_rng(seed)
    families = {
        "ring": lambda n: ring_graph(n),
        "torus": lambda n: grid_torus(
            int(round(math.sqrt(n))), int(round(math.sqrt(n)))
        ),
        "expander": lambda n: random_regular(n, 6, rng),
    }
    rows = []
    for name, factory in families.items():
        ns, taus = [], []
        for n in sizes:
            graph = factory(n)
            ns.append(graph.num_nodes)
            taus.append(mixing_time(graph))
        alpha, __ = power_law_exponent(ns, taus)
        rows.append(
            {
                "family": name,
                "n_small": ns[0],
                "tau_small": taus[0],
                "n_large": ns[-1],
                "tau_large": taus[-1],
                "fitted alpha": alpha,
                "theory alpha": {"ring": 2.0, "torus": 1.0,
                                 "expander": 0.0}[name],
            }
        )
    return rows


def parallel_walk_sweep(
    n: int = 128,
    ks=(1, 2, 4, 8),
    steps: int = 20,
    seed: int = 5,
) -> list[dict]:
    """E5: measured parallel-walk load and schedule vs. Lemmas 2.4 / 2.5."""
    rng = derive_rng(seed)
    graph = random_regular(n, 6, rng)
    rows = []
    for k in ks:
        starts = degree_proportional_starts(graph, k)
        report = run_parallel_walks(graph, starts, steps, rng)
        correlated = run_correlated_walks(graph, starts, steps, rng)
        rows.append(
            {
                "k": k,
                "walks": report.run.num_walks,
                "steps": steps,
                "peak_load": report.measured_peak_load,
                "lemma2.4 bound": report.predicted_peak_load,
                "load_ratio": report.load_ratio,
                "rounds": report.measured_rounds,
                "lemma2.5 bound": report.predicted_rounds,
                "rounds_ratio": report.rounds_ratio,
                "correlated_rounds": correlated.schedule_rounds(),
                "kT lower bound": k * steps,
            }
        )
    return rows


def beta_ablation(
    n: int = 128,
    betas=(2, 4, 8, 16, 32),
    params: Params | None = None,
    seed: int = 6,
) -> list[dict]:
    """E6: the beta trade-off (Lemma 3.2) — construction vs. routing cost."""
    params = params or Params.default()
    base_rng = derive_rng(seed)
    graph = _expander(n, base_rng)
    rows = []
    for beta in betas:
        rng = derive_rng(seed + beta)
        hierarchy = build_hierarchy(graph, params, rng, beta=beta)
        router = Router(hierarchy, params=params, rng=rng)
        perm = rng.permutation(n)
        result = router.route(np.arange(n), perm)
        rows.append(
            {
                "beta": beta,
                "depth": hierarchy.depth,
                "build_rounds": hierarchy.construction_rounds(),
                "route_rounds": result.cost_rounds,
                "route_g0_rounds": result.cost_g0_rounds,
                "delivered": result.delivered,
                "beta*(n)": theory.optimal_beta(n),
            }
        )
    return rows


def recursion_decomposition(
    n: int = 128,
    beta: int = 4,
    params: Params | None = None,
    seed: int = 7,
) -> list[dict]:
    """E7: per-level cost decomposition of one routing instance (Lemma 3.4)."""
    params = params or Params.default()
    rng = derive_rng(seed)
    graph = _expander(n, rng)
    hierarchy = build_hierarchy(graph, params, rng, beta=beta)
    router = Router(hierarchy, params=params, rng=rng)
    perm = rng.permutation(n)
    result = router.route(np.arange(n), perm)
    log_n = math.log2(n)
    rows = []
    for level in sorted(result.level_costs):
        cost = result.level_costs[level]
        emulation = (
            hierarchy.levels[level - 1].emulation_cost if level >= 1 else
            hierarchy.g0.round_cost
        )
        rows.append(
            {
                "level": level,
                "invocations": cost.invocations,
                "2^level": 2**level,
                "hop_rounds": cost.hop_rounds,
                "bottom_rounds": cost.bottom_rounds,
                "packets_crossing": cost.packets_crossing,
                "emul_cost": emulation,
                "log^2 n": log_n**2,
            }
        )
    return rows


def virtual_tree_trace(
    n: int = 64,
    params: Params | None = None,
    seed: int = 8,
) -> list[dict]:
    """E8: Lemma 4.1 invariants (depth, degree) over Boruvka iterations."""
    params = params or Params.default()
    rng = derive_rng(seed)
    graph = with_random_weights(_expander(n, rng), rng)
    runner = MstRunner(graph, params=params, rng=rng)
    result = runner.run()
    log_n = math.log2(n)
    rows = []
    for stats in result.iterations:
        rows.append(
            {
                "iteration": stats.iteration,
                "components": stats.components_before,
                "max_depth": stats.max_tree_depth,
                "depth_bound log^2 n": log_n**2,
                "degree_ratio": stats.max_tree_degree_ratio,
                "degree_bound log n": log_n,
                "upcast_steps": stats.upcast_steps,
            }
        )
    return rows


def partition_structure(
    n: int = 128,
    beta: int = 4,
    params: Params | None = None,
    seed: int = 9,
) -> list[dict]:
    """E9: Figure 1's structure — balance (P1) and portal coverage per level."""
    params = params or Params.default()
    rng = derive_rng(seed)
    graph = _expander(n, rng)
    hierarchy = build_hierarchy(graph, params, rng, beta=beta)
    from ..core import build_portals

    portals = build_portals(hierarchy, params, rng)
    rows = []
    for level in range(1, hierarchy.depth + 1):
        sizes = hierarchy.partition.part_sizes(level)
        table = portals.tables[level - 1]
        parts = hierarchy.parts_at(level)
        own = parts % hierarchy.beta
        needed = covered = 0
        for j in range(hierarchy.beta):
            mask = own != j
            needed += int(mask.sum())
            covered += int((table[mask, j] >= 0).sum())
        rows.append(
            {
                "level": level,
                "parts": int(sizes.shape[0]),
                "min_part": int(sizes.min()),
                "max_part": int(sizes.max()),
                "balance": hierarchy.partition.balance_ratio(level),
                "portal_coverage": covered / max(1, needed),
                "clique": hierarchy.levels[level - 1].is_clique,
            }
        )
    return rows


def portal_uniformity(
    n: int = 64,
    params: Params | None = None,
    seed: int = 10,
) -> list[dict]:
    """E10: portals are ~uniform over boundary nodes (walk vs. sampled)."""
    base_params = params or Params.default()
    rng = derive_rng(seed)
    graph = _expander(n, rng)
    hierarchy = build_hierarchy(graph, base_params, rng, beta=4)
    from ..core import build_portals

    rows = []
    for variant, overrides in (
        ("sampled", {}),
        ("walk", {"use_walk_portals": True, "portal_walks_factor": 6.0}),
    ):
        portals = build_portals(
            hierarchy, base_params.with_overrides(**overrides), rng
        )
        table = portals.tables[0]
        parts = hierarchy.parts_at(1)
        part0 = int(parts[0])
        members = np.flatnonzero(parts == part0)
        target = (part0 % hierarchy.beta + 1) % hierarchy.beta
        choices = table[members, target]
        choices = choices[choices >= 0]
        values, counts = np.unique(choices, return_counts=True)
        expected = choices.shape[0] / max(1, values.shape[0])
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        rows.append(
            {
                "variant": variant,
                "samples": int(choices.shape[0]),
                "support": int(values.shape[0]),
                "max_count": int(counts.max()),
                "chi2_per_dof": chi2 / max(1, values.shape[0] - 1),
            }
        )
    return rows


def correlated_ablation(
    n: int = 96,
    params: Params | None = None,
    seed: int = 12,
) -> list[dict]:
    """E12: independent vs. correlated walk scheduling, end to end.

    The paper's deferred ``k = o(log n)`` refinement: running the
    construction and preparation walks token-balanced removes the
    additive ``log n`` from every Lemma 2.5 schedule.
    """
    base = params or Params.default()
    rng = derive_rng(seed)
    graph = _expander(n, rng)
    rows = []
    for variant, correlated in (("independent", False), ("correlated", True)):
        local_params = base.with_overrides(use_correlated_walks=correlated)
        hierarchy = build_hierarchy(
            graph, local_params, derive_rng(seed + 1)
        )
        router = Router(
            hierarchy, params=local_params, rng=derive_rng(seed + 2)
        )
        perm = derive_rng(seed + 3).permutation(n)
        result = router.route(np.arange(n), perm)
        rows.append(
            {
                "variant": variant,
                "g0_build": hierarchy.g0.build_rounds,
                "g0_round_cost": hierarchy.g0.round_cost,
                "route_rounds": result.cost_rounds,
                "delivered": result.delivered,
            }
        )
    return rows


def stretch_profile(
    n: int = 128,
    betas=(4, 8, 32),
    params: Params | None = None,
    seed: int = 13,
) -> list[dict]:
    """E13: per-packet hop counts (routing stretch) vs. the depth bound.

    A packet's journey uses at most one portal hop per level per stage
    plus one bottom delivery per visited leaf: ``2^{depth+1} - 1`` hops
    in the worst case (the ``2 T(m/beta)`` branching of Lemma 3.4).
    """
    params = params or Params.default()
    rng = derive_rng(seed)
    graph = _expander(n, rng)
    rows = []
    for beta in betas:
        local_rng = derive_rng(seed + beta)
        hierarchy = build_hierarchy(graph, params, local_rng, beta=beta)
        router = Router(hierarchy, params=params, rng=local_rng)
        perm = local_rng.permutation(n)
        result = router.route(np.arange(n), perm, trace=True)
        hops = result.packet_hops
        rows.append(
            {
                "beta": beta,
                "depth": hierarchy.depth,
                "delivered": result.delivered,
                "mean_hops": float(hops.mean()),
                "max_hops": int(hops.max()),
                "bound 2^(d+1)-1": 2 ** (hierarchy.depth + 1) - 1,
            }
        )
    return rows


def crossover_analysis(
    sizes=(64, 128, 256),
    params: Params | None = None,
    seed: int = 14,
) -> list[dict]:
    """E14: where would the paper's algorithm overtake D + sqrt(n)?

    Fits the envelope constant ``c`` in ``rounds/tau = 2^{c sqrt(log n
    loglog n)}`` from measured routing runs, then solves for the smallest
    ``n`` where ``2^{c sqrt(log n loglog n)}`` drops below ``sqrt(n)`` —
    the crossover against the ``tilde-Theta(D + sqrt n)`` general-graph
    algorithms on polylog-mixing expanders.  Also reports idealized
    constants for context.
    """
    rows_measured = routing_scaling(
        sizes=sizes, params=params, seed=seed, include_baseline=False
    )
    rows = []
    for row in rows_measured:
        c = theory.fitted_envelope_constant(row["n"], row["rounds/tau"])
        crossover = theory.crossover_n(c)
        rows.append(
            {
                "source": f"measured n={row['n']}",
                "envelope_c": c,
                "crossover_n": crossover
                if crossover is not None
                else float("inf"),
            }
        )
    for c in (1.0, 2.0, 3.0):
        crossover = theory.crossover_n(c)
        rows.append(
            {
                "source": f"idealized c={c:g}",
                "envelope_c": c,
                "crossover_n": crossover
                if crossover is not None
                else float("inf"),
            }
        )
    return rows


def native_fidelity(
    sizes=(16, 20, 24),
    seed: int = 16,
) -> list[dict]:
    """E15: CONGEST-native G0 vs. the vectorized calibration.

    Builds the level-zero overlay twice at toy scale — once through real
    message passing with embedded paths (``repro.congest.native``), once
    through the vectorized pipeline — and compares the cost of one G0
    round under each.
    """
    from ..congest.native import build_native_g0
    from ..graphs import mixing_time, random_regular
    from .. import core

    rows = []
    for n in sizes:
        rng = derive_rng(seed + n)
        graph = random_regular(n, 4, rng)
        tau = mixing_time(graph)
        walks = max(8, int(round(3 * math.log2(n))))
        degree = max(4, int(round(1.5 * math.log2(n))))
        native = build_native_g0(
            graph, walks_per_vnode=walks, degree=degree,
            length=2 * tau, seed=seed + n,
        )
        params = Params.default().with_overrides(
            g0_walks_per_vnode_factor=walks / math.log2(n),
            g0_degree_factor=degree / math.log2(n),
        )
        reference = core.build_g0(
            graph, params, derive_rng(seed + n), tau_mix=tau
        )
        rows.append(
            {
                "n": n,
                "tau_mix": tau,
                "native_round": native.round_rounds,
                "charged_round": reference.round_cost,
                "ratio": native.round_rounds / reference.round_cost,
                "native_build": native.build_rounds,
                "charged_build": reference.build_rounds,
                "native_connected": native.overlay.is_connected(),
            }
        )
    return rows


def preset_ablation(
    n: int = 64,
    seed: int = 17,
) -> list[dict]:
    """E16: the Params presets, end to end on one graph.

    ``paper()`` uses the literal constants (feasible only at toy n),
    ``default()`` the calibrated ones, ``fast()`` the benchmark-sweep
    ones, and ``correlated`` adds the deferred walk refinement.  All must
    deliver; the cost spread quantifies what the constants buy.
    """
    rng = derive_rng(seed)
    graph = _expander(n, rng)
    presets = [
        ("fast", Params.fast()),
        ("default", Params.default()),
        ("default+correlated",
         Params.default().with_overrides(use_correlated_walks=True)),
        ("paper", Params.paper()),
    ]
    rows = []
    for name, preset in presets:
        local = derive_rng(seed + 1)
        hierarchy = build_hierarchy(graph, preset, local)
        router = Router(hierarchy, params=preset, rng=local)
        perm = derive_rng(seed + 2).permutation(n)
        result = router.route(np.arange(n), perm)
        rows.append(
            {
                "preset": name,
                "g0_degree": float(hierarchy.g0.overlay.degrees.mean()),
                "build_rounds": hierarchy.construction_rounds(),
                "route_rounds": result.cost_rounds,
                "delivered": result.delivered,
            }
        )
    return rows
