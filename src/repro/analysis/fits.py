"""Scaling-curve fits for experiment series.

Benchmarks assert growth *shapes* (polynomial exponents, subpolynomial
envelopes); these helpers turn measured series into comparable numbers.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["power_law_exponent", "is_subpolynomial_consistent"]


def power_law_exponent(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[float, float]:
    """Least-squares fit of ``y = c * x^alpha`` in log-log space.

    Args:
        xs: strictly positive inputs (e.g. ``n`` values).
        ys: strictly positive measurements.

    Returns:
        ``(alpha, c)``.

    Raises:
        ValueError: on fewer than 2 points or non-positive data.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape[0] < 2 or xs.shape != ys.shape:
        raise ValueError("need at least two (x, y) pairs")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit needs positive data")
    log_x = np.log(xs)
    log_y = np.log(ys)
    alpha, log_c = np.polyfit(log_x, log_y, 1)
    return float(alpha), float(math.exp(log_c))


def is_subpolynomial_consistent(
    ns: Sequence[float],
    ys: Sequence[float],
    envelope_c: float = 4.0,
) -> bool:
    """Whether a series is consistent with the paper's envelope.

    Checks that every normalized value sits below
    ``envelope_c``-scaled ``2^{envelope_c * sqrt(log n log log n)}`` —
    a loose necessary condition, useful as a bench smoke test (a truly
    polynomial ``n^eps`` series escapes any fixed envelope as ``n``
    grows, but at bench sizes this is a sanity check, not a proof).
    """
    from ..theory import subpolynomial_envelope

    for n, y in zip(ns, ys):
        if y > subpolynomial_envelope(int(n), c=envelope_c):
            return False
    return True
