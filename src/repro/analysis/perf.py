"""Perf-baseline harness: a pinned kernel suite with a committed record.

``python -m repro bench kernels`` runs this suite (via the registry in
:mod:`repro.bench.registry`) and writes ``benchmarks/results/kernels.json``
— one row per ``(kernel, problem size)`` with the wall time and the
round count of the run.  Later performance PRs re-run the suite and
diff against the committed record, so speedups are *recorded* rather
than asserted.  See ``docs/performance.md`` for the kernel inventory
and the refresh procedure.

Two deliberate design points:

* every kernel derives all randomness from the single ``seed`` argument
  (the committed baseline is reproducible bit-for-bit in its ``rounds``
  columns; only ``wall_s`` is machine-dependent);
* the scheduler kernel times the vectorized and the reference
  implementation on the *same* workload and verifies they return equal
  results before reporting — the baseline cannot silently record a
  speedup obtained by changing semantics.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Callable, Sequence

import numpy as np

from ..baselines.routing_baselines import schedule_paths
from ..baselines.routing_baselines_ref import schedule_paths_ref
from ..congest.detector import run_heartbeat_detector
from ..congest.faults import FaultPlan, FaultSpec
from ..congest.native import build_native_g0, build_native_level1
from ..congest.reliable import reliable_forward_demands
from ..congest.walk_protocol import run_walk_protocol
from ..core import MstRunner, Router, build_hierarchy
from ..graphs import (
    Graph,
    mixing_time,
    random_regular,
    with_random_weights,
)
from ..params import Params
from ..rng import derive_rng
from ..walks import degree_proportional_starts, run_lazy_walks

__all__ = [
    "BENCH_KEYS",
    "BenchRow",
    "circulation_paths",
    "delivery_curve",
    "load_bench",
    "run_bench_suite",
    "run_fault_suite",
    "run_pr7_suite",
    "run_recovery_suite",
    "run_serve_suite",
    "validate_bench",
    "write_bench",
]

#: Exactly the keys of one serialized row, in column order.
BENCH_KEYS = ("kernel", "n", "seed", "wall_s", "rounds")


@dataclass
class BenchRow:
    """One benchmark measurement.

    Attributes:
        kernel: which kernel ran (e.g. ``"scheduler_vectorized"``).
        n: the problem size (number of base-graph nodes).
        seed: the suite seed the run derived its randomness from.
        wall_s: best-of-repeats wall time in seconds (machine-dependent;
            everything else in the row is seed-deterministic).
        rounds: the round count the run produced — the semantic
            fingerprint that must not drift when the kernel gets faster.
    """

    kernel: str
    n: int
    seed: int
    wall_s: float
    rounds: int

    def __post_init__(self):
        # Normalise numpy scalars so the rows serialize as plain JSON.
        self.n = int(self.n)
        self.seed = int(self.seed)
        self.wall_s = float(self.wall_s)
        self.rounds = int(self.rounds)


def _timed(fn: Callable[[], object], repeats: int = 1):
    """Best-of-``repeats`` wall time of ``fn`` plus its (last) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()  # reprolint: disable=R003 (measurement)
        result = fn()
        elapsed = time.perf_counter() - begin  # reprolint: disable=R003
        best = min(best, elapsed)
    return round(best, 6), result


def circulation_paths(
    graph: Graph, num_packets: int, length: int
) -> list[list[int]]:
    """Contention-free packet paths along an Eulerian circulation.

    Walks an Eulerian circuit of the symmetric digraph (every directed
    arc exactly once — it exists for any connected graph) and starts
    packet ``i`` at circuit offset ``2 i`` with ``length`` hops.  Every
    packet then occupies a *distinct* directed edge in every round: a
    congestion-free path system in the sense of the paper's routing
    sections, and the scheduler's throughput-bound regime.
    """
    num_arcs = int(graph.indptr[-1])
    if 2 * num_packets > num_arcs:
        raise ValueError(
            f"need 2*num_packets <= num_arcs, got {num_packets} packets "
            f"for {num_arcs} arcs"
        )
    nxt = graph.indptr[:-1].astype(np.int64)
    limit = graph.indptr[1:]
    stack = [0]
    circuit: list[int] = []
    while stack:
        v = stack[-1]
        if nxt[v] < limit[v]:
            arc = int(nxt[v])
            nxt[v] += 1
            stack.append(int(graph.indices[arc]))
        else:
            circuit.append(stack.pop())
    circuit.reverse()
    if len(circuit) != num_arcs + 1:
        raise ValueError("circulation workload needs a connected graph")
    base = circuit[:-1]
    ext = base + base + base[: length + 1]
    return [ext[2 * i : 2 * i + length + 1] for i in range(num_packets)]


def _bench_walk_engine(seed: int, quick: bool) -> list[BenchRow]:
    configs = [(256, 20)] if quick else [(1024, 100), (4096, 100)]
    rows = []
    for n, steps in configs:
        graph = random_regular(n, 8, derive_rng(seed, n))
        starts = degree_proportional_starts(graph, 2)
        wall, __ = _timed(
            lambda: run_lazy_walks(
                graph, starts, steps, derive_rng(seed, n, 1)
            ),
            repeats=1 if quick else 3,
        )
        rows.append(BenchRow("walk_engine", n, seed, wall, steps))
    return rows


def _bench_scheduler(seed: int, quick: bool) -> list[BenchRow]:
    # (n, degree, packets, hops): 4096 packets over random_regular(1024, 8)
    # is the pinned acceptance workload of PR 2.
    configs = (
        [(256, 8, 512, 16)]
        if quick
        else [(1024, 8, 4096, 192), (512, 8, 2048, 64)]
    )
    rows = []
    for n, degree, packets, hops in configs:
        graph = random_regular(n, degree, derive_rng(seed, n))
        paths = circulation_paths(graph, packets, hops)
        wall_vec, res_vec = _timed(
            lambda: schedule_paths(
                paths, rng=derive_rng(seed, n, 2)
            ),
            repeats=1 if quick else 5,
        )
        wall_ref, res_ref = _timed(
            lambda: schedule_paths_ref(
                paths, rng=derive_rng(seed, n, 2)
            ),
            repeats=1 if quick else 2,
        )
        if res_vec != res_ref:
            raise AssertionError(
                f"scheduler implementations diverged on the bench workload: "
                f"{res_vec} != {res_ref}"
            )
        rows.append(
            BenchRow("scheduler_vectorized", n, seed, wall_vec, res_vec.rounds)
        )
        rows.append(
            BenchRow("scheduler_reference", n, seed, wall_ref, res_ref.rounds)
        )
    return rows


def _bench_simulator(seed: int, quick: bool) -> list[BenchRow]:
    configs = [(48, 8)] if quick else [(64, 16), (128, 16)]
    rows = []
    for n, length in configs:
        graph = random_regular(n, 6, derive_rng(seed, n))
        starts = np.repeat(np.arange(n), 2)
        for kernel, mode in (
            ("simulator", "full"),
            ("simulator_novalidate", "off"),
        ):
            wall, outcome = _timed(
                lambda: run_walk_protocol(
                    graph, starts, length, seed=seed + n, validate=mode
                ),
                repeats=1 if quick else 3,
            )
            rows.append(
                BenchRow(
                    kernel,
                    n,
                    seed,
                    wall,
                    outcome.forward_rounds + outcome.reverse_rounds,
                )
            )
    return rows


def _bench_native_build(seed: int, quick: bool) -> list[BenchRow]:
    configs = [(32, 6)] if quick else [(64, 6), (256, 6)]
    rows = []
    for n, degree in configs:
        graph = random_regular(n, degree, derive_rng(seed, n))
        tau = mixing_time(graph)

        def build():
            g0 = build_native_g0(
                graph,
                walks_per_vnode=12,
                degree=6,
                length=2 * tau,
                seed=seed + n,
            )
            level1 = build_native_level1(
                g0, beta=3, degree=4, length=8, seed=seed + n + 1
            )
            return g0, level1

        wall, (g0, level1) = _timed(build, repeats=1)
        rows.append(
            BenchRow(
                "native_build",
                n,
                seed,
                wall,
                g0.build_rounds + level1.build_rounds,
            )
        )
    return rows


def _bench_end_to_end(seed: int, quick: bool) -> list[BenchRow]:
    sizes = (48,) if quick else (64, 128)
    params = Params.default()
    rows = []
    for n in sizes:
        graph = random_regular(n, 6, derive_rng(seed, n))

        def route(seed=seed, n=n):
            rng = derive_rng(seed, n, 3)
            hierarchy = build_hierarchy(graph, params, rng)
            router = Router(hierarchy, params=params, rng=rng)
            return router.route(np.arange(n), rng.permutation(n))

        wall_route, route_result = _timed(route, repeats=1)
        rows.append(
            BenchRow(
                "end_to_end_route", n, seed, wall_route, route_result.cost_rounds
            )
        )

        def mst(seed=seed, n=n):
            rng = derive_rng(seed, n, 4)
            weighted = with_random_weights(graph, rng)
            hierarchy = build_hierarchy(weighted, params, rng)
            runner = MstRunner(
                weighted, hierarchy=hierarchy, params=params, rng=rng
            )
            return runner.run()

        wall_mst, mst_result = _timed(mst, repeats=1)
        rows.append(
            BenchRow("end_to_end_mst", n, seed, wall_mst, mst_result.rounds)
        )
    return rows


def _fault_plan(rate: float, seed: int, n: int) -> FaultPlan | None:
    spec = FaultSpec(drop=float(rate))
    if spec.is_null:
        return None
    return FaultPlan(spec, rng=derive_rng(seed, n, 7))


def delivery_curve(
    n: int,
    rates: Sequence[float],
    seed: int = 0,
    degree: int = 6,
) -> list[dict]:
    """Delivery vs. fault rate for the reliable forwarder.

    Runs the same all-nodes demand (each node sends one token to its
    first neighbour — forwarding is single-hop, along edges) under each
    per-link drop probability in ``rates`` and reports the measured
    retry overhead.  The topology and the fault draws both derive from
    ``seed`` alone, so a curve is reproducible bit-for-bit in
    everything but wall time.

    Returns one dict per rate with keys ``rate``, ``delivered``,
    ``expected``, ``rounds``, ``ideal_rounds``, ``retry_rounds``,
    ``retransmissions``, and ``overhead`` (``rounds / ideal_rounds``).
    """
    graph = random_regular(n, degree, derive_rng(seed, n))
    origins = np.arange(n)
    targets = graph.indices[graph.indptr[:-1]]
    curve = []
    for rate in rates:
        report = reliable_forward_demands(
            graph, origins, targets, faults=_fault_plan(rate, seed, n)
        )
        curve.append(
            {
                "rate": float(rate),
                "delivered": report.delivered,
                "expected": report.expected,
                "rounds": report.rounds,
                "ideal_rounds": report.ideal_rounds,
                "retry_rounds": report.retry_rounds,
                "retransmissions": report.retransmissions,
                "overhead": report.rounds / max(1, report.ideal_rounds),
            }
        )
    return curve


def run_fault_suite(seed: int = 0, quick: bool = False) -> list[BenchRow]:
    """The fault-injection suite behind ``benchmarks/results/faults.json``.

    Times the reliable forwarder on a random regular expander with the
    per-link drop rate off (``reliable_forward_clean``) and at the
    pinned 1% (``reliable_forward_drop1pct``) — the committed delta
    between the two rows *is* the recorded retry overhead.  ``rounds``
    is seed-deterministic either way.
    """
    configs = [(32,)] if quick else [(64,), (128,)]
    rows = []
    for (n,) in configs:
        graph = random_regular(n, 6, derive_rng(seed, n))
        # Single-hop demands: every node sends to its first neighbour.
        origins = np.arange(n)
        targets = graph.indices[graph.indptr[:-1]]
        for kernel, rate in (
            ("reliable_forward_clean", 0.0),
            ("reliable_forward_drop1pct", 0.01),
        ):
            wall, report = _timed(
                lambda rate=rate: reliable_forward_demands(
                    graph,
                    origins,
                    targets,
                    faults=_fault_plan(rate, seed, n),
                ),
                repeats=1 if quick else 3,
            )
            rows.append(BenchRow(kernel, n, seed, wall, report.rounds))
    return rows


def _crash_plan(text: str, seed: int, n: int, label: int) -> FaultPlan:
    return FaultPlan(
        FaultSpec.parse(text), rng=derive_rng(seed, n, label)
    )


def run_recovery_suite(seed: int = 0, quick: bool = False) -> list[BenchRow]:
    """The self-healing suite behind ``benchmarks/results/recovery.json``.

    One row per recovery mechanism, at each pinned size:

    * ``heartbeat_detect`` — the wire heartbeat protocol under a
      temporary crash window (what failure detection itself costs);
    * ``selfheal_forward_park`` — reliable forwarding waits out a
      temporary window by parking tokens instead of burning retries;
    * ``selfheal_forward_rehome`` — reliable forwarding re-homes
      demands whose targets are permanently dead;
    * ``selfheal_walk_avoid`` — the walk protocol confines walks to
      the live subgraph and orphans walks with dead origins;
    * ``selfheal_route_failover`` — an end-to-end route over dead
      portal hosts (failover to redundant portals plus re-election).

    ``rounds`` is seed-deterministic in every row: crash membership
    derives from split-off entropy and self-heal draws only from its
    own streams.
    """
    sizes = [32] if quick else [64, 128]
    crashes = 3 if quick else 6
    rows: list[BenchRow] = []
    for n in sizes:
        graph = random_regular(n, 6, derive_rng(seed, n))
        origins = np.arange(n)
        targets = graph.indices[graph.indptr[:-1]]
        temp = f"crash={crashes}@rounds:2-40"
        perm = f"crash={crashes}@rounds:1-1000000"

        wall, report = _timed(
            lambda: run_heartbeat_detector(
                graph,
                duration=16,
                faults=_crash_plan(temp, seed, n, 10),
            ),
            repeats=1 if quick else 3,
        )
        rows.append(
            BenchRow("heartbeat_detect", n, seed, wall, report.stats.rounds)
        )

        for kernel, spec in (
            ("selfheal_forward_park", temp),
            ("selfheal_forward_rehome", perm),
        ):
            wall, delivery = _timed(
                lambda spec=spec: reliable_forward_demands(
                    graph,
                    origins,
                    targets,
                    faults=_crash_plan(spec, seed, n, 11),
                    recovery="self-heal",
                ),
                repeats=1 if quick else 3,
            )
            rows.append(BenchRow(kernel, n, seed, wall, delivery.rounds))

        starts = np.repeat(np.arange(n), 2)
        wall, outcome = _timed(
            lambda: run_walk_protocol(
                graph,
                starts,
                8,
                seed=seed + n,
                faults=_crash_plan(perm, seed, n, 12),
                recovery="self-heal",
            ),
            repeats=1 if quick else 3,
        )
        rows.append(
            BenchRow(
                "selfheal_walk_avoid",
                n,
                seed,
                wall,
                outcome.forward_rounds + outcome.reverse_rounds,
            )
        )

    # End-to-end failover: full pipeline, one pinned size.
    from ..runtime import RunConfig, run as run_op

    n = 32 if quick else 64
    graph = random_regular(n, 6, derive_rng(seed, n))
    wall, outcome = _timed(
        lambda: run_op(
            "route",
            graph,
            config=RunConfig(
                seed=seed + n,
                faults=f"crash={crashes}@rounds:1-1000000",
                recovery="self-heal",
            ),
        ),
        repeats=1,
    )
    rows.append(
        BenchRow(
            "selfheal_route_failover",
            n,
            seed,
            wall,
            int(outcome.result.cost_rounds),
        )
    )
    return rows


def _bench_walk_protocol_vec(seed: int, quick: bool) -> list[BenchRow]:
    """Scalar-oracle vs array-engine walk protocol, verified equal.

    Like the scheduler kernel, both engines run the *same* workload and
    the rows are only reported after their outcomes compare bit-equal —
    the recorded speedup can never come from changed semantics.
    """
    configs = [(64, 8)] if quick else [(128, 12), (512, 16)]
    rows = []
    for n, length in configs:
        graph = random_regular(n, 6, derive_rng(seed, n))
        starts = np.repeat(np.arange(n), 2)
        wall_vec, vec = _timed(
            lambda: run_walk_protocol(
                graph, starts, length, seed=seed + n, engine="vectorized"
            ),
            repeats=1 if quick else 3,
        )
        wall_sca, sca = _timed(
            lambda: run_walk_protocol(
                graph, starts, length, seed=seed + n, engine="scalar"
            ),
            repeats=1,
        )
        if (
            not np.array_equal(vec.endpoints, sca.endpoints)
            or not np.array_equal(vec.returned_to, sca.returned_to)
            or (vec.forward_rounds, vec.reverse_rounds, vec.messages)
            != (sca.forward_rounds, sca.reverse_rounds, sca.messages)
        ):
            raise AssertionError(
                "walk-protocol engines diverged on the bench workload"
            )
        total = vec.forward_rounds + vec.reverse_rounds
        rows.append(BenchRow("walk_protocol_vec", n, seed, wall_vec, total))
        rows.append(BenchRow("walk_protocol_scalar", n, seed, wall_sca, total))
    return rows


def _bench_native_build_large(seed: int, quick: bool) -> list[BenchRow]:
    """The PR 7 headline: the native hierarchy at n = 512 and 1024."""
    configs = [(128, 6)] if quick else [(512, 6), (1024, 6)]
    rows = []
    for n, degree in configs:
        graph = random_regular(n, degree, derive_rng(seed, n))
        tau = mixing_time(graph)

        def build():
            g0 = build_native_g0(
                graph,
                walks_per_vnode=12,
                degree=6,
                length=2 * tau,
                seed=seed + n,
            )
            level1 = build_native_level1(
                g0, beta=3, degree=4, length=8, seed=seed + n + 1
            )
            return g0, level1

        wall, (g0, level1) = _timed(build, repeats=1)
        rows.append(
            BenchRow(
                "native_build",
                n,
                seed,
                wall,
                g0.build_rounds + level1.build_rounds,
            )
        )
    return rows


def _bench_sharded_delivery(seed: int, quick: bool) -> list[BenchRow]:
    """Worker sweep of the sharded simulator on one walk workload.

    Every row must report the same ``rounds`` — sharding moves delivery
    onto more processes without touching the round accounting; the sweep
    records what that costs/buys in wall time at each worker count.
    """
    n, length = (48, 6) if quick else (128, 10)
    graph = random_regular(n, 6, derive_rng(seed, n))
    starts = np.repeat(np.arange(n), 2)
    sweep = (1, 2) if quick else (1, 2, 4)
    rows = []
    baseline_rounds: int | None = None
    for workers in sweep:
        wall, outcome = _timed(
            lambda workers=workers: run_walk_protocol(
                graph,
                starts,
                length,
                seed=seed + n,
                engine="scalar",
                workers=workers,
            ),
            repeats=1 if quick else 2,
        )
        total = outcome.forward_rounds + outcome.reverse_rounds
        if baseline_rounds is None:
            baseline_rounds = total
        elif total != baseline_rounds:
            raise AssertionError(
                f"sharded delivery changed the round count: {total} != "
                f"{baseline_rounds} at workers={workers}"
            )
        rows.append(
            BenchRow(f"sharded_delivery_w{workers}", n, seed, wall, total)
        )
    return rows


def run_pr7_suite(seed: int = 0, quick: bool = False) -> list[BenchRow]:
    """The vectorized-engine suite behind ``benchmarks/results/engine.json``.

    Three groups: the scalar-vs-array walk protocol (verified equal
    before reporting), the native hierarchy build at n = 512/1024 (the
    sizes the array engine unlocked), and a sharded-delivery worker
    sweep (identical rounds at every worker count, by assertion).
    """
    rows: list[BenchRow] = []
    rows += _bench_walk_protocol_vec(seed, quick)
    rows += _bench_native_build_large(seed, quick)
    rows += _bench_sharded_delivery(seed, quick)
    return rows


def run_serve_suite(seed: int = 0, quick: bool = False) -> list[BenchRow]:
    """The session-layer suite behind ``benchmarks/results/serve.json``.

    The serve economics in four rows per size:

    * ``serve_cold_single_shot`` — one ``repro.run("route", ...)``: the
      full hierarchy build paid for a single routed instance;
    * ``serve_session_build`` — opening a :class:`~repro.runtime.Session`
      on a cold cache (one build, amortized by everything below);
    * ``serve_warm_request`` — per-request wall time of the *same* route
      served repeatedly from the warm session (total serve wall divided
      by the request count) — the headline: this must beat the cold
      single-shot by a wide margin, because it pays no build;
    * ``serve_cache_hit_open`` — re-opening the session from the
      content-addressed store (a process restart that skips the build).

    The warm-served result is asserted bit-equal (``cost_rounds``,
    delivered count) to the cold run before any row is reported — the
    recorded speedup cannot come from serving something different.
    """
    import tempfile

    from ..runtime import Request, RunConfig, Session
    from ..runtime import run as run_op

    n, requests = (64, 8) if quick else (512, 32)
    rows: list[BenchRow] = []
    graph = random_regular(n, 6, derive_rng(seed, n))
    workload_rng = derive_rng(seed, n, 5)
    sources = np.arange(n)
    destinations = workload_rng.permutation(n)

    wall_cold, outcome = _timed(
        lambda: run_op(
            "route",
            graph,
            config=RunConfig(seed=seed + n),
            sources=sources,
            destinations=destinations,
        ),
        repeats=1,
    )
    rows.append(
        BenchRow(
            "serve_cold_single_shot",
            n,
            seed,
            wall_cold,
            int(outcome.result.cost_rounds),
        )
    )

    with tempfile.TemporaryDirectory() as cache_root:
        config = RunConfig(seed=seed + n, cache=cache_root)
        wall_build, session = _timed(
            lambda: Session.open(graph, config), repeats=1
        )
        try:
            request = Request(
                op="route",
                args={"sources": sources, "destinations": destinations},
            )

            def serve():
                response = None
                for _ in range(requests):
                    response = session.submit(request)
                return response

            wall_serve, response = _timed(serve, repeats=1)
            if (
                float(response.result.cost_rounds)
                != float(outcome.result.cost_rounds)
                or response.result.delivered != outcome.result.delivered
            ):
                raise AssertionError(
                    "warm-served route diverged from the cold run on the "
                    "bench workload"
                )
            rows.append(
                BenchRow(
                    "serve_session_build",
                    n,
                    seed,
                    wall_build,
                    int(session.build_ledger.total()),
                )
            )
            rows.append(
                BenchRow(
                    "serve_warm_request",
                    n,
                    seed,
                    round(wall_serve / requests, 6),
                    int(response.result.cost_rounds),
                )
            )
        finally:
            session.close()

        wall_hit, reopened = _timed(
            lambda: Session.open(graph, config), repeats=1
        )
        try:
            if not reopened.from_cache:
                raise AssertionError(
                    "session re-open missed the content-addressed cache"
                )
            rows.append(
                BenchRow(
                    "serve_cache_hit_open",
                    n,
                    seed,
                    wall_hit,
                    int(reopened.build_ledger.total()),
                )
            )
        finally:
            reopened.close()
    return rows


def run_bench_suite(seed: int = 0, quick: bool = False) -> list[BenchRow]:
    """Run the pinned kernel suite.

    Args:
        seed: single seed every kernel derives its randomness from.
        quick: smoke mode for ``repro bench --check`` —
            one small size per kernel, single repetition, no thresholds.

    Returns one :class:`BenchRow` per kernel/size measurement.
    """
    rows: list[BenchRow] = []
    rows += _bench_walk_engine(seed, quick)
    rows += _bench_scheduler(seed, quick)
    rows += _bench_simulator(seed, quick)
    rows += _bench_native_build(seed, quick)
    rows += _bench_end_to_end(seed, quick)
    return rows


def validate_bench(payload: object) -> None:
    """Assert ``payload`` is a well-formed list of serialized bench rows.

    Raises ``ValueError`` describing the first violation.
    """
    if not isinstance(payload, list) or not payload:
        raise ValueError("bench payload must be a non-empty list of rows")
    for index, row in enumerate(payload):
        if not isinstance(row, dict) or tuple(row.keys()) != BENCH_KEYS:
            raise ValueError(
                f"row {index} must have exactly the keys {BENCH_KEYS}, "
                f"got {row!r}"
            )
        if not isinstance(row["kernel"], str) or not row["kernel"]:
            raise ValueError(f"row {index}: kernel must be a non-empty str")
        for key in ("n", "seed", "rounds"):
            if not isinstance(row[key], int) or isinstance(row[key], bool):
                raise ValueError(f"row {index}: {key} must be an int")
        if not isinstance(row["wall_s"], (int, float)) or row["wall_s"] < 0:
            raise ValueError(f"row {index}: wall_s must be a number >= 0")
        if row["n"] <= 0 or row["rounds"] < 0:
            raise ValueError(f"row {index}: n must be > 0 and rounds >= 0")


def write_bench(rows: Sequence[BenchRow], path: str) -> None:
    """Serialize bench rows to ``path`` as validated, diffable JSON."""
    payload = [asdict(row) for row in rows]
    validate_bench(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def load_bench(path: str) -> list[BenchRow]:
    """Read and validate a bench file written by :func:`write_bench`."""
    with open(path) as handle:
        payload = json.load(handle)
    validate_bench(payload)
    return [BenchRow(**row) for row in payload]
