"""Experiment runners and table formatting for the reproduction suite."""

from .experiments import (
    beta_ablation,
    correlated_ablation,
    crossover_analysis,
    clique_emulation_sweep,
    dense_regime_sweep,
    mixing_bound_survey,
    mixing_scaling,
    mst_scaling,
    native_fidelity,
    parallel_walk_sweep,
    partition_structure,
    portal_uniformity,
    preset_ablation,
    recursion_decomposition,
    routing_scaling,
    stretch_profile,
    virtual_tree_trace,
)
from .export import rows_to_csv, write_csv
from .fits import is_subpolynomial_consistent, power_law_exponent
from .tables import format_number, format_table
from .workloads import (
    all_to_one_demand,
    bipartite_demand,
    hotspot_demand,
    neighbor_demand,
    permutation_demand,
    random_demand,
)

__all__ = [
    "beta_ablation",
    "correlated_ablation",
    "crossover_analysis",
    "clique_emulation_sweep",
    "dense_regime_sweep",
    "mixing_bound_survey",
    "mixing_scaling",
    "mst_scaling",
    "native_fidelity",
    "parallel_walk_sweep",
    "partition_structure",
    "portal_uniformity",
    "preset_ablation",
    "recursion_decomposition",
    "routing_scaling",
    "stretch_profile",
    "virtual_tree_trace",
    "format_number",
    "format_table",
    "rows_to_csv",
    "is_subpolynomial_consistent",
    "power_law_exponent",
    "write_csv",
    "all_to_one_demand",
    "bipartite_demand",
    "hotspot_demand",
    "neighbor_demand",
    "permutation_demand",
    "random_demand",
]
