"""Routing-demand generators for experiments and stress tests.

Theorem 1.2's promise is per-node load, not demand shape — these
generators produce structurally different demands (balanced, skewed,
local, adversarial) that all satisfy or deliberately violate the promise,
for the router's phasing logic to handle.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph

__all__ = [
    "permutation_demand",
    "random_demand",
    "hotspot_demand",
    "neighbor_demand",
    "bipartite_demand",
    "all_to_one_demand",
]


def permutation_demand(
    graph: Graph, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One packet per node, destinations a uniform permutation."""
    n = graph.num_nodes
    return np.arange(n), rng.permutation(n)


def random_demand(
    graph: Graph, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` independent uniform (source, destination) pairs."""
    n = graph.num_nodes
    return (
        rng.integers(0, n, size=count),
        rng.integers(0, n, size=count),
    )


def hotspot_demand(
    graph: Graph,
    count: int,
    rng: np.random.Generator,
    hotspots: int = 4,
    skew: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """Skewed destinations: a ``skew`` fraction targets few hot nodes.

    Deliberately stresses the per-node load promise; the router responds
    by splitting into phases (footnote 3).
    """
    n = graph.num_nodes
    sources = rng.integers(0, n, size=count)
    hot_nodes = rng.choice(n, size=min(hotspots, n), replace=False)
    destinations = rng.integers(0, n, size=count)
    hot_mask = rng.random(count) < skew
    destinations[hot_mask] = hot_nodes[
        rng.integers(0, hot_nodes.shape[0], size=int(hot_mask.sum()))
    ]
    return sources, destinations


def neighbor_demand(
    graph: Graph, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Each node sends to a uniformly random neighbour (local traffic)."""
    n = graph.num_nodes
    sources = np.arange(n)
    offsets = (rng.random(n) * graph.degrees).astype(np.int64)
    offsets = np.minimum(offsets, np.maximum(graph.degrees - 1, 0))
    destinations = graph.indices[graph.indptr[:-1] + offsets]
    return sources, destinations


def bipartite_demand(
    graph: Graph, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Node halves exchange: each low-id node targets a high-id node."""
    n = graph.num_nodes
    half = n // 2
    low = np.arange(half)
    high = half + rng.permutation(n - half)[:half]
    sources = np.concatenate([low, high])
    destinations = np.concatenate([high, low])
    return sources, destinations


def all_to_one_demand(
    graph: Graph, target: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Every node sends to one target — the maximal destination skew."""
    n = graph.num_nodes
    return np.arange(n), np.full(n, target, dtype=np.int64)
