"""CSV export of experiment rows, for plotting outside this package."""

from __future__ import annotations

import csv
from typing import Mapping, Sequence

__all__ = ["rows_to_csv", "write_csv"]


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Render experiment rows as CSV text (header from the first row)."""
    if not rows:
        return ""
    import io

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in rows[0].keys()})
    return buffer.getvalue()


def write_csv(rows: Sequence[Mapping[str, object]], path: str) -> None:
    """Write experiment rows to ``path`` as CSV."""
    with open(path, "w", newline="") as handle:
        handle.write(rows_to_csv(rows))
