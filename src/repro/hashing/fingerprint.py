"""Content fingerprints for graphs (and the values keyed off them).

The hierarchy cache (:mod:`repro.runtime.store`) and the checkpoint
format (:mod:`repro.runtime.checkpoint`) both need to answer "is this
the same graph?" exactly.  "Same" here is stricter than isomorphism:
the pipeline's randomness is consumed in arc order, and edge ids index
weight arrays, so two graphs with the same edge *set* but a different
edge order produce different (equally valid) runs.  The fingerprint
therefore hashes the CSR arc layout itself — ``indptr``, ``indices``,
``arc_edge`` — which is a pure function of the constructor's edge list
and captures everything the algorithms can observe.

All array bytes are hashed in explicit little-endian ``int64`` /
``float64`` form, so the digest is stable across platforms and numpy
versions.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..graphs.graph import Graph, WeightedGraph

__all__ = ["FINGERPRINT_VERSION", "graph_fingerprint"]

#: Bumped whenever the byte layout below changes; part of every digest,
#: so stale fingerprints can never collide with current ones.
FINGERPRINT_VERSION = 1


def _array_bytes(array: np.ndarray, dtype: str) -> bytes:
    """Canonical little-endian bytes of ``array`` as ``dtype``."""
    return np.ascontiguousarray(array, dtype=np.dtype(dtype)).tobytes()


def graph_fingerprint(graph: Graph) -> str:
    """SHA-256 content digest of a graph's exact CSR representation.

    Two graphs share a fingerprint iff they have the same node count and
    the same edge list in the same order (and, for
    :class:`~repro.graphs.graph.WeightedGraph`, the same weights) —
    precisely the condition under which every seeded run on them is
    bit-identical.

    Returns a 64-character lowercase hex string.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-graph-v{FINGERPRINT_VERSION}".encode())
    digest.update(
        np.array(
            [graph.num_nodes, graph.num_edges], dtype="<i8"
        ).tobytes()
    )
    digest.update(_array_bytes(graph.indptr, "<i8"))
    digest.update(_array_bytes(graph.indices, "<i8"))
    digest.update(_array_bytes(graph.arc_edge, "<i8"))
    if isinstance(graph, WeightedGraph):
        digest.update(b"weights")
        digest.update(_array_bytes(graph.weights, "<f8"))
    return digest.hexdigest()
