"""k-wise independent hashing for the pseudo-random partition, plus
content fingerprints for graphs (cache keys, checkpoint integrity)."""

from .fingerprint import FINGERPRINT_VERSION, graph_fingerprint
from .kwise import PRIME, KWiseHash

__all__ = [
    "FINGERPRINT_VERSION",
    "PRIME",
    "KWiseHash",
    "graph_fingerprint",
]
