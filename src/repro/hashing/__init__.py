"""k-wise independent hashing for the pseudo-random partition."""

from .kwise import PRIME, KWiseHash

__all__ = ["PRIME", "KWiseHash"]
