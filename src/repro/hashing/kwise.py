"""``Theta(log n)``-wise independent hash functions over a prime field.

The hierarchical partition (Section 3.1.2, "Pseudo-Random Partitions")
assigns every node ID to a leaf of the ``beta``-ary partition tree with a
``W``-wise independent hash function for ``W = Theta(log n)``.  The
classic construction [Alon–Spencer]: a uniformly random polynomial of
degree ``W - 1`` over ``GF(p)``; the seed is its ``W`` coefficients,
``Theta(W log n) = Theta(log^2 n)`` shared random bits, which the paper
disseminates from a leader in ``O(D log n)`` rounds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KWiseHash", "PRIME"]

#: Mersenne prime 2^31 - 1; products of two residues fit in int64.
PRIME = (1 << 31) - 1


class KWiseHash:
    """A ``wise``-wise independent hash ``{0..p-1} -> {0..range-1}``.

    Evaluates a random degree-``wise - 1`` polynomial over ``GF(PRIME)``
    and reduces the value modulo ``range_size``.  The modular reduction
    introduces a bias of at most ``range_size / PRIME`` per point, which is
    negligible for the ranges used here (``range_size <= beta^k << 2^31``).

    Attributes:
        wise: the independence parameter ``W``.
        range_size: size of the output range.
        coefficients: the ``W`` seed coefficients (the shared random bits).
    """

    def __init__(self, wise: int, range_size: int, rng: np.random.Generator):
        if wise < 1:
            raise ValueError("independence must be at least 1")
        if not (1 <= range_size < PRIME):
            raise ValueError(f"range_size must be in [1, {PRIME})")
        self.wise = int(wise)
        self.range_size = int(range_size)
        coefficients = rng.integers(0, PRIME, size=self.wise, dtype=np.int64)
        # A zero leading coefficient only lowers the degree; keep it — the
        # family stays W-wise independent because all W coefficients are
        # uniform.
        self.coefficients = coefficients

    def seed_bits(self) -> int:
        """Number of shared random bits in the seed (``W * 31``)."""
        return self.wise * 31

    def __call__(self, keys) -> np.ndarray:
        """Hash an array of keys; returns values in ``[0, range_size)``."""
        keys = np.asarray(keys, dtype=np.int64) % PRIME
        acc = np.zeros_like(keys)
        for coefficient in self.coefficients:
            acc = (acc * keys + int(coefficient)) % PRIME
        return acc % self.range_size

    def hash_one(self, key: int) -> int:
        """Hash a single key."""
        return int(self(np.array([key], dtype=np.int64))[0])
