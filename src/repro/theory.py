"""Closed-form bounds and parameter choices from the paper.

Every function here is a direct transcription of a formula stated in the
paper (or a baseline it cites), used by the benchmark harness to print the
"paper claim" column next to measured values.
"""

from __future__ import annotations

import math


def subpolynomial_envelope(n: int, c: float = 1.0) -> float:
    """The paper's ``2^{c * sqrt(log n * log log n)}`` factor.

    This is the stretch/overhead envelope appearing in Theorems 1.1 and
    1.2.  ``log`` is base 2 here; the constant ``c`` absorbs the paper's
    big-O.
    """
    if n < 4:
        return 2.0**c
    log_n = math.log2(n)
    log_log_n = max(1.0, math.log2(log_n))
    return 2.0 ** (c * math.sqrt(log_n * log_log_n))


def optimal_beta(n: int, cap: int | None = 64) -> int:
    """The paper's branching factor ``beta = 2^{O(sqrt(log n log log n))}``.

    We take ``beta = 2^{ceil(sqrt(log2 n * log2 log2 n))}``, optionally
    capped (a large ``beta`` blows up the ``O(beta^2)`` portal-construction
    term at simulable sizes without improving anything measurable).
    """
    if n < 4:
        return 2
    log_n = math.log2(n)
    log_log_n = max(1.0, math.log2(log_n))
    beta = 2 ** math.ceil(math.sqrt(log_n * log_log_n))
    if cap is not None:
        beta = min(beta, cap)
    return max(2, int(beta))


def num_levels(num_overlay_nodes: int, beta: int, bottom_size: int) -> int:
    """Number of recursion levels until parts shrink to ``~bottom_size``.

    The paper's ``k = O(log_beta (m / log m))``: each level divides part
    sizes by ``beta``.  We take ``k = floor(log_beta(N / bottom))`` so
    leaf parts have size in ``[bottom, bottom * beta)`` — never *below*
    the bottom size, which would leave near-empty parts with no boundary
    edges between siblings.
    """
    if num_overlay_nodes <= bottom_size * beta:
        return 1
    ratio = num_overlay_nodes / bottom_size
    return max(1, int(math.floor(math.log(ratio) / math.log(beta))))


def cheeger_mixing_bound(max_degree: int, edge_expansion: float, n: int) -> float:
    """Lemma 2.3: ``tau_bar_mix <= 8 * Delta^2 / h(G)^2 * ln n``."""
    if edge_expansion <= 0:
        return math.inf
    return 8.0 * (max_degree / edge_expansion) ** 2 * math.log(max(2, n))


def conductance_mixing_bound(conductance: float, n: int) -> float:
    """Lazy-walk mixing bound ``8 ln n / phi(G)^2`` used in Lemma 2.3's proof."""
    if conductance <= 0:
        return math.inf
    return 8.0 * math.log(max(2, n)) / conductance**2


def parallel_walk_load_bound(k: float, degree: int, n: int, c: float = 1.0) -> float:
    """Lemma 2.4: per-step walk load at a node is ``O(k d(v) + log n)``."""
    return c * (k * degree + math.log2(max(2, n)))


def parallel_walk_rounds_bound(k: float, steps: int, n: int, c: float = 1.0) -> float:
    """Lemma 2.5: ``T`` walk steps schedule in ``O((k + log n) * T)`` rounds."""
    return c * (k + math.log2(max(2, n))) * steps


def routing_recursion_bound(
    m: int, beta: int, bottom_size: int, log_n: float, c: float = 1.0
) -> float:
    """Lemma 3.4's recursion ``T(m) = 2 T(m/beta) * O(log^2 n) + O(log n)``.

    Evaluated exactly (not just its asymptotic solution) so benchmarks can
    compare the measured per-level decomposition against it.
    """
    if m <= bottom_size:
        return c * log_n
    return (
        2.0 * routing_recursion_bound(m // beta, beta, bottom_size, log_n, c)
        * c * log_n**2
        + c * log_n
    )


def clique_emulation_bound(
    n: int, edge_expansion: float, max_degree: int, c: float = 1.0
) -> float:
    """Theorem 1.3's general clique-emulation upper bound.

    ``O(n/h * (1 + Delta/n * Delta/h * log n) * log n * log* n)``.
    """
    if edge_expansion <= 0:
        return math.inf
    log_n = math.log2(max(2, n))
    base = n / edge_expansion
    inner = 1.0 + (max_degree / n) * (max_degree / edge_expansion) * log_n
    return c * base * inner * log_n * log_star(n)


def clique_emulation_er_bound(n: int, p: float, c: float = 1.0) -> float:
    """Theorem 1.3 corollary for ``G(n,p)``: ``O(1/p + log n)`` rounds."""
    if p <= 0:
        return math.inf
    return c * (1.0 / p + math.log2(max(2, n)))


def balliu_emulation_bound(n: int, p: float, c: float = 1.0) -> float:
    """Balliu et al. clique emulation: ``O(min{1/p^2, n p})`` rounds."""
    if p <= 0:
        return math.inf
    return c * min(1.0 / p**2, n * p)


def das_sarma_lower_bound(n: int, diameter: int, c: float = 1.0) -> float:
    """Das Sarma et al. general-graph barrier ``Omega(D + sqrt(n / log n))``."""
    return c * (diameter + math.sqrt(n / math.log2(max(2, n))))


def gkp_upper_bound(n: int, diameter: int, c: float = 1.0) -> float:
    """Garay–Kutten–Peleg MST bound ``O(D + sqrt(n) log* n)``."""
    return c * (diameter + math.sqrt(n) * log_star(n))


def virtual_tree_depth_bound(n: int, c: float = 1.0) -> float:
    """Lemma 4.1: virtual tree depth stays ``O(log^2 n)``."""
    return c * math.log2(max(2, n)) ** 2


def virtual_tree_degree_bound(degree: int, n: int, c: float = 1.0) -> float:
    """Lemma 4.1: virtual in-degree of node ``v`` stays ``d(v) * O(log n)``."""
    return c * degree * math.log2(max(2, n))


def fitted_envelope_constant(n: int, normalized_cost: float) -> float:
    """Solve ``normalized_cost = 2^{c sqrt(log n loglog n)}`` for ``c``.

    Turns a measured ``rounds / tau_mix`` value into the paper's envelope
    constant, so measured constants can be extrapolated (see
    :func:`crossover_n`).
    """
    if normalized_cost <= 1 or n < 4:
        return 0.0
    log_n = math.log2(n)
    log_log_n = max(1.0, math.log2(log_n))
    return math.log2(normalized_cost) / math.sqrt(log_n * log_log_n)


def crossover_n(
    envelope_c: float,
    tau_mix_exponent: float = 0.0,
    general_c: float = 1.0,
    max_log_n: int = 400,
) -> float | None:
    """Estimated ``n`` where the paper's bound beats ``D + sqrt(n)``.

    Compares ``n^{tau_mix_exponent} * 2^{envelope_c sqrt(log n loglog n)}``
    (our cost, with ``tau_mix ~ n^{tau_mix_exponent}``; 0 for polylog-
    mixing expanders) against ``general_c * sqrt(n)`` (the
    ``tilde-Theta(D + sqrt n)`` algorithms on low-diameter graphs).

    Returns:
        The smallest power of two where ours wins, or ``None`` if no
        crossover occurs below ``2^max_log_n``.  With measured
        ``envelope_c`` around 14 (this simulator's constants), the
        crossover sits far beyond practical sizes — quantifying just how
        asymptotic the paper's advantage is.
    """
    for log_n in range(4, max_log_n + 1):
        log_log_n = max(1.0, math.log2(log_n))
        ours_log2 = (
            tau_mix_exponent * log_n
            + envelope_c * math.sqrt(log_n * log_log_n)
        )
        general_log2 = math.log2(general_c) + 0.5 * log_n
        if ours_log2 < general_log2:
            return 2.0**log_n
    return None


def log_star(n) -> int:
    """Iterated logarithm (base 2); handles arbitrarily large integers."""
    count = 0
    value = n
    # Reduce huge integers via bit_length (== ceil(log2) up to 1) to avoid
    # float overflow; the off-by-<1 error cannot change log*.
    while isinstance(value, int) and value > 2**53:
        value = value.bit_length() - 1  # floor(log2), exact on powers of 2
        count += 1
    value = float(value)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return max(1, count)
