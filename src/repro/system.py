"""High-level façade: one object per network, all applications on it.

``ExpanderNetwork`` wraps the whole pipeline for downstream users who
just want results: it builds (and caches) the routing structure for a
topology, then exposes routing, MST, clique emulation, and min cut with
one call each.  All randomness flows from one seed for reproducibility:
every operation draws from a *named stream* of the underlying
:class:`~repro.runtime.RunContext` (``"hierarchy"``, ``"router"``,
``"mst"``, ...), so operations never perturb each other's randomness.

Example:

    >>> import numpy as np
    >>> from repro.graphs import random_regular
    >>> from repro.system import ExpanderNetwork
    >>> net = ExpanderNetwork(random_regular(64, 6,
    ...                       np.random.default_rng(0)), seed=1)
    >>> net.route(np.arange(64), np.roll(np.arange(64), 7)).delivered
    True
"""

from __future__ import annotations

import numpy as np

from .core import (
    CliqueEmulationResult,
    Hierarchy,
    MinCutResult,
    MstResult,
    Router,
    RoutingResult,
)
from .congest.faults import FaultSpec
from .graphs.graph import Graph, WeightedGraph
from .graphs.generators import with_random_weights
from .params import Params
from .runtime import Backend, EventSink, RunConfig

__all__ = ["ExpanderNetwork"]


class ExpanderNetwork:
    """A network plus its (lazily built) hierarchical routing structure.

    Attributes:
        graph: the topology.
        config: the :class:`~repro.runtime.RunConfig` every operation
            runs under (built once from the constructor arguments).
        params: construction constants.
        seed: base seed; every operation derives its randomness from it.
        context: the underlying :class:`~repro.runtime.RunContext`
            (named RNG streams, run-wide ledger, trace sink).
        backend: the :class:`~repro.runtime.Backend` operations run on.
    """

    def __init__(
        self,
        graph: Graph,
        params: Params | None = None,
        seed: int = 0,
        beta: int | None = None,
        backend: str = "oracle",
        sink: EventSink | None = None,
        validate: str = "full",
        faults: "FaultSpec | str | None" = None,
        recovery: str = "fail-fast",
        checkpoint: str | None = None,
        config: RunConfig | None = None,
    ):
        """Args:
            graph: connected topology.
            params: construction constants (default
                :meth:`Params.default`).
            seed: base seed for all named streams.
            beta: partition branching-factor override.
            backend: ``"oracle"`` (vectorized engines, the default) or
                ``"native"`` (walk batches executed as real CONGEST
                message passing; MST/min-cut/clique unsupported).
            sink: optional trace-event sink (e.g.
                :class:`~repro.runtime.JsonlSink`).
            validate: simulator outbox-validation mode for the native
                backend (``"full"``, ``"first_round"``, or ``"off"``).
            faults: optional fault injection — a spec string
                (``"drop=0.01,crash=3@rounds:10-20"``) or a
                :class:`~repro.congest.faults.FaultSpec`; routing then
                pays measured retry rounds (charged under ``faults/``)
                or raises a diagnosable ``DeliveryTimeout``.
            recovery: ``"fail-fast"`` (default) or ``"self-heal"`` —
                see :class:`~repro.runtime.RunConfig`.
            checkpoint: optional path for a post-build state snapshot —
                see :class:`~repro.runtime.RunConfig`.
            config: a pre-built :class:`~repro.runtime.RunConfig`; when
                given it IS the configuration and the individual
                keyword arguments above are ignored.
        """
        if not graph.is_connected():
            raise ValueError("ExpanderNetwork requires a connected graph")
        if config is None:
            config = RunConfig(
                seed=seed,
                params=params,
                backend=backend,
                validate=validate,
                trace=sink,
                faults=faults,
                beta=beta,
                recovery=recovery,
                checkpoint=checkpoint,
            )
        self.graph = graph
        self.config = config
        self.context = config.make_context()
        self.params = self.context.params
        self.seed = self.context.seed
        self.backend: Backend = config.make_backend(graph, self.context)

    # -- cached structure ----------------------------------------------------

    @property
    def hierarchy(self) -> Hierarchy:
        """The routing structure (built on first use, then cached)."""
        return self.backend.hierarchy

    @property
    def router(self) -> Router:
        """The router over :attr:`hierarchy` (cached)."""
        return self.backend.router

    @property
    def tau_mix(self) -> int:
        """The mixing-time estimate the structure was built with."""
        return self.hierarchy.g0.tau_mix

    def construction_rounds(self) -> float:
        """Base-graph rounds spent building the structure."""
        return self.hierarchy.construction_rounds()

    # -- applications ----------------------------------------------------------

    def route(
        self, sources, destinations, trace: bool = False
    ) -> RoutingResult:
        """Permutation/point-to-point routing (Theorem 1.2)."""
        return self.backend.route(
            np.asarray(sources), np.asarray(destinations), trace=trace
        )

    def minimum_spanning_tree(
        self, weights=None, seed_offset: int = 2
    ) -> MstResult:
        """Distributed MST (Theorem 1.1).

        Args:
            weights: per-edge weights; defaults to the graph's own (if it
                is a :class:`WeightedGraph`) else i.i.d. uniform drawn
                from the ``"mst-weights-<seed_offset>"`` stream.
            seed_offset: distinct default-weight stream per call site
                (kept for backward compatibility with the old
                ``(seed, offset)`` tuples).
        """
        if weights is not None:
            weighted = WeightedGraph(
                self.graph.num_nodes, list(self.graph.edges()), weights
            )
        elif isinstance(self.graph, WeightedGraph):
            weighted = self.graph
        else:
            weighted = with_random_weights(
                self.graph,
                self.context.stream(f"mst-weights-{seed_offset}"),
            )
        return self.backend.mst(weighted)

    def emulate_clique(
        self, sample_fraction: float = 1.0
    ) -> CliqueEmulationResult:
        """All-to-all message exchange (Theorem 1.3)."""
        return self.backend.clique(sample_fraction=sample_fraction)

    def min_cut(
        self,
        eps: float = 0.5,
        num_trees: int | None = None,
        use_weights: bool = False,
    ) -> MinCutResult:
        """Approximate minimum cut (Section 4 corollary)."""
        return self.backend.min_cut(
            eps=eps, num_trees=num_trees, use_weights=use_weights
        )

    def describe(self) -> str:
        """One-paragraph summary of the built structure."""
        hierarchy = self.hierarchy
        lines = [
            f"ExpanderNetwork on {self.graph!r}",
            f"  tau_mix ~ {hierarchy.g0.tau_mix}, "
            f"beta = {hierarchy.beta}, levels = {hierarchy.depth}",
            f"  G0: {hierarchy.g0.overlay.num_nodes} virtual nodes, "
            f"one round costs {hierarchy.g0.round_cost:,.0f} G-rounds",
            f"  construction: {self.construction_rounds():,.0f} G-rounds",
        ]
        return "\n".join(lines)
