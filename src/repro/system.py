"""High-level façade: one object per network, all applications on it.

``ExpanderNetwork`` wraps the whole pipeline for downstream users who
just want results: it builds (and caches) the routing structure for a
topology, then exposes routing, MST, clique emulation, and min cut with
one call each.  All randomness flows from one seed for reproducibility.

Example:

    >>> import numpy as np
    >>> from repro.graphs import random_regular
    >>> from repro.system import ExpanderNetwork
    >>> net = ExpanderNetwork(random_regular(64, 6,
    ...                       np.random.default_rng(0)), seed=1)
    >>> net.route(np.arange(64), np.roll(np.arange(64), 7)).delivered
    True
"""

from __future__ import annotations

import numpy as np

from .core import (
    CliqueEmulationResult,
    Hierarchy,
    MinCutResult,
    MstResult,
    MstRunner,
    Router,
    RoutingResult,
    approximate_min_cut,
    build_hierarchy,
    emulate_clique,
)
from .graphs.graph import Graph, WeightedGraph
from .graphs.generators import with_random_weights
from .params import Params

__all__ = ["ExpanderNetwork"]


class ExpanderNetwork:
    """A network plus its (lazily built) hierarchical routing structure.

    Attributes:
        graph: the topology.
        params: construction constants.
        seed: base seed; every operation derives its randomness from it.
    """

    def __init__(
        self,
        graph: Graph,
        params: Params | None = None,
        seed: int = 0,
        beta: int | None = None,
    ):
        if not graph.is_connected():
            raise ValueError("ExpanderNetwork requires a connected graph")
        self.graph = graph
        self.params = params or Params.default()
        self.seed = int(seed)
        self._beta = beta
        self._hierarchy: Hierarchy | None = None
        self._router: Router | None = None

    # -- cached structure ----------------------------------------------------

    @property
    def hierarchy(self) -> Hierarchy:
        """The routing structure (built on first use, then cached)."""
        if self._hierarchy is None:
            self._hierarchy = build_hierarchy(
                self.graph,
                self.params,
                np.random.default_rng((self.seed, 0)),
                beta=self._beta,
            )
        return self._hierarchy

    @property
    def router(self) -> Router:
        """The router over :attr:`hierarchy` (cached)."""
        if self._router is None:
            self._router = Router(
                self.hierarchy,
                params=self.params,
                rng=np.random.default_rng((self.seed, 1)),
            )
        return self._router

    @property
    def tau_mix(self) -> int:
        """The mixing-time estimate the structure was built with."""
        return self.hierarchy.g0.tau_mix

    def construction_rounds(self) -> float:
        """Base-graph rounds spent building the structure."""
        return self.hierarchy.construction_rounds()

    # -- applications ----------------------------------------------------------

    def route(
        self, sources, destinations, trace: bool = False
    ) -> RoutingResult:
        """Permutation/point-to-point routing (Theorem 1.2)."""
        return self.router.route(
            np.asarray(sources), np.asarray(destinations), trace=trace
        )

    def minimum_spanning_tree(
        self, weights=None, seed_offset: int = 2
    ) -> MstResult:
        """Distributed MST (Theorem 1.1).

        Args:
            weights: per-edge weights; defaults to the graph's own (if it
                is a :class:`WeightedGraph`) else i.i.d. uniform.
            seed_offset: derive a distinct stream per call site.
        """
        rng = np.random.default_rng((self.seed, seed_offset))
        if weights is not None:
            weighted = WeightedGraph(
                self.graph.num_nodes, list(self.graph.edges()), weights
            )
        elif isinstance(self.graph, WeightedGraph):
            weighted = self.graph
        else:
            weighted = with_random_weights(self.graph, rng)
        runner = MstRunner(
            weighted,
            hierarchy=self.hierarchy,
            params=self.params,
            rng=rng,
        )
        return runner.run()

    def emulate_clique(
        self, sample_fraction: float = 1.0
    ) -> CliqueEmulationResult:
        """All-to-all message exchange (Theorem 1.3)."""
        return emulate_clique(
            self.hierarchy,
            self.params,
            np.random.default_rng((self.seed, 3)),
            router=self.router,
            sample_fraction=sample_fraction,
        )

    def min_cut(
        self,
        eps: float = 0.5,
        num_trees: int | None = None,
        use_weights: bool = False,
    ) -> MinCutResult:
        """Approximate minimum cut (Section 4 corollary)."""
        return approximate_min_cut(
            self.graph,
            eps=eps,
            params=self.params,
            rng=np.random.default_rng((self.seed, 4)),
            hierarchy=self.hierarchy,
            num_trees=num_trees,
            use_weights=use_weights,
        )

    def describe(self) -> str:
        """One-paragraph summary of the built structure."""
        hierarchy = self.hierarchy
        lines = [
            f"ExpanderNetwork on {self.graph!r}",
            f"  tau_mix ~ {hierarchy.g0.tau_mix}, "
            f"beta = {hierarchy.beta}, levels = {hierarchy.depth}",
            f"  G0: {hierarchy.g0.overlay.num_nodes} virtual nodes, "
            f"one round costs {hierarchy.g0.round_cost:,.0f} G-rounds",
            f"  construction: {self.construction_rounds():,.0f} G-rounds",
        ]
        return "\n".join(lines)
