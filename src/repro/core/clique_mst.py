"""MST via congested-clique emulation — composing Theorems 1.1 and 1.3.

The congested-clique model (Lotker et al.) computes MSTs extremely fast
because any node can talk to any node.  Theorem 1.3 lets a general graph
*emulate* clique rounds; this module composes the two: run Boruvka in the
emulated clique, paying the measured emulation cost per clique round.

Per Boruvka iteration (all in emulated clique rounds):

1. every node sends its fragment id to everyone (1 round) — after which
   every node knows the full fragment partition;
2. every node sends its best outgoing candidate to its fragment leader
   (1 round);
3. each leader announces the fragment's minimum to everyone (1 round).

``O(log n)`` iterations, so ``O(log n)`` clique rounds in total — the
emulation turns that into ``O(log n) * T_clique(G)`` rounds of ``G``.
This is the "clique emulation as a network axiom" usage the paper cites
from Avin et al. [5].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import WeightedGraph
from ..params import Params
from ..rng import resolve_rng
from .clique import emulate_clique
from .hierarchy import Hierarchy, build_hierarchy
from .ledger import RoundLedger
from .router import Router

__all__ = ["CliqueMstResult", "clique_boruvka_mst"]


@dataclass
class CliqueMstResult:
    """Output of the emulated-clique Boruvka.

    Attributes:
        edge_ids: MST edge ids (tie-break ``(weight, id)``; equals
            Kruskal's).
        total_weight: MST weight.
        iterations: Boruvka iterations used.
        clique_rounds: congested-clique rounds consumed.
        clique_round_cost: measured base-graph rounds per emulated clique
            round.
        rounds: total base-graph rounds
            (``clique_rounds * clique_round_cost``).
        ledger: accounting ledger.
    """

    edge_ids: list[int]
    total_weight: float
    iterations: int
    clique_rounds: int
    clique_round_cost: float
    rounds: float
    ledger: RoundLedger = field(default_factory=RoundLedger)


def clique_boruvka_mst(
    graph: WeightedGraph,
    params: Params | None = None,
    rng: np.random.Generator | None = None,
    hierarchy: Hierarchy | None = None,
    seed: int | None = None,
) -> CliqueMstResult:
    """Compute the MST of ``graph`` through emulated clique rounds.

    Args:
        graph: connected weighted graph.
        params: construction constants.
        rng: randomness source.
        hierarchy: optional prebuilt routing structure.

    Returns:
        A :class:`CliqueMstResult`; the MST is exact (classic Boruvka
        with ``(weight, id)`` tie-breaks, which needs no coin flips since
        the clique handles arbitrary merge shapes in O(1) rounds).
    """
    if not isinstance(graph, WeightedGraph):
        raise TypeError("clique_boruvka_mst needs a WeightedGraph")
    params = params or Params.default()
    rng = resolve_rng(rng, seed)
    hierarchy = hierarchy or build_hierarchy(graph, params, rng)
    router = Router(hierarchy, params=params, rng=rng)
    ledger = RoundLedger()
    # Measure what one emulated clique round costs on this graph.
    emulation = emulate_clique(
        hierarchy, params, rng, router=router
    )
    if not emulation.delivered:
        raise RuntimeError("clique emulation failed on this graph")
    clique_round_cost = emulation.rounds
    ledger.charge("clique-mst/calibration", clique_round_cost)

    n = graph.num_nodes
    component = np.arange(n, dtype=np.int64)
    edges = graph.edge_array
    weights = graph.weights
    edge_ids: list[int] = []
    clique_rounds = 0
    iterations = 0
    while True:
        comp_u = component[edges[:, 0]]
        comp_v = component[edges[:, 1]]
        outgoing = np.flatnonzero(comp_u != comp_v)
        if outgoing.size == 0:
            break
        iterations += 1
        # Rounds 1-3 of the emulated-clique protocol (see module doc).
        clique_rounds += 3
        best: dict[int, tuple[float, int]] = {}
        for eid in outgoing:
            key = (float(weights[eid]), int(eid))
            for comp in (int(comp_u[eid]), int(comp_v[eid])):
                if comp not in best or key < best[comp]:
                    best[comp] = key
        added = sorted({eid for __, eid in best.values()})
        for eid in added:
            u, v = int(edges[eid, 0]), int(edges[eid, 1])
            if component[u] == component[v]:
                continue
            edge_ids.append(eid)
            old, new = int(component[u]), int(component[v])
            component[component == old] = new
        if iterations > 4 * max(2, n).bit_length() + 8:
            raise RuntimeError("clique Boruvka did not converge")
    edge_ids = sorted(edge_ids)
    if len(edge_ids) != n - 1:
        raise RuntimeError("graph is disconnected; no spanning tree")
    rounds = clique_rounds * clique_round_cost
    ledger.charge(
        "clique-mst/iterations", rounds, clique_rounds=clique_rounds
    )
    return CliqueMstResult(
        edge_ids=edge_ids,
        total_weight=graph.total_weight(edge_ids),
        iterations=iterations,
        clique_rounds=clique_rounds,
        clique_round_cost=clique_round_cost,
        rounds=rounds,
        ledger=ledger,
    )
