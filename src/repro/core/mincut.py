"""Approximate minimum cut via greedy tree packing (Section 4 corollary).

The paper states that combining its MST machinery with the techniques of
Ghaffari–Kuhn [32], Nanongkai–Su [57] and Ghaffari–Haeupler [31] gives a
``(1 + eps)``-approximate min cut in almost mixing time, deferring
details.  We implement the standard tree-packing reduction those works
build on (Karger/Thorup):

1. greedily pack ``T = O(log n / eps^2)`` spanning trees, each a minimum
   spanning tree under edge weights equal to current packing loads —
   computed by this library's distributed MST;
2. the minimum cut 2-respects one of the packed trees w.h.p., so the
   minimum over all packed trees of all 1- and 2-respecting cuts is a
   ``(1 + eps)``-approximation (exact on every family we test).

Rounds charged: ``T`` distributed-MST executions plus the cut-evaluation
upcasts (same order as one MST iteration per tree).  This is a
*simplified variant* of the deferred algorithm — see DESIGN.md §4.6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph, WeightedGraph
from ..params import Params
from ..rng import resolve_rng
from .hierarchy import Hierarchy, build_hierarchy
from .ledger import RoundLedger
from .mst import MstRunner

__all__ = ["MinCutResult", "approximate_min_cut", "tree_respecting_min_cut"]


@dataclass
class MinCutResult:
    """Output of the approximate min-cut computation.

    Attributes:
        cut_value: the best (smallest) cut found.
        cut_side: boolean membership mask of one side of that cut.
        num_trees: packed trees inspected.
        rounds: total base-graph rounds charged.
        ledger: accounting ledger.
    """

    cut_value: int
    cut_side: np.ndarray
    num_trees: int
    rounds: float = 0.0
    ledger: RoundLedger = field(default_factory=RoundLedger)


def approximate_min_cut(
    graph: Graph,
    eps: float = 0.5,
    params: Params | None = None,
    rng: np.random.Generator | None = None,
    hierarchy: Hierarchy | None = None,
    num_trees: int | None = None,
    two_respecting: bool = True,
    use_weights: bool = False,
    seed: int | None = None,
    context=None,
) -> MinCutResult:
    """Approximate the minimum cut of ``graph``.

    Args:
        graph: connected base graph.
        eps: approximation slack; drives the default tree count
            ``ceil(3 ln n / eps^2)``.
        params: construction constants.
        rng: randomness source.
        hierarchy: optional prebuilt routing structure (topology-only, so
            it is reused across all packed trees).
        num_trees: tree-count override (tests use small values).
        two_respecting: also evaluate 2-respecting cuts (``O(n^2)`` pairs
            per tree; exact but intended for ``n <= ~256``).
        use_weights: treat a :class:`WeightedGraph`'s weights as edge
            capacities (minimum *weighted* cut).  The packing then greedily
            minimizes load/capacity, the fractional-packing rule of
            Thorup's weighted tree packing.
        context: optional :class:`repro.runtime.RunContext`; supplies
            defaults (params, the ``"mincut"`` stream) and receives the
            per-tree round charges as trace events.

    Returns:
        A :class:`MinCutResult` (``cut_value`` is a float when weighted).
    """
    if context is not None:
        params = params or context.params
        if rng is None and seed is None:
            rng = context.stream("mincut")
    params = params or Params.default()
    rng = resolve_rng(rng, seed)
    n = graph.num_nodes
    capacities = None
    if use_weights:
        if not isinstance(graph, WeightedGraph):
            raise TypeError("use_weights requires a WeightedGraph")
        capacities = graph.weights
    if num_trees is None:
        num_trees = max(2, int(math.ceil(3.0 * math.log(max(2, n)) / eps**2)))
    if hierarchy is None:
        if context is not None:
            hierarchy = build_hierarchy(graph, context=context)
        else:
            hierarchy = build_hierarchy(graph, params, rng)
    ledger = RoundLedger()
    loads = np.zeros(graph.num_edges, dtype=np.float64)
    edge_list = list(graph.edges())
    best_value = None
    best_side = np.zeros(n, dtype=bool)
    rounds = 0.0
    for tree_index in range(num_trees):
        if capacities is None:
            packing_weights = loads
        else:
            packing_weights = loads / np.maximum(capacities, 1e-12)
        weighted = WeightedGraph(n, edge_list, packing_weights)
        runner = MstRunner(weighted, hierarchy=hierarchy, params=params, rng=rng)
        mst = runner.run()
        rounds += mst.rounds
        ledger.charge(
            f"mincut/tree-{tree_index}", mst.rounds, edges=len(mst.edge_ids)
        )
        if context is not None:
            context.charge(
                f"mincut/tree-{tree_index}", mst.rounds,
                edges=len(mst.edge_ids),
            )
        loads[mst.edge_ids] += 1.0
        value, side = tree_respecting_min_cut(
            graph, mst.edge_ids, two_respecting=two_respecting,
            capacities=capacities,
        )
        if best_value is None or value < best_value:
            best_value = value
            best_side = side
    return MinCutResult(
        cut_value=best_value if capacities is not None else int(best_value),
        cut_side=best_side,
        num_trees=num_trees,
        rounds=rounds,
        ledger=ledger,
    )


def tree_respecting_min_cut(
    graph: Graph,
    tree_edge_ids: list[int],
    two_respecting: bool = True,
    capacities: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Best cut sharing at most 2 edges with the given spanning tree.

    Evaluates every 1-respecting cut (one subtree vs. the rest) and,
    optionally, every 2-respecting cut (symmetric difference / union of
    two subtrees).

    Args:
        graph: the graph whose cuts are evaluated.
        tree_edge_ids: a spanning tree of ``graph``.
        two_respecting: also scan subtree pairs.
        capacities: per-edge capacities (default: all ones — cardinality
            cuts).

    Returns:
        ``(cut value, membership mask of one side)``; the value is an
        ``int``-valued float for unit capacities.
    """
    n = graph.num_nodes
    edges = graph.edge_array
    if capacities is None:
        capacities = np.ones(graph.num_edges)
    subtree = _subtree_masks(n, [tuple(edges[e]) for e in tree_edge_ids])
    heads = edges[:, 0]
    tails = edges[:, 1]

    def cut_value(side: np.ndarray) -> float:
        return float(np.sum(capacities[side[heads] != side[tails]]))

    # 1-respecting cuts: each non-root subtree vs. the rest.
    best_value = None
    best_side = None
    candidates = [v for v in range(n) if 0 < subtree[v].sum() < n]
    for v in candidates:
        side = subtree[v]
        value = cut_value(side)
        if best_value is None or value < best_value:
            best_value, best_side = value, side
    if two_respecting:
        for i, u in enumerate(candidates):
            mask_u = subtree[u]
            for v in candidates[i + 1:]:
                mask_v = subtree[v]
                if mask_u[v] or mask_v[u]:
                    side = mask_u ^ mask_v  # nested: the annulus
                else:
                    side = mask_u | mask_v  # disjoint: the union
                size = side.sum()
                if not 0 < size < n:
                    continue
                value = cut_value(side)
                if value < best_value:
                    best_value, best_side = value, side
    if best_value is None:
        raise ValueError("graph too small for a nontrivial cut")
    return best_value, best_side.copy()


def _subtree_masks(
    n: int, tree_edges: list[tuple[int, int]]
) -> np.ndarray:
    """Boolean subtree membership per node, for the tree rooted at 0."""
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for u, v in tree_edges:
        adjacency[int(u)].append(int(v))
        adjacency[int(v)].append(int(u))
    parent = np.full(n, -1, dtype=np.int64)
    order = [0]
    parent[0] = 0
    for node in order:
        for neighbor in adjacency[node]:
            if parent[neighbor] < 0:
                parent[neighbor] = node
                order.append(neighbor)
    masks = np.zeros((n, n), dtype=bool)
    for node in reversed(order):
        masks[node, node] = True
        if node != 0:
            masks[parent[node]] |= masks[node]
    return masks
