"""Virtual nodes and the level-zero random overlay ``G0`` (Section 3.1.1).

Every real node ``v`` simulates ``d(v)`` *virtual nodes*, one per incident
edge endpoint (arc), for ``2m`` virtual nodes in total.  ``G0`` is an
approximate Erdős–Rényi random graph on the virtual nodes, built by
running ``Theta(log n)`` lazy random walks of length ``~tau_mix`` from
every virtual node and keeping (half of) the endpoints as out-neighbours.

The walk endpoint of a mixed lazy walk is degree-proportional over real
nodes; assigning it to a uniformly random virtual node of the endpoint
makes it uniform over virtual nodes — exactly the trick the paper uses to
run ``O(log n)`` walks per virtual node with only logarithmic slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..params import Params
from ..walks.correlated import run_correlated_walks
from ..walks.engine import run_lazy_walks
from ..walks.mixing import estimate_mixing_time
from .ledger import RoundLedger
from .sampling import group_select

__all__ = ["VirtualNodes", "G0Embedding", "build_g0"]


@dataclass(frozen=True)
class VirtualNodes:
    """The virtual-node layer: one virtual node per arc of ``G``.

    Virtual node ``x`` lives at real node ``host[x]``; its *local index*
    is ``x - indptr[host[x]]`` in ``0..d(host)-1``.  The *canonical*
    virtual node of real node ``v`` (local index 0) is the addressing
    target for packets destined to ``v`` — its UID is computable from
    ``v`` alone, so any source can hash it (property P2 of the partition).

    Attributes:
        graph: the base graph.
        host: real node of each virtual node, shape ``(2m,)``.
    """

    graph: Graph
    host: np.ndarray

    @property
    def count(self) -> int:
        """Number of virtual nodes, ``2m``."""
        return int(self.host.shape[0])

    def canonical(self, real_node) -> np.ndarray:
        """Canonical (local index 0) virtual node of each real node given."""
        return self.graph.indptr[np.asarray(real_node, dtype=np.int64)]

    def uid(self, vnode) -> np.ndarray:
        """Globally computable UID of a virtual node: ``host * n + local``.

        Any node that knows a real node's ID can compute the UID of its
        canonical virtual node (``local = 0``), which is all the routing
        layer needs.
        """
        vnode = np.asarray(vnode, dtype=np.int64)
        host = self.host[vnode]
        local = vnode - self.graph.indptr[host]
        return host * self.graph.num_nodes + local

    def canonical_uid(self, real_node) -> np.ndarray:
        """UID of the canonical virtual node of a real node: ``v * n``."""
        return np.asarray(real_node, dtype=np.int64) * self.graph.num_nodes

    def random_vnode_of(
        self, real_nodes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """A uniformly random virtual node of each given real node."""
        real_nodes = np.asarray(real_nodes, dtype=np.int64)
        degrees = self.graph.degrees[real_nodes]
        offsets = (rng.random(real_nodes.shape[0]) * degrees).astype(np.int64)
        return self.graph.indptr[real_nodes] + offsets


@dataclass
class G0Embedding:
    """The constructed level-zero overlay.

    Attributes:
        virtual: the virtual-node layer.
        overlay: ``G0`` as a :class:`Graph` over virtual-node ids.
        walk_length: length of the construction walks (``~2 tau_mix``).
        tau_mix: the mixing-time estimate used.
        round_cost: measured base-graph rounds to emulate ONE round of
            ``G0`` (forward + reverse replay of one walk per overlay edge
            endpoint, scheduled per Lemma 2.5).
        build_rounds: base-graph rounds spent on the construction.
    """

    virtual: VirtualNodes
    overlay: Graph
    walk_length: int
    tau_mix: int
    round_cost: float
    build_rounds: float

    @property
    def base_graph(self) -> Graph:
        """The underlying network graph ``G``."""
        return self.virtual.graph


def build_g0(
    graph: Graph,
    params: Params,
    rng: np.random.Generator,
    ledger: RoundLedger | None = None,
    tau_mix: int | None = None,
    walk_runner=None,
) -> G0Embedding:
    """Build the ``G0`` overlay per Section 3.1.1.

    Args:
        graph: connected base graph ``G``.
        params: construction constants.
        rng: randomness source.
        ledger: optional ledger to charge the build cost to.
        tau_mix: externally supplied mixing time (else estimated).
        walk_runner: optional override for how the construction walk
            batches *execute* — same signature as
            :func:`repro.walks.run_lazy_walks`.  Backends inject this to
            run the identical random process through a different engine
            (e.g. real message passing); it must consume ``rng`` exactly
            like the default runner so the built structure is
            backend-independent.

    Returns:
        The :class:`G0Embedding`.

    Raises:
        ValueError: if the graph is disconnected or trivially small.
    """
    if graph.num_nodes < 2 or graph.num_edges < 1:
        raise ValueError("G0 needs a graph with at least one edge")
    if not graph.is_connected():
        raise ValueError("G0 construction requires a connected graph")
    n = graph.num_nodes
    virtual = VirtualNodes(graph=graph, host=graph.arc_tails)
    if tau_mix is None:
        tau_mix = estimate_mixing_time(graph)
    walk_length = max(1, int(round(params.mixing_slack * tau_mix)))

    walks_per_vnode = params.g0_walks_per_vnode(n)
    degree = min(params.g0_degree(n), walks_per_vnode)
    starts = np.repeat(virtual.host, walks_per_vnode)
    owners = np.repeat(np.arange(virtual.count), walks_per_vnode)
    runner = walk_runner or (
        run_correlated_walks if params.use_correlated_walks
        else run_lazy_walks
    )
    run = runner(graph, starts, walk_length, rng)
    # Walk endpoints land degree-proportionally on real nodes; a uniform
    # virtual node of the endpoint is then uniform over all virtual nodes.
    targets = virtual.random_vnode_of(run.positions, rng)

    edges = group_select(owners, targets, virtual.count, degree, rng)
    overlay = Graph(virtual.count, edges)

    # Forward + reverse traversal to tell both endpoints about the edge.
    build_rounds = 2.0 * run.schedule_rounds()
    # Emulating one G0 round replays one walk per out-edge, forward and
    # back; measure that schedule on a fresh batch of `degree` walks per
    # virtual node.
    replay = runner(
        graph, np.repeat(virtual.host, degree), walk_length, rng
    )
    round_cost = 2.0 * replay.schedule_rounds()
    if ledger is not None:
        ledger.charge(
            "g0/build",
            build_rounds,
            walks=int(starts.shape[0]),
            walk_length=walk_length,
        )
    return G0Embedding(
        virtual=virtual,
        overlay=overlay,
        walk_length=walk_length,
        tau_mix=int(tau_mix),
        round_cost=round_cost,
        build_rounds=build_rounds,
    )
