"""Portal discovery (Section 3.1.2, "Adding Portals"; Lemma 3.3).

A packet residing in part ``A_i`` but destined for a sibling part ``A_j``
is first routed to a *portal*: a node of ``A_i`` with a ``G_{i-1}``-overlay
edge into ``A_j``.  Every node of ``A_i`` holds, for each sibling ``j``, a
uniformly random such portal (independent across nodes).

Two implementations:

* **walk-based** (faithful): each node runs ``Theta(beta)`` regular walks
  on its part's overlay per target sibling; walks ending on a boundary
  node are successful, and a random successful endpoint becomes the
  portal.  Cost is measured from the walk schedules.
* **sampled** (fast path): a mixed walk on the part's expander ends at a
  uniform part node, so conditioning on success gives a uniform boundary
  node — which we sample directly, charging Lemma 3.3's analytic
  ``O(beta^2 log n)`` rounds per level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..params import Params
from ..walks.engine import run_regular_walks
from .hierarchy import Hierarchy
from .ledger import RoundLedger

__all__ = ["PortalTable", "build_portals"]


@dataclass
class PortalTable:
    """Portals for every level of a hierarchy.

    Attributes:
        hierarchy: the routing structure the portals belong to.
        tables: per level ``i`` (1-based, ``tables[i-1]``), an int array of
            shape ``(num_vnodes, beta)``: ``tables[i-1][x, j]`` is the
            portal of virtual node ``x`` towards the ``j``-th sibling of
            its level-``i`` part (-1 for the own part or if no boundary
            edge exists).
        boundary_counts: per level, dict ``(part, sibling_index) -> count``
            of boundary nodes — used by tests/benchmarks to check the
            ``Theta(m log n / beta^2)`` density claim of Lemma 3.4.
        redundant: optional per-level arrays of shape
            ``(num_vnodes, beta, k)`` holding ``k`` independent uniform
            portals per (node, sibling); slot 0 is the primary (equal to
            ``tables``), slots 1.. are failover candidates sampled from
            a *separate* stream so building them never perturbs the
            primary draw sequence.  ``None`` unless built with
            ``redundancy_rng`` (self-heal mode).
        boundary_sets: per level, the full boundary-node arrays keyed by
            ``(part, sibling_index)`` — the electorate used when all
            ``k`` redundant portals are dead and a new portal must be
            re-elected from the part's overlay.
    """

    hierarchy: Hierarchy
    tables: list[np.ndarray]
    boundary_counts: list[dict[tuple[int, int], int]]
    redundant: list[np.ndarray] | None = None
    boundary_sets: list[dict[tuple[int, int], np.ndarray]] | None = None

    @property
    def redundancy(self) -> int:
        """Portals held per (node, sibling): ``k``, or 1 when only the
        primary table was built."""
        if not self.redundant:
            return 1
        return int(self.redundant[0].shape[2])

    def portal(self, level: int, vnode: int, sibling_index: int) -> int:
        """Portal of ``vnode`` towards sibling ``sibling_index`` at ``level``."""
        return int(self.tables[level - 1][vnode, sibling_index])

    def portals_for(
        self, level: int, vnodes: np.ndarray, sibling_indices: np.ndarray
    ) -> np.ndarray:
        """Vectorized portal lookup."""
        return self.tables[level - 1][vnodes, sibling_indices]

    def redundant_portals_for(
        self, level: int, vnodes: np.ndarray, sibling_indices: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``(len(vnodes), k)`` lookup of all k candidates."""
        if self.redundant is None:
            return self.portals_for(level, vnodes, sibling_indices)[
                :, np.newaxis
            ]
        return self.redundant[level - 1][vnodes, sibling_indices, :]

    def reelect(
        self,
        level: int,
        part: int,
        sibling_index: int,
        is_dead,
        rng: np.random.Generator,
    ) -> int:
        """Elect a live boundary node for ``(part, sibling_index)``.

        ``is_dead`` maps a virtual node to liveness (callable); returns
        -1 when the whole electorate is dead or unknown.
        """
        if self.boundary_sets is None:
            return -1
        candidates = self.boundary_sets[level - 1].get(
            (part, sibling_index)
        )
        if candidates is None or candidates.shape[0] == 0:
            return -1
        live = np.asarray(
            [c for c in candidates.tolist() if not is_dead(c)],
            dtype=np.int64,
        )
        if live.shape[0] == 0:
            return -1
        return int(live[int(rng.integers(0, live.shape[0]))])


def build_portals(
    hierarchy: Hierarchy,
    params: Params,
    rng: np.random.Generator,
    ledger: RoundLedger | None = None,
    redundancy_rng: np.random.Generator | None = None,
    redundancy: int | None = None,
) -> PortalTable:
    """Build portal tables for all levels of ``hierarchy``.

    Args:
        hierarchy: a constructed :class:`Hierarchy`.
        params: construction constants.
        rng: randomness source.
        ledger: ledger to charge costs to (default: the hierarchy's own).
        redundancy_rng: separate randomness source for the extra
            ``k - 1`` failover portals per (node, sibling); when given,
            :attr:`PortalTable.redundant` is populated and the extra
            discovery rounds are charged to ``recovery/portal-redundancy``.
            Kept out of ``rng`` so turning redundancy on cannot shift
            the primary portal draws (or anything sampled after them).
        redundancy: override for ``k`` (default
            ``params.portal_redundancy(num_vnodes)``).

    Returns:
        The :class:`PortalTable`.
    """
    ledger = ledger if ledger is not None else hierarchy.ledger
    tables: list[np.ndarray] = []
    boundary_counts: list[dict[tuple[int, int], int]] = []
    boundary_sets: list[dict[tuple[int, int], np.ndarray]] = []
    redundant: list[np.ndarray] = []
    beta = hierarchy.beta
    num_vnodes = hierarchy.g0.virtual.count
    if redundancy_rng is not None and redundancy is None:
        redundancy = params.portal_redundancy(num_vnodes)
    for level in range(1, hierarchy.depth + 1):
        parts = hierarchy.parts_at(level)
        boundary = _boundary_nodes(
            hierarchy.overlay_at(level - 1), parts, beta
        )
        boundary_counts.append(
            {key: value.shape[0] for key, value in boundary.items()}
        )
        boundary_sets.append(boundary)
        if params.use_walk_portals:
            table, cost_level = _walk_portals(
                hierarchy.overlay_at(level), parts, boundary, beta,
                params, rng,
            )
        else:
            table = _sampled_portals(parts, boundary, beta, num_vnodes, rng)
            # Lemma 3.3: Theta(beta) rounds of the level overlay per
            # target part; beta targets; log n walk steps each.
            log_n = math.log2(max(2, num_vnodes))
            cost_level = float(beta * beta * log_n)
        ledger.charge(
            f"portals/level-{level}",
            cost_level * hierarchy.emulation_to_g(level),
            beta=beta,
        )
        tables.append(table)
        if redundancy_rng is not None:
            extra = np.full(
                (num_vnodes, beta, redundancy), -1, dtype=np.int64
            )
            extra[:, :, 0] = table
            for slot in range(1, redundancy):
                extra[:, :, slot] = _sampled_portals(
                    parts, boundary, beta, num_vnodes, redundancy_rng
                )
            redundant.append(extra)
            # Each extra portal repeats the Lemma 3.3 discovery.
            ledger.charge(
                f"recovery/portal-redundancy-level-{level}",
                (redundancy - 1)
                * cost_level
                * hierarchy.emulation_to_g(level),
                redundancy=redundancy,
            )
    return PortalTable(
        hierarchy=hierarchy,
        tables=tables,
        boundary_counts=boundary_counts,
        redundant=redundant if redundancy_rng is not None else None,
        boundary_sets=boundary_sets,
    )


def _boundary_nodes(
    previous_overlay: Graph, parts: np.ndarray, beta: int
) -> dict[tuple[int, int], np.ndarray]:
    """Nodes of each part with a prev-overlay edge into each sibling.

    Returns a dict ``(part, sibling_index) -> array of boundary nodes``
    where ``sibling_index`` is the target part's index within its parent
    (``target_part % beta``).
    """
    edges = previous_overlay.edge_array
    if edges.size == 0:
        return {}
    result: dict[tuple[int, int], set] = {}
    tail_parts = parts[edges[:, 0]]
    head_parts = parts[edges[:, 1]]
    crossing = (tail_parts != head_parts) & (
        tail_parts // beta == head_parts // beta
    )
    for u, v, a, b in zip(
        edges[crossing, 0], edges[crossing, 1],
        tail_parts[crossing], head_parts[crossing],
    ):
        result.setdefault((int(a), int(b % beta)), set()).add(int(u))
        result.setdefault((int(b), int(a % beta)), set()).add(int(v))
    return {
        key: np.fromiter(nodes, dtype=np.int64, count=len(nodes))
        for key, nodes in result.items()
    }


def _sampled_portals(
    parts: np.ndarray,
    boundary: dict[tuple[int, int], np.ndarray],
    beta: int,
    num_vnodes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform boundary-node portals, sampled directly (fast path)."""
    table = np.full((num_vnodes, beta), -1, dtype=np.int64)
    order = np.argsort(parts, kind="stable")
    sorted_parts = parts[order]
    cuts = np.flatnonzero(np.diff(np.concatenate(([-1], sorted_parts, [-1]))))
    for start, end in zip(cuts[:-1], cuts[1:]):
        members = order[start:end]
        part = int(sorted_parts[start])
        own_index = part % beta
        for sibling in range(beta):
            if sibling == own_index:
                continue
            candidates = boundary.get((part, sibling))
            if candidates is None or candidates.shape[0] == 0:
                continue
            table[members, sibling] = candidates[
                rng.integers(0, candidates.shape[0], size=members.shape[0])
            ]
    return table


def _walk_portals(
    level_overlay: Graph,
    parts: np.ndarray,
    boundary: dict[tuple[int, int], np.ndarray],
    beta: int,
    params: Params,
    rng: np.random.Generator,
) -> tuple[np.ndarray, float]:
    """Walk-based portal discovery (Lemma 3.3), with measured cost.

    For each target sibling index ``j``, every node runs
    ``portal_walks_factor * beta`` regular walks on the level overlay
    (walks stay inside the node's part); a walk is successful if it ends
    on a node with a boundary edge towards the ``j``-th sibling of the
    walker's part.  The portal is a uniformly random successful endpoint.
    """
    num_vnodes = parts.shape[0]
    table = np.full((num_vnodes, beta), -1, dtype=np.int64)
    walks_per_node = max(2, int(round(params.portal_walks_factor * beta)))
    length = params.level_walk_length(max(2, num_vnodes))
    total_cost = 0.0
    is_boundary = np.zeros((num_vnodes,), dtype=bool)
    for sibling in range(beta):
        # Mark nodes that have a boundary edge towards sibling `sibling`
        # of their own part.
        is_boundary[:] = False
        for (part, sib), nodes in boundary.items():
            if sib == sibling:
                is_boundary[nodes] = True
        starts = np.repeat(np.arange(num_vnodes), walks_per_node)
        run = run_regular_walks(level_overlay, starts, length, rng)
        total_cost += 2.0 * run.schedule_rounds()
        ends = run.positions
        successful = is_boundary[ends] & (parts[ends] == parts[starts]) & (
            parts[starts] % beta != sibling
        )
        # Pick one random successful endpoint per walker: shuffle walk
        # order, then let the last successful write win.
        success_idx = np.flatnonzero(successful)
        rng.shuffle(success_idx)
        table[starts[success_idx], sibling] = ends[success_idx]
    return table, total_cost
