"""Structural validation of a built routing structure.

``validate_hierarchy`` checks every invariant the router relies on —
part nesting, overlay containment, bottom-clique completeness, per-part
connectivity, portal validity — and returns a report instead of failing
fast, so operators can diagnose a structure built with too-aggressive
constants before routing on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hierarchy import Hierarchy
from .portals import PortalTable

__all__ = ["ValidationReport", "validate_hierarchy", "validate_portals"]


@dataclass
class ValidationReport:
    """Outcome of a validation pass.

    Attributes:
        ok: no problems found.
        problems: human-readable descriptions of every violation.
        checks_run: how many invariant checks executed.
    """

    ok: bool = True
    problems: list[str] = field(default_factory=list)
    checks_run: int = 0

    def _fail(self, message: str) -> None:
        self.ok = False
        self.problems.append(message)

    def _check(self, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            self._fail(message)


def validate_hierarchy(hierarchy: Hierarchy) -> ValidationReport:
    """Check every structural invariant of a built hierarchy."""
    report = ValidationReport()
    virtual = hierarchy.g0.virtual
    count = virtual.count

    report._check(
        hierarchy.g0.overlay.num_nodes == count,
        "G0 overlay node count differs from the virtual-node count",
    )
    report._check(
        hierarchy.g0.overlay.is_connected(),
        "G0 overlay is disconnected",
    )
    report._check(
        hierarchy.g0.round_cost >= 1.0,
        "G0 round cost below one round",
    )

    previous_parts = np.zeros(count, dtype=np.int64)
    for level in hierarchy.levels:
        prefix = f"level {level.index}:"
        report._check(
            level.parts.shape == (count,),
            f"{prefix} part labels missing for some virtual nodes",
        )
        # Nesting: this level's parts refine the previous level's.
        coarse = level.parts // hierarchy.beta
        report._check(
            bool(np.array_equal(coarse, previous_parts)),
            f"{prefix} parts do not refine the previous level",
        )
        # Containment: overlay edges stay inside parts.
        edges = level.overlay.edge_array
        if edges.size:
            inside = level.parts[edges[:, 0]] == level.parts[edges[:, 1]]
            report._check(
                bool(inside.all()),
                f"{prefix} {int((~inside).sum())} overlay edges cross parts",
            )
        report._check(
            level.emulation_cost >= 1.0,
            f"{prefix} emulation cost below one round",
        )
        # Per-part connectivity (and completeness for cliques).
        for part_id in np.unique(level.parts):
            members = np.flatnonzero(level.parts == part_id)
            if members.shape[0] < 2:
                continue
            seen = {int(members[0])}
            frontier = [int(members[0])]
            while frontier:
                node = frontier.pop()
                for neighbor in level.overlay.neighbors(node):
                    neighbor = int(neighbor)
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            report._check(
                seen == set(int(x) for x in members),
                f"{prefix} part {int(part_id)} overlay is disconnected",
            )
            if level.is_clique:
                expected = members.shape[0] - 1
                degrees = level.overlay.degrees[members]
                report._check(
                    bool(np.all(degrees == expected)),
                    f"{prefix} part {int(part_id)} is not a complete graph",
                )
        previous_parts = level.parts
    return report


def validate_portals(
    hierarchy: Hierarchy, portals: PortalTable
) -> ValidationReport:
    """Check portal coverage and validity against the hierarchy."""
    report = ValidationReport()
    beta = hierarchy.beta
    for level in range(1, hierarchy.depth + 1):
        prefix = f"portals level {level}:"
        table = portals.tables[level - 1]
        parts = hierarchy.parts_at(level)
        overlay_prev = hierarchy.overlay_at(level - 1)
        own = parts % beta
        for sibling in range(beta):
            needed = own != sibling
            column = table[:, sibling]
            report._check(
                bool(np.all(column[needed] >= 0)),
                f"{prefix} missing portals towards sibling {sibling}",
            )
            report._check(
                bool(np.all(column[~needed] == -1)),
                f"{prefix} own-part entries should be -1",
            )
            holders = np.flatnonzero(column >= 0)
            if holders.size == 0:
                continue
            report._check(
                bool(np.array_equal(parts[column[holders]], parts[holders])),
                f"{prefix} a portal lies outside its node's part",
            )
            # Spot-check boundary edges on a sample of holders.
            sample = holders[:: max(1, holders.shape[0] // 16)]
            for node in sample:
                portal = int(column[node])
                target_part = (parts[node] // beta) * beta + sibling
                heads = overlay_prev.neighbors(portal)
                report._check(
                    bool(np.any(parts[heads] == target_part)),
                    f"{prefix} portal {portal} has no boundary edge to "
                    f"part {int(target_part)}",
                )
    return report
