"""Permutation routing on the hierarchical structure (Section 3.2).

The routing problem: source–destination pairs ``(s, t)`` of real nodes,
each node source/destination of at most ``d(v) * O(log n)`` packets per
instance (heavier demands are split into phases, footnote 3 of the
paper).  The algorithm:

1. **Preparation**: every packet takes a lazy walk of length
   ``~tau_mix`` from its source and lands on a uniformly random virtual
   node; the destination is addressed by the *canonical* virtual node of
   the target's ID, whose partition label every source can compute from
   the shared hash (property P2).
2. **Recursion** (per level ``i``): a packet whose current position and
   temporary destination fall in the same level-``(i+1)`` part recurses
   directly; otherwise it is routed (recursively) to its *portal* towards
   the destination's part, hops one level-``i`` overlay boundary edge,
   and recurses in the target part.  At the bottom, parts are
   ``O(log n)``-node cliques and packets are delivered directly.

Costs follow Lemma 3.4's recursion
``T(m) = 2 T(m/beta) * emulation + hop``: stage costs are accounted in
the stage's own overlay rounds and converted through the *measured*
emulation factors; hop costs are the measured max boundary-edge
congestion.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..congest.detector import crash_view as build_crash_view
from ..congest.faults import FaultPlan, FaultRecord
from ..params import Params
from ..rng import derive_rng, resolve_rng
from ..walks.correlated import run_correlated_walks
from ..walks.engine import run_lazy_walks
from .hierarchy import Hierarchy
from .ledger import RoundLedger
from .portals import PortalTable, build_portals

__all__ = ["RoutingError", "LevelCost", "RoutingResult", "Router"]


class RoutingError(RuntimeError):
    """Routing could not proceed (e.g. a missing portal).

    Usually means the construction constants were too aggressive for the
    instance; rebuild with a larger ``level_degree_factor`` or smaller
    ``beta``.
    """


@dataclass
class LevelCost:
    """Cost decomposition of one recursion level (Lemma 3.4's terms).

    Attributes:
        hop_rounds: total boundary-hop rounds, in level-``index`` overlay
            rounds (the ``O(log n)`` additive term).
        bottom_rounds: clique-delivery rounds (only at the bottom level),
            in bottom-overlay rounds.
        invocations: number of recursive invocations at this level
            (``2^index`` in the worst case).
        packets_crossing: packets that hopped between sibling parts here.
    """

    hop_rounds: float = 0.0
    bottom_rounds: float = 0.0
    invocations: int = 0
    packets_crossing: int = 0


@dataclass
class RoutingResult:
    """Outcome of one routing instance.

    Attributes:
        delivered: whether every packet reached its destination node.
        num_packets: packets routed.
        num_phases: phases used (1 unless the load promise was exceeded).
        prep_rounds: base-graph rounds of the preparation walks.
        cost_g0_rounds: recursion cost in ``G0`` rounds.
        cost_rounds: total base-graph rounds
            (``prep + cost_g0 * g0.round_cost``, plus ``fault_rounds``
            when routing under a fault plan).
        fault_rounds: extra base-graph rounds spent on modeled
            retransmissions under an active
            :class:`~repro.congest.faults.FaultPlan` (0.0 otherwise).
        recovery_rounds: extra base-graph rounds spent on portal
            failover and re-election under ``recovery="self-heal"``
            (0.0 under fail-fast).
        level_costs: per-level decomposition (index 0 = level 0).
        final_vnodes: final virtual-node position of every packet.
        packet_hops: per-packet overlay-edge hop counts (portal hops +
            bottom deliveries); only populated when routing with
            ``trace=True``.
    """

    delivered: bool
    num_packets: int
    num_phases: int
    prep_rounds: float
    cost_g0_rounds: float
    cost_rounds: float
    level_costs: dict[int, LevelCost] = field(default_factory=dict)
    final_vnodes: np.ndarray | None = None
    packet_hops: np.ndarray | None = None
    fault_rounds: float = 0.0
    recovery_rounds: float = 0.0

    @property
    def stretch_vs_tau_mix(self) -> float:
        """Total rounds divided by the instance's mixing time is reported
        by callers that know ``tau_mix``; kept here for convenience."""
        return self.cost_rounds


class Router:
    """Routes packet batches over a built hierarchy + portal table."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        portals: PortalTable | None = None,
        params: Params | None = None,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        context=None,
        walk_runner=None,
        faults: FaultPlan | None = None,
        recovery: str | None = None,
        crash_view=None,
    ):
        """Args:
            hierarchy: the built routing structure.
            portals: pre-built portal table (else built here).
            params: routing constants (default from ``context`` or
                :meth:`Params.default`).
            rng: randomness source (else the context's ``"router"``
                stream, else seeded from ``seed``).
            seed: seed for a fresh generator when ``rng`` is not given.
            context: optional :class:`repro.runtime.RunContext`; routing
                charges and walk-batch/scheduler events go through it.
            walk_runner: optional walk-execution override for the
                preparation walks (same contract as in
                :func:`~repro.core.embedding.build_g0`).
            faults: optional :class:`~repro.congest.faults.FaultPlan`
                (default: the context's plan).  On this vectorized path
                there is no wire to drop messages from; instead each
                delivery stage *models* the reliable layer — per-message
                geometric retransmission counts under the drop rate,
                converted to extra rounds and reported as
                ``RoutingResult.fault_rounds`` / charged as
                ``faults/retry-rounds``.  Exhausting the retry budget
                raises :class:`~repro.congest.faults.DeliveryTimeout`.
                Duplication/delay cost nothing here (acks dedup and
                absorb them); crash windows only act on the native wire.
            recovery: ``"fail-fast"`` (default; identical to the PR-4
                behaviour, draw for draw) or ``"self-heal"`` — portal
                lookups fail over to the next live redundant portal,
                re-electing from the part's boundary set when all ``k``
                are dead, with the failover cost charged under
                ``recovery/*``.  Defaults to the context's mode.
            crash_view: pre-built
                :class:`~repro.congest.detector.CrashView`; under
                self-heal one is derived from the context or the plan
                when absent.
        """
        self.hierarchy = hierarchy
        self._context = context
        self._walk_runner = walk_runner
        if context is not None:
            params = params or context.params
            if rng is None and seed is None:
                rng = context.stream("router")
            if faults is None:
                faults = context.fault_plan
            if recovery is None:
                recovery = getattr(context, "recovery", None)
        if recovery is None:
            recovery = "fail-fast"
        if recovery not in ("fail-fast", "self-heal"):
            raise ValueError(
                f"recovery must be 'fail-fast' or 'self-heal', "
                f"got {recovery!r}"
            )
        if faults is not None and faults.spec.is_null:
            faults = None
        self._faults = faults
        self._warned_unmodeled = False
        self.params = params or Params.default()
        self.rng = resolve_rng(rng, seed)
        self.recovery = recovery
        # Everything self-heal draws comes from streams separate from
        # self.rng, so fail-fast stays bit-identical draw for draw.
        view = crash_view
        if recovery == "self-heal" and view is None:
            num_real = hierarchy.g0.base_graph.num_nodes
            if context is not None:
                view = context.crash_view_for(num_real)
            elif faults is not None and faults.spec.crashes:
                view = build_crash_view(faults, num_real)
        self._crash_view = view
        self._self_heal = (
            recovery == "self-heal"
            and view is not None
            and not view.is_null
        )
        redundancy_rng = None
        recovery_rng = None
        if self._self_heal:
            if context is not None:
                redundancy_rng = context.fresh_stream("portals-redundant")
                recovery_rng = context.fresh_stream("recovery")
            else:
                redundancy_rng = derive_rng(
                    int(self.rng.integers(0, 2**62))
                )
                recovery_rng = derive_rng(
                    int(self.rng.integers(0, 2**62))
                )
        self._recovery_rng = recovery_rng
        if portals is not None:
            self.portals = portals
        else:
            self.portals = build_portals(
                hierarchy,
                self.params,
                self.rng,
                redundancy_rng=redundancy_rng,
            )
        if self._self_heal:
            host = hierarchy.g0.virtual.host
            dead_hosts = np.fromiter(
                sorted(view.ever_down), dtype=np.int64,
                count=len(view.ever_down),
            )
            self._dead_vnode = np.isin(host, dead_hosts)
        else:
            self._dead_vnode = None
        self._reelected: dict[tuple[int, int, int], int] = {}
        self._failover_events = 0
        self._reelections = 0
        self._failover_rounds_g = 0.0
        self._reelect_rounds_g = 0.0
        self._beta = hierarchy.beta
        self._level_costs: dict[int, LevelCost] = {}
        self._packet_hops: np.ndarray | None = None

    # -- checkpoint support --------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle everything except the walk-runner closure (a native
        backend re-binds its runner on resume; the oracle default is
        ``None`` anyway)."""
        state = self.__dict__.copy()
        state["_walk_runner"] = None
        return state

    # -- session support -----------------------------------------------------

    def warm_state(self) -> dict:
        """Snapshot the state that survives *across* ``route()`` calls.

        ``route()`` resets its per-instance counters on entry, but the
        re-election memo and the recovery stream advance monotonically
        over a router's lifetime.  A warm session restores this snapshot
        before each request so the k-th served request sees exactly the
        state a cold run's first (and only) request would.
        """
        state: dict = {
            "reelected": dict(self._reelected),
            "warned_unmodeled": self._warned_unmodeled,
            "recovery_rng": None,
        }
        if self._recovery_rng is not None:
            state["recovery_rng"] = copy.deepcopy(
                self._recovery_rng.bit_generator.state
            )
        return state

    def restore_warm_state(self, state: dict) -> None:
        """Rewind cross-call state to a :meth:`warm_state` snapshot."""
        self._reelected = dict(state["reelected"])
        self._warned_unmodeled = bool(state["warned_unmodeled"])
        if (
            self._recovery_rng is not None
            and state["recovery_rng"] is not None
        ):
            self._recovery_rng.bit_generator.state = copy.deepcopy(
                state["recovery_rng"]
            )

    # -- public API ----------------------------------------------------------

    def route(
        self,
        sources: np.ndarray,
        destinations: np.ndarray,
        ledger: RoundLedger | None = None,
        trace: bool = False,
    ) -> RoutingResult:
        """Deliver one packet per (source, destination) pair.

        Splits into phases automatically if the per-node load promise is
        exceeded (footnote 3 of the paper).

        Args:
            sources: real-node source per packet.
            destinations: real-node destination per packet.
            ledger: optional ledger to charge the phases to.
            trace: also record per-packet overlay hop counts (the
                stretch measurement of experiment E13).

        Returns:
            The :class:`RoutingResult`; ``delivered`` is verified, not
            assumed.
        """
        sources = np.asarray(sources, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        if sources.shape != destinations.shape:
            raise ValueError("sources and destinations must align")
        graph = self.hierarchy.g0.base_graph
        if sources.size and (
            sources.max() >= graph.num_nodes or sources.min() < 0
            or destinations.max() >= graph.num_nodes or destinations.min() < 0
        ):
            raise ValueError("source/destination node id out of range")
        num_phases = self._required_phases(sources, destinations)
        phase_of = self.rng.integers(0, num_phases, size=sources.shape[0])
        self._level_costs = {}
        self._failover_events = 0
        self._reelections = 0
        self._failover_rounds_g = 0.0
        self._reelect_rounds_g = 0.0
        self._packet_hops = (
            np.zeros(sources.shape[0], dtype=np.int64) if trace else None
        )
        total_prep = 0.0
        total_g0 = 0.0
        total_fault = 0.0
        final_vnodes = np.full(sources.shape[0], -1, dtype=np.int64)
        delivered = True
        for phase in range(num_phases):
            mask = phase_of == phase
            if not mask.any():
                continue
            prep, cost_g0, fault_g, fault_g0, vnodes, ok = self._route_phase(
                sources[mask], destinations[mask],
                ids=np.flatnonzero(mask) if trace else None,
            )
            total_prep += prep
            total_g0 += cost_g0
            total_fault += fault_g + fault_g0 * self.hierarchy.g0.round_cost
            final_vnodes[mask] = vnodes
            delivered &= ok
        cost_rounds = total_prep + total_g0 * self.hierarchy.g0.round_cost
        if self._faults is not None:
            cost_rounds += total_fault
            if self._context is not None:
                self._context.charge(
                    "faults/retry-rounds",
                    total_fault,
                    stage="route/model",
                    packets=int(sources.shape[0]),
                )
        recovery_rounds = self._failover_rounds_g + self._reelect_rounds_g
        if self._self_heal:
            cost_rounds += recovery_rounds
            if self._context is not None:
                if self._failover_rounds_g or self._failover_events:
                    self._context.charge(
                        "recovery/failover",
                        self._failover_rounds_g,
                        stage="route",
                        events=self._failover_events,
                    )
                if self._reelect_rounds_g or self._reelections:
                    self._context.charge(
                        "recovery/re-election",
                        self._reelect_rounds_g,
                        stage="route",
                        elections=self._reelections,
                    )
                self._context.emit(
                    "recovery",
                    "route/self-heal",
                    failovers=self._failover_events,
                    reelections=self._reelections,
                    recovery_rounds=recovery_rounds,
                )
        if ledger is not None:
            ledger.charge(
                "route/instance",
                cost_rounds,
                packets=int(sources.shape[0]),
                phases=num_phases,
            )
        if self._context is not None:
            self._context.charge(
                "route/instance",
                cost_rounds,
                packets=int(sources.shape[0]),
                phases=num_phases,
            )
            self._context.emit(
                "scheduler",
                "route/levels",
                levels={
                    str(level): {
                        "invocations": cost.invocations,
                        "hop_rounds": cost.hop_rounds,
                        "packets_crossing": cost.packets_crossing,
                    }
                    for level, cost in sorted(self._level_costs.items())
                },
                delivered=delivered,
            )
        return RoutingResult(
            delivered=delivered,
            num_packets=int(sources.shape[0]),
            num_phases=num_phases,
            prep_rounds=total_prep,
            cost_g0_rounds=total_g0,
            cost_rounds=cost_rounds,
            level_costs=self._level_costs,
            final_vnodes=final_vnodes,
            packet_hops=self._packet_hops,
            fault_rounds=total_fault if self._faults is not None else 0.0,
            recovery_rounds=recovery_rounds if self._self_heal else 0.0,
        )

    # -- internals -----------------------------------------------------------

    def _required_phases(
        self, sources: np.ndarray, destinations: np.ndarray
    ) -> int:
        """Phases needed so the per-node load promise holds per phase."""
        graph = self.hierarchy.g0.base_graph
        load = np.bincount(sources, minlength=graph.num_nodes) + np.bincount(
            destinations, minlength=graph.num_nodes
        )
        allowed = np.array(
            [
                self.params.packets_per_node(graph.num_nodes, d)
                for d in graph.degrees
            ],
            dtype=np.int64,
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = load / np.maximum(allowed, 1)
        return max(1, int(np.ceil(ratio.max()))) if load.size else 1

    def _model_fault_cost(
        self, num_messages: int, base_rounds: float, stage: str
    ) -> float:
        """Modeled retransmission rounds for one delivery stage (0 when
        no plan is active)."""
        plan = self._faults
        if plan is None:
            return 0.0
        if (
            not self._warned_unmodeled
            and (
                (plan.spec.crashes and not self._self_heal)
                or plan.spec.duplicate
                or plan.spec.delay
            )
        ):
            self._warned_unmodeled = True
            plan.record(
                FaultRecord(
                    "model-skip",
                    detail={
                        "stage": "route/model",
                        "reason": (
                            "crash/duplicate/delay faults act only on the "
                            "native wire; the oracle models drop retries"
                        ),
                    },
                )
            )
        return plan.retry_cost(num_messages, base_rounds, stage)

    def _route_phase(
        self,
        sources: np.ndarray,
        destinations: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> tuple[float, float, float, float, np.ndarray, bool]:
        """Route one phase.

        Returns ``(prep G-rounds, G0 rounds, fault G-rounds, fault G0
        rounds, vnodes, ok)``; the two fault terms stay 0.0 without an
        active plan.
        """
        hierarchy = self.hierarchy
        virtual = hierarchy.g0.virtual
        graph = hierarchy.g0.base_graph
        # Preparation: spread packets uniformly over virtual nodes.
        prep_runner = self._walk_runner or (
            run_correlated_walks if self.params.use_correlated_walks
            else run_lazy_walks
        )
        prep_run = prep_runner(
            graph, sources, hierarchy.g0.walk_length, self.rng
        )
        current = virtual.random_vnode_of(prep_run.positions, self.rng)
        prep_rounds = float(prep_run.schedule_rounds())
        if self._context is not None:
            self._context.emit(
                "walk_batch",
                "route/prep",
                walks=int(sources.shape[0]),
                steps=hierarchy.g0.walk_length,
                schedule_rounds=prep_rounds,
            )
        fault_g = self._model_fault_cost(
            int(sources.shape[0]), prep_rounds, "route/prep"
        )
        target = virtual.canonical(destinations)
        cost_g0, fault_g0, final = self._route_within(0, current, target, ids)
        ok = bool(np.all(virtual.host[final] == destinations))
        return prep_rounds, cost_g0, fault_g, fault_g0, final, ok

    def _route_within(
        self,
        level: int,
        current: np.ndarray,
        target: np.ndarray,
        ids: np.ndarray | None = None,
    ) -> tuple[float, float, np.ndarray]:
        """Route packets whose position and target share a level part.

        Returns the cost in level-``level`` overlay rounds, the modeled
        fault overhead in the same unit (0.0 without an active plan),
        and the final positions (== targets on success).
        """
        stats = self._level_costs.setdefault(level, LevelCost())
        stats.invocations += 1
        if current.size == 0:
            return 0.0, 0.0, target.copy()
        if level == self.hierarchy.depth:
            rounds = self._bottom_deliver(current, target)
            stats.bottom_rounds += rounds
            moving_count = int((current != target).sum())
            fault = self._model_fault_cost(
                moving_count, rounds, f"route/bottom-L{level}"
            )
            if ids is not None and self._packet_hops is not None:
                moving = current != target
                self._packet_hops[ids[moving]] += 1
            return rounds, fault, target.copy()
        hierarchy = self.hierarchy
        next_level = level + 1
        parts_next = hierarchy.parts_at(next_level)
        part_current = parts_next[current]
        part_target = parts_next[target]
        crossing = part_current != part_target
        stats.packets_crossing += int(crossing.sum())
        stage_a_target = target.copy()
        if crossing.any():
            sibling = part_target[crossing] % self._beta
            portals = self.portals.portals_for(
                next_level, current[crossing], sibling
            )
            if self._self_heal:
                portals = self._failover_portals(
                    next_level, current[crossing], sibling, portals
                )
            if np.any(portals < 0):
                raise RoutingError(
                    f"missing portal at level {next_level}; increase "
                    "level_degree_factor or decrease beta"
                )
            stage_a_target[crossing] = portals
        emulation = hierarchy.levels[next_level - 1].emulation_cost
        cost_a, fault_a, positions = self._route_within(
            next_level, current, stage_a_target, ids
        )
        hop_rounds = 0.0
        hop_fault = 0.0
        cost_b = 0.0
        fault_b = 0.0
        if crossing.any():
            hopped, hop_rounds = self._hop(
                level, positions[crossing], part_target[crossing]
            )
            stats.hop_rounds += hop_rounds
            hop_fault = self._model_fault_cost(
                int(crossing.sum()), hop_rounds, f"route/hop-L{level}"
            )
            if ids is not None and self._packet_hops is not None:
                self._packet_hops[ids[crossing]] += 1
            cost_b, fault_b, landed = self._route_within(
                next_level, hopped, target[crossing],
                ids[crossing] if ids is not None else None,
            )
            positions = positions.copy()
            positions[crossing] = landed
        return (
            (cost_a + cost_b) * emulation + hop_rounds,
            (fault_a + fault_b) * emulation + hop_fault,
            positions,
        )

    def _failover_portals(
        self,
        level: int,
        vnodes: np.ndarray,
        siblings: np.ndarray,
        primaries: np.ndarray,
    ) -> np.ndarray:
        """Replace dead primary portals with live candidates.

        Failover order: the node's remaining ``k - 1`` redundant
        portals, then a re-election over the (part, sibling) boundary
        set (cached per instance so every node converges on the same
        replacement).  Costs are modeled analytically — one extra
        addressing round per stage that failed over, and a
        ``Theta(beta)``-walk election when the whole redundant set is
        dead — mirroring what the wire protocol would pay, so both
        backends stay seed-for-seed comparable.
        """
        dead = self._dead_vnode
        need = (primaries >= 0) & dead[primaries]
        if not need.any():
            return primaries
        out = primaries.copy()
        candidates = self.portals.redundant_portals_for(
            level, vnodes, siblings
        )
        parts_level = self.hierarchy.parts_at(level)
        hierarchy = self.hierarchy
        failed_over = 0
        for i in np.flatnonzero(need):
            pick = -1
            for candidate in candidates[i]:
                candidate = int(candidate)
                if candidate >= 0 and not dead[candidate]:
                    pick = candidate
                    break
            if pick < 0:
                part = int(parts_level[vnodes[i]])
                sibling = int(siblings[i])
                key = (level, part, sibling)
                if key not in self._reelected:
                    self._reelected[key] = self.portals.reelect(
                        level,
                        part,
                        sibling,
                        is_dead=lambda c: bool(dead[c]),
                        rng=self._recovery_rng,
                    )
                    self._reelections += 1
                    # Theta(beta) walks of level_walk_length steps on
                    # the part overlay announce the new portal.
                    num_vnodes = hierarchy.g0.virtual.count
                    walk_length = self.params.level_walk_length(
                        max(2, num_vnodes)
                    )
                    self._reelect_rounds_g += (
                        float(self._beta * walk_length)
                        * hierarchy.emulation_to_g(level)
                    )
                pick = self._reelected[key]
            out[i] = pick
            failed_over += 1
        if failed_over:
            self._failover_events += failed_over
            # Re-addressing the stage costs one extra overlay round.
            self._failover_rounds_g += hierarchy.emulation_to_g(level)
        return out

    def _hop(
        self, level: int, portals: np.ndarray, target_parts: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Hop packets over level-``level`` overlay boundary edges.

        Each packet sits at a portal that has at least one overlay edge
        into its target part; it crosses a uniformly random such edge.
        Cost is the measured max number of packets on a single edge.
        """
        overlay = self.hierarchy.overlay_at(level)
        parts_next = self.hierarchy.parts_at(level + 1)
        landed = np.empty_like(portals)
        chosen_arcs = np.empty_like(portals)
        for i, (portal, part) in enumerate(zip(portals, target_parts)):
            arcs = np.arange(
                overlay.indptr[portal], overlay.indptr[portal + 1]
            )
            heads = overlay.indices[arcs]
            valid = arcs[parts_next[heads] == part]
            if self._self_heal and valid.size:
                # Prefer boundary edges whose far endpoint is live; a
                # hop into a crashed node would strand the packet.
                live = valid[~self._dead_vnode[overlay.indices[valid]]]
                if live.size:
                    valid = live
            if valid.size == 0:
                raise RoutingError(
                    f"portal {int(portal)} lost its boundary edge to part "
                    f"{int(part)} at level {level + 1}"
                )
            arc = int(valid[self.rng.integers(0, valid.size)])
            landed[i] = overlay.indices[arc]
            chosen_arcs[i] = arc
        # Per *directed* arc: opposite-direction crossings run in parallel
        # (one message per edge per direction per round).
        congestion = np.bincount(chosen_arcs).max() if portals.size else 0
        return landed, float(congestion)

    def _bottom_deliver(
        self, current: np.ndarray, target: np.ndarray
    ) -> float:
        """Deliver within bottom-level cliques.

        One clique round carries one message per ordered node pair, so
        the cost is the max multiplicity over ordered (position, target)
        pairs among packets still in transit.
        """
        moving = current != target
        if not moving.any():
            return 0.0
        num = self.hierarchy.g0.virtual.count
        keys = current[moving] * num + target[moving]
        __, counts = np.unique(keys, return_counts=True)
        return float(counts.max())
