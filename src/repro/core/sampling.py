"""Shared helpers for turning walk endpoints into overlay edges."""

from __future__ import annotations

import numpy as np

__all__ = ["group_select", "sample_within_parts"]


def group_select(
    owners: np.ndarray,
    targets: np.ndarray,
    num_owners: int,
    cap: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Per owner, keep up to ``cap`` distinct non-self targets as edges.

    This is the "node keeps ``Theta(log n)`` of its successful walk
    endpoints" selection step used for ``G0`` and every level overlay.

    Args:
        owners: owner id per sample.
        targets: target id per sample (same length).
        num_owners: id range of owners.
        cap: max edges kept per owner.
        rng: used to subsample when an owner has more than ``cap``.

    Returns:
        Edge list ``(owner, target)``.
    """
    order = np.argsort(owners, kind="stable")
    owners_sorted = owners[order]
    targets_sorted = targets[order]
    boundaries = np.searchsorted(
        owners_sorted, np.arange(num_owners + 1), side="left"
    )
    edges: list[tuple[int, int]] = []
    for owner in range(num_owners):
        chunk = targets_sorted[boundaries[owner]: boundaries[owner + 1]]
        chunk = np.unique(chunk)
        chunk = chunk[chunk != owner]
        if chunk.shape[0] > cap:
            chunk = rng.choice(chunk, size=cap, replace=False)
        for target in chunk:
            edges.append((owner, int(target)))
    return edges


def sample_within_parts(
    parts: np.ndarray,
    degree: int,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Sample ``degree`` uniform same-part neighbours for every node.

    The fast-path equivalent of the walk-based selection: a mixed regular
    walk on the previous (per-part expander) overlay ends at a uniform
    node of the part, so uniform sampling draws from the identical
    distribution (see DESIGN.md §4).

    Args:
        parts: part id per node.
        degree: samples per node (self-samples and duplicates dropped).
        rng: randomness source.

    Returns:
        Edge list ``(node, sampled neighbour)``.
    """
    num_nodes = parts.shape[0]
    order = np.argsort(parts, kind="stable")
    sorted_parts = parts[order]
    boundaries = np.flatnonzero(
        np.diff(np.concatenate(([-1], sorted_parts, [-1])))
    )
    edges: list[tuple[int, int]] = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        members = order[start:end]
        if members.shape[0] < 2:
            continue
        draws = members[
            rng.integers(0, members.shape[0], size=(members.shape[0], degree))
        ]
        for node, row in zip(members, draws):
            for target in np.unique(row):
                if target != node:
                    edges.append((int(node), int(target)))
    return edges
