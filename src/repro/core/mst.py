"""Distributed MST in almost mixing time (Section 4, Theorem 1.1).

Boruvka's approach with two modifications from the paper:

* **Head/tail coins**: each component flips a fair coin per iteration;
  only minimum-weight outgoing edges from *tail* components to *head*
  components are added, making every merge star-shaped (a head centre
  with tail components attaching), which keeps component bookkeeping to
  constant distance.
* **Virtual-tree upcasts**: the min-weight outgoing edge of each
  component is computed by ``O(max depth)`` repetitions of one routing
  instance in which every node sends its current best to its virtual-tree
  parent; the result is downcast the same way.  Each repetition is one
  permutation-routing instance on the hierarchical structure (every
  component's tree upcasts in the same instance, in parallel).

Edge weights are made distinct by ``(weight, edge_id)`` tie-breaking, so
the MST is unique and equals Kruskal's output exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import WeightedGraph
from ..params import Params
from ..rng import resolve_rng
from .hierarchy import Hierarchy, build_hierarchy
from .ledger import RoundLedger
from .router import Router
from .virtual_tree import VirtualTree

__all__ = ["IterationStats", "MstResult", "MstRunner", "minimum_spanning_tree"]


@dataclass
class IterationStats:
    """Per-Boruvka-iteration measurements (feeds experiment E8).

    Attributes:
        iteration: iteration number (0-based).
        components_before: component count at iteration start.
        components_after: component count after the merges.
        edges_added: MST edges added this iteration.
        max_tree_depth: deepest virtual tree at iteration start.
        max_tree_degree_ratio: max over nodes of
            ``tree_children(v) / d_G(v)`` (Lemma 4.1 predicts
            ``O(log n)``).
        upcast_steps: upcast+downcast routing repetitions charged.
        routing_rounds: base-graph rounds of one routing repetition.
        rounds: total base-graph rounds charged to this iteration.
    """

    iteration: int
    components_before: int
    components_after: int
    edges_added: int
    max_tree_depth: int
    max_tree_degree_ratio: float
    upcast_steps: int
    routing_rounds: float
    rounds: float


@dataclass
class MstResult:
    """Output of the distributed MST computation.

    Attributes:
        edge_ids: ids of the MST edges (n - 1 of them).
        total_weight: sum of MST edge weights.
        iterations: per-iteration statistics.
        rounds: total base-graph rounds (construction excluded).
        construction_rounds: rounds spent building the routing structure.
        ledger: the full accounting ledger.
    """

    edge_ids: list[int]
    total_weight: float
    iterations: list[IterationStats] = field(default_factory=list)
    rounds: float = 0.0
    construction_rounds: float = 0.0
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def num_iterations(self) -> int:
        """Boruvka iterations used."""
        return len(self.iterations)


class MstRunner:
    """Runs the distributed MST algorithm over a prebuilt hierarchy."""

    def __init__(
        self,
        graph: WeightedGraph,
        hierarchy: Hierarchy | None = None,
        params: Params | None = None,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        context=None,
    ):
        if not isinstance(graph, WeightedGraph):
            raise TypeError("MST needs a WeightedGraph")
        self.graph = graph
        self._context = context
        if context is not None:
            params = params or context.params
            if rng is None and seed is None:
                rng = context.stream("mst")
        self.params = params or Params.default()
        self.rng = resolve_rng(rng, seed)
        self.hierarchy = hierarchy or build_hierarchy(
            graph, self.params, self.rng
        )
        self.router = Router(
            self.hierarchy,
            params=self.params,
            rng=self.rng,
            faults=context.fault_plan if context is not None else None,
        )

    def run(self) -> MstResult:
        """Compute the MST; verified-unique via (weight, id) tie-breaks."""
        graph = self.graph
        n = graph.num_nodes
        ledger = RoundLedger()
        ledger.merge(self.hierarchy.ledger)
        component = np.arange(n, dtype=np.int64)
        trees: dict[int, VirtualTree] = {
            v: VirtualTree.singleton(v) for v in range(n)
        }
        result = MstResult(
            edge_ids=[],
            total_weight=0.0,
            ledger=ledger,
            construction_rounds=self.hierarchy.construction_rounds(),
        )
        max_iterations = max(8, int(8 * math.log2(max(2, n))))
        edges = graph.edge_array
        for iteration in range(max_iterations):
            num_components = len(trees)
            if num_components == 1:
                break
            stats = self._one_iteration(
                iteration, component, trees, edges, ledger
            )
            result.iterations.append(stats)
            result.rounds += stats.rounds
            if stats.edges_added:
                for eid in self._added_this_round:
                    result.edge_ids.append(eid)
        else:
            if len(trees) > 1:
                raise RuntimeError(
                    "Boruvka did not converge within the iteration budget"
                )
        result.edge_ids = sorted(set(result.edge_ids))
        result.total_weight = graph.total_weight(result.edge_ids)
        if len(result.edge_ids) != n - 1:
            raise RuntimeError(
                f"MST has {len(result.edge_ids)} edges, expected {n - 1}"
            )
        return result

    # -- one Boruvka iteration ------------------------------------------------

    def _one_iteration(
        self,
        iteration: int,
        component: np.ndarray,
        trees: dict[int, VirtualTree],
        edges: np.ndarray,
        ledger: RoundLedger,
    ) -> IterationStats:
        graph = self.graph
        components_before = len(trees)
        # 1. Per-component minimum-weight outgoing edge (computed logically;
        #    the communication cost is charged via the upcast below).
        mwoe = self._component_mwoe(component, edges)
        # 2. Charge the upcast/downcast: (2 * max_depth) repetitions of the
        #    all-pairs-to-parent routing instance.
        max_depth = max(tree.max_depth() for tree in trees.values())
        pairs = [
            pair for tree in trees.values() for pair in tree.pairs_to_parent()
        ]
        routing_rounds = 0.0
        fault_per_route = 0.0
        if pairs and max_depth > 0:
            arr = np.array(pairs, dtype=np.int64)
            sample = self.router.route(arr[:, 0], arr[:, 1])
            if not sample.delivered:
                raise RuntimeError("upcast routing failed to deliver")
            routing_rounds = sample.cost_rounds
            fault_per_route = sample.fault_rounds
        upcast_steps = 2 * max(1, max_depth)
        iteration_rounds = routing_rounds * upcast_steps
        # 3. Coins and star merges.
        heads = {
            comp: bool(self.rng.integers(0, 2)) for comp in trees.keys()
        }
        merges: dict[int, list[tuple[int, int, int]]] = {}
        self._added_this_round: list[int] = []
        for comp, eid in mwoe.items():
            if eid < 0 or heads[comp]:
                continue  # heads keep still; tails push their MWOE.
            u, v = int(edges[eid, 0]), int(edges[eid, 1])
            if component[u] != comp:
                u, v = v, u
            target = int(component[v])
            if not heads[target]:
                continue  # tail-to-tail edges wait for a later iteration.
            merges.setdefault(target, []).append((comp, eid, v))
        # 4. Apply merges: attach tail trees under head attach points, then
        #    rebalance with the token pass; charge its upcast steps.
        rebalance_steps = 0
        for head_comp, attachments in merges.items():
            head_tree = trees[head_comp]
            attach_points = []
            for tail_comp, eid, head_endpoint in attachments:
                tail_tree = trees.pop(tail_comp)
                head_tree.absorb(tail_tree, head_endpoint)
                attach_points.append(head_endpoint)
                self._added_this_round.append(eid)
                member_mask = component == tail_comp
                component[member_mask] = head_comp
            report = head_tree.rebalance(attach_points)
            rebalance_steps = max(rebalance_steps, report.upcast_steps)
        iteration_rounds += routing_rounds * rebalance_steps
        # 5. Every node tells neighbours its (possibly new) component id.
        iteration_rounds += 1.0
        max_ratio = 0.0
        for tree in trees.values():
            for node in tree.nodes:
                ratio = tree.in_degree(node) / max(1, graph.degree(node))
                max_ratio = max(max_ratio, ratio)
        ledger.charge(
            f"mst/iteration-{iteration}",
            iteration_rounds,
            components=components_before,
            merged=len(self._added_this_round),
        )
        if self._context is not None:
            # The upcast repeats the routing instance, so its fault
            # surcharge repeats with it; split it out under faults/.
            fault_rounds = fault_per_route * (upcast_steps + rebalance_steps)
            self._context.charge(
                f"mst/iteration-{iteration}",
                iteration_rounds - fault_rounds,
                components=components_before,
                merged=len(self._added_this_round),
            )
            if fault_rounds > 0:
                self._context.charge(
                    "faults/retry-rounds",
                    fault_rounds,
                    stage=f"mst/iteration-{iteration}",
                )
        return IterationStats(
            iteration=iteration,
            components_before=components_before,
            components_after=len(trees),
            edges_added=len(self._added_this_round),
            max_tree_depth=max_depth,
            max_tree_degree_ratio=max_ratio,
            upcast_steps=upcast_steps + rebalance_steps,
            routing_rounds=routing_rounds,
            rounds=iteration_rounds,
        )

    def _component_mwoe(
        self, component: np.ndarray, edges: np.ndarray
    ) -> dict[int, int]:
        """Min-weight outgoing edge id per component (-1 if none).

        Ties broken by ``(weight, edge_id)``, making the MST unique.
        """
        weights = self.graph.weights
        comp_u = component[edges[:, 0]]
        comp_v = component[edges[:, 1]]
        outgoing = comp_u != comp_v
        best: dict[int, tuple[float, int]] = {}
        for eid in np.flatnonzero(outgoing):
            key = (float(weights[eid]), int(eid))
            for comp in (int(comp_u[eid]), int(comp_v[eid])):
                if comp not in best or key < best[comp]:
                    best[comp] = key
        return {comp: key[1] for comp, key in best.items()}


def minimum_spanning_tree(
    graph: WeightedGraph,
    params: Params | None = None,
    rng: np.random.Generator | None = None,
    hierarchy: Hierarchy | None = None,
) -> MstResult:
    """Convenience wrapper: build the structure and run the MST."""
    runner = MstRunner(graph, hierarchy=hierarchy, params=params, rng=rng)
    return runner.run()
