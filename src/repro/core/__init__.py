"""The paper's primary contribution: hierarchical routing, MST, and friends."""

from .clique import CliqueEmulationResult, all_pairs_demand, emulate_clique
from .clique_mst import CliqueMstResult, clique_boruvka_mst
from .dense_clique import DenseCliqueResult, dense_clique_emulation
from .embedding import G0Embedding, VirtualNodes, build_g0
from .hierarchy import (
    Hierarchy,
    Level,
    RepairReport,
    build_hierarchy,
    repair_overlay,
)
from .ledger import Charge, RoundLedger
from .mincut import MinCutResult, approximate_min_cut, tree_respecting_min_cut
from .mst import IterationStats, MstResult, MstRunner, minimum_spanning_tree
from .partition import HierarchicalPartition, build_partition
from .portals import PortalTable, build_portals
from .router import LevelCost, Router, RoutingError, RoutingResult
from .validate import ValidationReport, validate_hierarchy, validate_portals
from .virtual_tree import RebalanceReport, VirtualTree

__all__ = [
    "CliqueEmulationResult",
    "all_pairs_demand",
    "emulate_clique",
    "CliqueMstResult",
    "clique_boruvka_mst",
    "DenseCliqueResult",
    "dense_clique_emulation",
    "G0Embedding",
    "VirtualNodes",
    "build_g0",
    "Hierarchy",
    "Level",
    "RepairReport",
    "build_hierarchy",
    "repair_overlay",
    "Charge",
    "RoundLedger",
    "MinCutResult",
    "approximate_min_cut",
    "tree_respecting_min_cut",
    "IterationStats",
    "MstResult",
    "MstRunner",
    "minimum_spanning_tree",
    "HierarchicalPartition",
    "build_partition",
    "PortalTable",
    "build_portals",
    "LevelCost",
    "Router",
    "RoutingError",
    "RoutingResult",
    "ValidationReport",
    "validate_hierarchy",
    "validate_portals",
    "RebalanceReport",
    "VirtualTree",
]
