"""Dense-regime clique emulation (Theorem 1.3, second clause).

For graphs with ``h(G) = Omega(Delta)`` and ``Delta >= n^{1/2+eps}`` the
paper improves the emulation to ``O(n/h(G) * log n * log* n)`` rounds.
In that regime the graph is so well-connected that the heavy hierarchy is
unnecessary: we implement the natural Valiant-style two-phase balancing
the improved bound is built around.

* **Phase 1 (spread)**: node ``u`` deals its ``n - 1`` outgoing messages
  round-robin onto its ``d(u)`` incident edges (``ceil((n-1)/d(u))``
  rounds), so each neighbour relay holds a balanced share.
* **Phase 2 (deliver)**: relay ``w`` forwards each held message ``(u ->
  v)`` over its edge to ``v`` if present, else over a uniformly random
  incident edge of a node adjacent to ``v`` — with ``h = Omega(Delta)``
  a relay is adjacent to most targets, and the residual messages re-enter
  phase 2 (at most ``O(log n)`` times w.h.p.).

Round cost is the *measured* per-edge load of each phase.  The
``delivered`` flag reports whether every message reached its target
within the retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph

__all__ = ["DenseCliqueResult", "dense_clique_emulation"]


@dataclass
class DenseCliqueResult:
    """Outcome of the dense-regime emulation.

    Attributes:
        delivered: all ``n(n-1)`` messages arrived.
        rounds: measured schedule length (sum of per-phase max edge
            loads).
        spread_rounds: phase-1 rounds.
        deliver_rounds: phase-2 rounds (all retries included).
        retries: extra phase-2 passes needed for residual messages.
    """

    delivered: bool
    rounds: int
    spread_rounds: int
    deliver_rounds: int
    retries: int


def dense_clique_emulation(
    graph: Graph,
    rng: np.random.Generator,
    max_retries: int = 30,
) -> DenseCliqueResult:
    """Emulate one clique round on a dense, well-expanding graph.

    Args:
        graph: the network (intended: ``Delta = Omega(n^{1/2+eps})``,
            expansion ``Omega(Delta)``; works on anything connected but
            the round count degrades off-regime).
        rng: randomness source.
        max_retries: phase-2 passes before giving up on residuals.

    Returns:
        A :class:`DenseCliqueResult` with measured round counts.
    """
    n = graph.num_nodes
    if n < 2:
        return DenseCliqueResult(True, 0, 0, 0, 0)
    adjacency = np.zeros((n, n), dtype=bool)
    for u, v in graph.edges():
        adjacency[u, v] = True
        adjacency[v, u] = True
    neighbors = [np.flatnonzero(adjacency[u]) for u in range(n)]

    # Phase 1: deal each node's n-1 messages over its incident edges.
    sources = np.repeat(np.arange(n), n - 1)
    targets = np.concatenate(
        [np.delete(np.arange(n), u) for u in range(n)]
    )
    relay = np.empty(sources.shape[0], dtype=np.int64)
    spread_rounds = 0
    cursor = 0
    for u in range(n):
        count = n - 1
        mine = slice(cursor, cursor + count)
        cursor += count
        degree = neighbors[u].shape[0]
        rotation = int(rng.integers(0, degree))
        deal = neighbors[u][(rotation + np.arange(count)) % degree]
        relay[mine] = deal
        spread_rounds = max(
            spread_rounds, int(np.ceil(count / degree))
        )

    # Phase 2: relays deliver; residuals re-relay until done.
    deliver_rounds = 0
    retries = 0
    current = relay
    pending = np.ones(sources.shape[0], dtype=bool)
    # Messages already at their target after phase 1 are done.
    pending &= current != targets
    for attempt in range(max_retries + 1):
        if not pending.any():
            break
        idx = np.flatnonzero(pending)
        holders = current[idx]
        wanted = targets[idx]
        direct = adjacency[holders, wanted]
        # Direct deliveries: load = messages per directed edge (holder,
        # target).
        if direct.any():
            keys = holders[direct] * n + wanted[direct]
            __, counts = np.unique(keys, return_counts=True)
            deliver_rounds += int(counts.max())
            done_idx = idx[direct]
            current[done_idx] = wanted[direct]
            pending[done_idx] = False
        # Residuals hop to a random neighbour and try again.
        residual = idx[~direct]
        if residual.size:
            retries += 1
            hops = np.empty(residual.shape[0], dtype=np.int64)
            for i, message in enumerate(residual):
                nbrs = neighbors[current[message]]
                hops[i] = nbrs[rng.integers(0, nbrs.shape[0])]
            keys = current[residual] * n + hops
            __, counts = np.unique(keys, return_counts=True)
            deliver_rounds += int(counts.max())
            current[residual] = hops
    delivered = not pending.any()
    return DenseCliqueResult(
        delivered=delivered,
        rounds=spread_rounds + deliver_rounds,
        spread_rounds=spread_rounds,
        deliver_rounds=deliver_rounds,
        retries=retries,
    )
