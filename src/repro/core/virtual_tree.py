"""Virtual trees for Boruvka components (Section 4, Lemma 4.1).

Each forest component ``C`` carries a *virtual tree* ``T(C)`` spanning
its nodes.  Edges of ``T(C)`` are virtual (communication over them is one
routing pair), and three invariants are maintained across merges:

1. depth at most ``O(log^2 n)``,
2. every node ``v`` has at most ``d(v) * O(log n)`` virtual tree edges,
3. every node knows its parent.

Merging is star-shaped (tail components attach under head-component
nodes), followed by the paper's token-balancing pass: one token starts at
every attachment point, tokens upcast synchronously towards the head
root, co-located tokens merge and re-parent their creation points so the
attachment points end up hanging off a ``>= 2``-ary merge tree of depth
``O(log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VirtualTree", "RebalanceReport"]


@dataclass
class RebalanceReport:
    """What one token-balancing pass did.

    Attributes:
        upcast_steps: synchronous levels the token wave traversed (each is
            one routing instance in the distributed implementation).
        reparented: number of re-parenting operations performed.
        merges: number of token-merge events.
    """

    upcast_steps: int = 0
    reparented: int = 0
    merges: int = 0


@dataclass
class VirtualTree:
    """A rooted virtual tree over the (real) nodes of one component.

    Attributes:
        root: the root node.
        parent: parent per node (the root maps to itself).
        children: children sets per node.
        depth: depth per node (root is 0).
    """

    root: int
    parent: dict[int, int] = field(default_factory=dict)
    children: dict[int, set[int]] = field(default_factory=dict)
    depth: dict[int, int] = field(default_factory=dict)

    @classmethod
    def singleton(cls, node: int) -> "VirtualTree":
        """A one-node tree (initial Boruvka state)."""
        tree = cls(root=node)
        tree.parent[node] = node
        tree.children[node] = set()
        tree.depth[node] = 0
        return tree

    @property
    def nodes(self):
        """All member nodes."""
        return self.parent.keys()

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.parent)

    def max_depth(self) -> int:
        """Depth of the deepest node."""
        return max(self.depth.values())

    def in_degree(self, node: int) -> int:
        """Number of virtual tree edges at ``node`` towards children."""
        return len(self.children[node])

    def max_in_degree(self) -> int:
        """Max children count over all nodes."""
        return max(len(kids) for kids in self.children.values())

    def pairs_to_parent(self) -> list[tuple[int, int]]:
        """The ``(node, parent)`` routing pairs of one upcast step."""
        return [
            (node, parent)
            for node, parent in self.parent.items()
            if parent != node
        ]

    def check_invariants(self) -> None:
        """Validate parent/children/depth consistency (tests)."""
        assert self.parent[self.root] == self.root
        assert self.depth[self.root] == 0
        for node, par in self.parent.items():
            if node == self.root:
                continue
            assert node in self.children[par], (node, par)
            assert self.depth[node] == self.depth[par] + 1, node
        counted = sum(len(kids) for kids in self.children.values())
        assert counted == self.size - 1

    # -- merging -------------------------------------------------------------

    def absorb(self, tail: "VirtualTree", attach_node: int) -> None:
        """Attach ``tail``'s root under ``attach_node`` of this tree.

        ``attach_node`` is the head-side physical endpoint of the merge
        edge; the tail root becomes its child.
        """
        if attach_node not in self.parent:
            raise ValueError(f"attach node {attach_node} not in head tree")
        if tail.root in self.parent:
            raise ValueError("tail tree overlaps head tree")
        self.parent.update(tail.parent)
        self.children.update(
            {node: set(kids) for node, kids in tail.children.items()}
        )
        self.parent[tail.root] = attach_node
        self.children[attach_node].add(tail.root)
        base = self.depth[attach_node] + 1
        for node, d in tail.depth.items():
            self.depth[node] = base + d

    def rebalance(self, attach_points: list[int]) -> RebalanceReport:
        """Run the token-balancing pass of Lemma 4.1.

        One token is created at each distinct attachment point; tokens
        upcast level-by-level towards the root.  When two or more tokens
        meet (and when a token reaches the root), each token's creation
        point ``w`` is re-parented to the child ``u`` through which the
        token arrived (unless ``w == u``), and the merge point emits a
        fresh token that continues searching for its own new parent.

        Args:
            attach_points: head-tree nodes that received new children.

        Returns:
            A :class:`RebalanceReport`.
        """
        report = RebalanceReport()
        points = sorted(set(attach_points) - {self.root})
        if not points:
            self._recompute_depths()
            return report
        # token = (creation_point, current_node, entered_via or None)
        tokens: list[tuple[int, int, int | None]] = [
            (p, p, None) for p in points
        ]
        while True:
            deepest = max(self.depth[cur] for _, cur, _ in tokens)
            if deepest == 0:
                break
            report.upcast_steps += 1
            moved: list[tuple[int, int, int | None]] = []
            for creation, current, _ in tokens:
                if self.depth[current] == deepest:
                    moved.append((creation, self.parent[current], current))
                else:
                    moved.append((creation, current, None))
            # Group by current node; merge co-located tokens.
            by_node: dict[int, list[tuple[int, int, int | None]]] = {}
            for token in moved:
                by_node.setdefault(token[1], []).append(token)
            tokens = []
            for node, group in by_node.items():
                if len(group) >= 2:
                    report.merges += 1
                    for creation, __, via in group:
                        report.reparented += self._reparent(creation, via)
                    tokens.append((node, node, None))
                else:
                    tokens.append(group[0])
        # Tokens have reached the root: final re-parent.
        for creation, __, via in tokens:
            report.reparented += self._reparent(creation, via)
        self._recompute_depths()
        return report

    def _reparent(self, node: int, via: int | None) -> int:
        """Re-parent ``node`` under ``via`` if it is a different node.

        ``via`` is the child through which the node's token arrived at the
        merge point; ``None`` means the token never moved (its creation
        point *is* the merge point) and nothing happens.
        """
        if via is None or via == node or node == self.root:
            return 0
        if self.parent[node] == via:
            return 0
        self.children[self.parent[node]].discard(node)
        self.parent[node] = via
        self.children[via].add(node)
        return 1

    def _recompute_depths(self) -> None:
        """BFS depth refresh after re-parenting (local bookkeeping)."""
        self.depth = {self.root: 0}
        frontier = [self.root]
        while frontier:
            nxt = []
            for node in frontier:
                for child in self.children[node]:
                    self.depth[child] = self.depth[node] + 1
                    nxt.append(child)
            frontier = nxt
        if len(self.depth) != self.size:
            raise RuntimeError(
                "virtual tree became disconnected during rebalancing"
            )
