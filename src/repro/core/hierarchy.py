"""The hierarchical embedding of random graphs (Section 3.1.2).

Level ``i`` (for ``i = 1..k``) is an overlay ``G_i`` on the virtual
nodes, a disjoint union of one random graph per level-``i`` part: each
node picks ``Theta(log n)`` uniform neighbours from its own part, sampled
by ``2*Delta``-regular random walks on ``G_{i-1}`` (which mix inside the
node's level-``(i-1)`` part).  The last level's parts have ``O(log n)``
nodes and use the complete graph.

Each level records a *measured* emulation cost: the Lemma 2.5 schedule
length of replaying one walk per overlay edge on the previous overlay
(forward + reverse), which is what one communication round of ``G_i``
costs in ``G_{i-1}`` rounds (Lemma 3.1: ``O(log^2 n)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph
from ..params import Params
from ..rng import resolve_rng
from ..walks.engine import run_regular_walks
from .embedding import G0Embedding, build_g0
from .ledger import RoundLedger
from .partition import HierarchicalPartition, build_partition
from .sampling import group_select, sample_within_parts

__all__ = [
    "Level",
    "Hierarchy",
    "build_hierarchy",
    "RepairReport",
    "repair_overlay",
]


@dataclass
class Level:
    """One level of the hierarchical embedding.

    Attributes:
        index: level number (1-based; level 0 is ``G0`` itself).
        parts: level-``index`` part id of every virtual node.
        overlay: the level overlay graph ``G_index`` (disjoint union of
            per-part random graphs, or per-part cliques at the bottom).
        emulation_cost: measured ``G_{index-1}`` rounds per round of this
            overlay (Lemma 3.1).
        build_cost: ``G_{index-1}`` rounds spent constructing the overlay
            (Lemma 3.2's per-level term).
        is_clique: whether this is the bottom (complete-graph) level.
    """

    index: int
    parts: np.ndarray
    overlay: Graph
    emulation_cost: float
    build_cost: float
    is_clique: bool


@dataclass
class Hierarchy:
    """The full routing structure: ``G0`` + levels + partition.

    Attributes:
        g0: the level-zero embedding.
        partition: the hash-based hierarchical partition.
        levels: levels ``1..depth`` (``levels[i-1]`` is level ``i``).
        ledger: the construction's round ledger (base-graph rounds).
    """

    g0: G0Embedding
    partition: HierarchicalPartition
    levels: list[Level] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def depth(self) -> int:
        """Number of levels above ``G0``."""
        return len(self.levels)

    @property
    def beta(self) -> int:
        """Branching factor of the partition."""
        return self.partition.beta

    def overlay_at(self, level: int) -> Graph:
        """Overlay graph of ``level`` (level 0 = ``G0``)."""
        if level == 0:
            return self.g0.overlay
        return self.levels[level - 1].overlay

    def parts_at(self, level: int) -> np.ndarray:
        """Part id of every virtual node at ``level`` (level 0 = all 0)."""
        if level == 0:
            return np.zeros(self.g0.virtual.count, dtype=np.int64)
        return self.levels[level - 1].parts

    def emulation_to_g0(self, level: int) -> float:
        """Measured ``G0`` rounds per one round of the ``level`` overlay."""
        factor = 1.0
        for lvl in self.levels[:level]:
            factor *= lvl.emulation_cost
        return factor

    def emulation_to_g(self, level: int) -> float:
        """Measured base-graph rounds per one round of the ``level`` overlay."""
        return self.emulation_to_g0(level) * self.g0.round_cost

    def construction_rounds(self) -> float:
        """Total base-graph rounds charged for the construction."""
        return self.ledger.total()

    def describe(self) -> str:
        """Multi-line summary of the structure (sizes, costs, factors)."""
        lines = [
            f"Hierarchy on {self.g0.base_graph!r}: beta={self.beta}, "
            f"depth={self.depth}, tau_mix~{self.g0.tau_mix}",
            f"  G0: {self.g0.virtual.count} virtual nodes, "
            f"round cost {self.g0.round_cost:,.0f} G-rounds",
        ]
        import numpy as _np

        for level in self.levels:
            sizes = _np.bincount(level.parts)
            kind = "cliques" if level.is_clique else "random graphs"
            lines.append(
                f"  level {level.index}: {int(sizes.shape[0])} parts "
                f"({int(sizes.min())}..{int(sizes.max())} nodes, {kind}), "
                f"emulation x{level.emulation_cost:,.0f}"
            )
        lines.append(
            f"  construction total: {self.construction_rounds():,.0f} G-rounds"
        )
        return "\n".join(lines)


def build_hierarchy(
    graph: Graph,
    params: Params | None = None,
    rng: np.random.Generator | None = None,
    beta: int | None = None,
    depth: int | None = None,
    tau_mix: int | None = None,
    seed: int | None = None,
    context=None,
    walk_runner=None,
) -> Hierarchy:
    """Construct the full hierarchical routing structure on ``graph``.

    Args:
        graph: connected base graph.
        params: construction constants (default :meth:`Params.default`).
        rng: randomness source (else seeded from ``seed``).
        seed: seed for a fresh generator when ``rng`` is not given.
        beta: branching-factor override.
        depth: level-count override.
        tau_mix: mixing-time override (else estimated from the graph).
        context: optional :class:`repro.runtime.RunContext`.  Supplies
            default ``params`` and the ``"hierarchy"`` RNG stream, and
            absorbs the construction ledger (one ``ledger_charge`` trace
            event per charge) once the build completes.
        walk_runner: optional walk-execution override forwarded to
            :func:`~repro.core.embedding.build_g0` (backends inject the
            native message-passing runner here).

    Returns:
        The constructed :class:`Hierarchy`, with all build costs charged
        to its ledger in base-graph rounds.
    """
    if context is not None:
        params = params or context.params
        if rng is None and seed is None:
            rng = context.stream("hierarchy")
    params = params or Params.default()
    rng = resolve_rng(rng, seed)
    ledger = RoundLedger()
    g0 = build_g0(
        graph, params, rng, ledger=ledger, tau_mix=tau_mix,
        walk_runner=walk_runner,
    )
    partition = build_partition(
        g0.virtual, params, rng, beta=beta, depth=depth
    )
    # Disseminating the Theta(log^2 n) shared hash-seed bits costs
    # O(D log n) <= O(tau_mix log n) base-graph rounds.
    seed_words = max(1, partition.hash_fn.seed_bits() // 31)
    hierarchy = Hierarchy(g0=g0, partition=partition, ledger=ledger)
    ledger.charge(
        "partition/seed-broadcast",
        float(g0.tau_mix + seed_words),
        seed_bits=partition.hash_fn.seed_bits(),
    )
    n = graph.num_nodes
    degree = params.level_degree(n)
    walk_length = params.level_walk_length(n)
    bottom = params.bottom_size(n)
    previous_overlay = g0.overlay
    for level_index in range(1, partition.depth + 1):
        parts = partition.all_parts_at_level(level_index)
        sizes = np.bincount(parts)
        is_clique = int(sizes.max()) <= bottom or level_index == partition.depth
        if is_clique:
            edges = _clique_edges(parts)
            build_cost_prev = _gossip_cost(sizes, walk_length)
        elif params.use_walk_overlays:
            edges, build_cost_prev = _walk_overlay_edges(
                previous_overlay, parts, partition.beta, degree,
                walk_length, params, rng,
            )
        else:
            edges = sample_within_parts(parts, degree, rng)
            # The faithful construction starts beta * degree walks per
            # node; charge its analytic Lemma 2.5 schedule.
            build_cost_prev = float(
                (partition.beta * degree + np.log2(max(2, previous_overlay.num_nodes)))
                * walk_length * 2.0
            )
        overlay = Graph(previous_overlay.num_nodes, edges)
        emulation_cost = _measure_emulation_cost(
            previous_overlay, overlay, walk_length, rng
        )
        level = Level(
            index=level_index,
            parts=parts,
            overlay=overlay,
            emulation_cost=emulation_cost,
            build_cost=build_cost_prev,
            is_clique=is_clique,
        )
        hierarchy.levels.append(level)
        ledger.charge(
            f"hierarchy/build-level-{level_index}",
            build_cost_prev * hierarchy.emulation_to_g(level_index - 1),
            parts=int(sizes.shape[0]),
            max_part=int(sizes.max()),
            clique=is_clique,
        )
        previous_overlay = overlay
        if is_clique:
            break
    if context is not None:
        context.absorb_ledger(ledger)
        context.emit(
            "walk_batch",
            "hierarchy/construction",
            depth=hierarchy.depth,
            tau_mix=g0.tau_mix,
            build_rounds=float(ledger.total()),
        )
    return hierarchy


def _walk_overlay_edges(
    previous_overlay: Graph,
    parts: np.ndarray,
    beta: int,
    degree: int,
    walk_length: int,
    params: Params,
    rng: np.random.Generator,
) -> tuple[list[tuple[int, int]], float]:
    """Faithful walk-based neighbour sampling for one level.

    Starts ``~level_walks_factor * beta * degree / level_degree_factor``
    regular walks per node on the previous overlay; a walk is *successful*
    if it ends inside the walker's new (level-``i``) part.  Keeps up to
    ``degree`` distinct successful endpoints per node.
    """
    num_nodes = previous_overlay.num_nodes
    walks_per_node = max(beta, int(round(2.0 * beta * degree
                                         * params.level_walks_factor
                                         / max(1.0, params.level_degree_factor))))
    starts = np.repeat(np.arange(num_nodes), walks_per_node)
    run = run_regular_walks(previous_overlay, starts, walk_length, rng)
    owners = starts
    successful = parts[run.positions] == parts[owners]
    edges = group_select(
        owners[successful], run.positions[successful], num_nodes, degree, rng
    )
    # Forward + reverse traversal of all walks.
    build_cost = 2.0 * run.schedule_rounds()
    return edges, build_cost


def _clique_edges(parts: np.ndarray) -> list[tuple[int, int]]:
    """Complete graph inside every part (the bottom level)."""
    order = np.argsort(parts, kind="stable")
    sorted_parts = parts[order]
    boundaries = np.flatnonzero(
        np.diff(np.concatenate(([-1], sorted_parts, [-1])))
    )
    edges: list[tuple[int, int]] = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        members = order[start:end]
        for i in range(members.shape[0]):
            for j in range(i + 1, members.shape[0]):
                edges.append((int(members[i]), int(members[j])))
    return edges


def _gossip_cost(sizes: np.ndarray, walk_length: int) -> float:
    """Cost (prev-overlay rounds) of learning all part members at the bottom.

    Every node broadcasts its id inside its ``O(log n)``-node part over
    the previous overlay: ``O(part_size)`` messages per node, scheduled in
    ``O(part_size + walk_length)`` overlay rounds.
    """
    return float(int(sizes.max()) + walk_length)


def _measure_emulation_cost(
    previous_overlay: Graph,
    overlay: Graph,
    walk_length: int,
    rng: np.random.Generator,
) -> float:
    """Measured prev-overlay rounds per one round of ``overlay``.

    One ``G_i`` round delivers one message along every ``G_i`` edge (both
    directions); each such edge is a walk of length ``walk_length`` on
    ``G_{i-1}``.  We replay one walk per overlay arc endpoint and take
    twice the Lemma 2.5 schedule length (forward + reverse).
    """
    if overlay.num_edges == 0:
        return 1.0
    out_degrees = np.bincount(
        overlay.edge_array[:, 0], minlength=overlay.num_nodes
    )
    starts = np.repeat(np.arange(overlay.num_nodes), out_degrees)
    if starts.size == 0:
        return 1.0
    replay = run_regular_walks(previous_overlay, starts, walk_length, rng)
    return 2.0 * replay.schedule_rounds()


@dataclass(frozen=True)
class RepairReport:
    """Outcome of :func:`repair_overlay`.

    Attributes:
        dead: the virtual nodes repaired around.
        replaced: per level (1-based index keys), overlay edges that
            were re-embedded with a fresh live same-part neighbour.
        dropped: per level, dead-incident edges removed without a
            replacement (no live non-adjacent candidate, or a clique
            level where live members stay complete anyway).
        cost_rounds: base-graph rounds charged under
            ``recovery/repair-level-*``.
    """

    dead: tuple[int, ...]
    replaced: dict[int, int]
    dropped: dict[int, int]
    cost_rounds: float


def repair_overlay(
    hierarchy: Hierarchy,
    dead_vnodes,
    rng: np.random.Generator,
    context=None,
) -> RepairReport:
    """Re-embed overlay edges incident to dead virtual nodes, in place.

    Only the affected parts are touched: every live node that lost an
    overlay edge to a dead neighbour samples a replacement neighbour
    uniformly from the live, not-yet-adjacent members of its own part
    at that level — the same distribution the original construction
    used — and only those edges are rebuilt.  Untouched parts keep
    their overlay arrays bit-identical (no global rebuild).

    Each replacement edge costs one ``level_walk_length``-step walk on
    the previous overlay (forward + reverse), charged per level as
    ``recovery/repair-level-{i}``; charges go to ``context`` when
    given, else to the hierarchy's own ledger.
    """
    dead = frozenset(int(v) for v in dead_vnodes)
    replaced: dict[int, int] = {}
    dropped: dict[int, int] = {}
    total_cost = 0.0
    if not dead:
        return RepairReport((), replaced, dropped, 0.0)
    num_vnodes = hierarchy.g0.virtual.count
    walk_length = max(4, int(round(3.0 * np.log2(max(2, num_vnodes)))))
    for level in hierarchy.levels:
        edges = level.overlay.edge_array
        if edges.size == 0:
            continue
        tails = edges[:, 0]
        heads = edges[:, 1]
        hit = np.fromiter(
            (
                int(u) in dead or int(v) in dead
                for u, v in zip(tails, heads)
            ),
            dtype=bool,
            count=edges.shape[0],
        )
        if not hit.any():
            continue
        kept = [
            (int(u), int(v))
            for u, v in zip(tails[~hit], heads[~hit])
        ]
        adjacency: dict[int, set[int]] = {}
        for u, v in kept:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        parts = level.parts
        members_of: dict[int, list[int]] = {}
        for part in {int(parts[u]) for u in dead if u < parts.shape[0]}:
            members_of[part] = [
                int(w)
                for w in np.flatnonzero(parts == part).tolist()
                if int(w) not in dead
            ]
        n_replaced = 0
        n_dropped = 0
        for u, v in zip(tails[hit], heads[hit]):
            u, v = int(u), int(v)
            live_end = None
            if u not in dead and v in dead:
                live_end = u
            elif v not in dead and u in dead:
                live_end = v
            if live_end is None or level.is_clique:
                # Both endpoints dead, or a clique level (live members
                # are still pairwise connected): just drop the edge.
                n_dropped += 1
                continue
            part = int(parts[live_end])
            pool = members_of.get(part)
            if pool is None:
                pool = [
                    int(w)
                    for w in np.flatnonzero(parts == part).tolist()
                    if int(w) not in dead
                ]
                members_of[part] = pool
            taken = adjacency.get(live_end, set())
            candidates = [
                w for w in pool if w != live_end and w not in taken
            ]
            if not candidates:
                n_dropped += 1
                continue
            w = candidates[int(rng.integers(0, len(candidates)))]
            kept.append((live_end, w))
            adjacency.setdefault(live_end, set()).add(w)
            adjacency.setdefault(w, set()).add(live_end)
            n_replaced += 1
        level.overlay = Graph(level.overlay.num_nodes, kept)
        if n_replaced:
            replaced[level.index] = n_replaced
        if n_dropped:
            dropped[level.index] = n_dropped
        # One re-embedding walk per replaced edge on the previous
        # overlay, forward + reverse, converted to base-graph rounds.
        cost = (
            2.0
            * n_replaced
            * walk_length
            * hierarchy.emulation_to_g(level.index - 1)
        )
        if cost > 0.0:
            total_cost += cost
            if context is not None:
                context.charge(
                    f"recovery/repair-level-{level.index}",
                    cost,
                    replaced=n_replaced,
                    dropped=n_dropped,
                )
            else:
                hierarchy.ledger.charge(
                    f"recovery/repair-level-{level.index}",
                    cost,
                    replaced=n_replaced,
                    dropped=n_dropped,
                )
    return RepairReport(
        tuple(sorted(dead)), replaced, dropped, total_cost
    )
