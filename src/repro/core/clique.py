"""Clique emulation on a general graph (Theorem 1.3).

Every node must deliver one distinct ``O(log n)``-bit message to every
other node — emulating one round of the congested clique.  The paper
defers its specialized algorithm to the full version; we implement the
natural reduction onto the routing structure it sketches: the ``n(n-1)``
demands are split into phases respecting the per-node load promise
(``d(v) * O(log n)`` per phase, footnote 3), and each phase is one
permutation-routing instance.  On ``G(n, p)`` this yields the
``~ (1/p) * subpolynomial`` shape of the corollary (each node has
``Theta(np)`` bandwidth and must receive ``n - 1`` messages, so
``Omega(1/p)`` phases are unavoidable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import Params
from ..rng import resolve_rng
from .hierarchy import Hierarchy
from .router import Router, RoutingResult

__all__ = ["CliqueEmulationResult", "emulate_clique", "all_pairs_demand"]


@dataclass
class CliqueEmulationResult:
    """Outcome of one clique emulation.

    Attributes:
        delivered: whether all ``n(n-1)`` messages arrived.
        num_messages: total messages delivered.
        num_phases: routing phases used.
        rounds: total base-graph rounds.
        routing: the underlying routing result.
    """

    delivered: bool
    num_messages: int
    num_phases: int
    rounds: float
    routing: RoutingResult


def all_pairs_demand(num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """The clique demand: one packet per ordered pair ``(u, v), u != v``."""
    sources = np.repeat(np.arange(num_nodes), num_nodes - 1)
    offsets = np.concatenate(
        [np.delete(np.arange(num_nodes), u) for u in range(num_nodes)]
    )
    return sources, offsets


def emulate_clique(
    hierarchy: Hierarchy,
    params: Params | None = None,
    rng: np.random.Generator | None = None,
    router: Router | None = None,
    sample_fraction: float = 1.0,
    seed: int | None = None,
    context=None,
) -> CliqueEmulationResult:
    """Emulate one congested-clique round on the hierarchy's base graph.

    Args:
        hierarchy: a built routing structure.
        params: routing constants.
        rng: randomness source.
        router: optional prebuilt router (else built here).
        sample_fraction: route only this fraction of the ``n(n-1)``
            demands (uniformly sampled) and extrapolate the phase count —
            used by benchmarks at larger ``n``; the returned ``rounds``
            scales the measured per-phase cost by the full phase count.

        context: optional :class:`repro.runtime.RunContext`; supplies
            defaults (params, the ``"clique"`` stream) and receives the
            emulation's round charge as a trace event.

    Returns:
        A :class:`CliqueEmulationResult` (``delivered`` verified on the
        routed subset).
    """
    if context is not None:
        params = params or context.params
        if rng is None and seed is None:
            rng = context.stream("clique")
    params = params or Params.default()
    rng = resolve_rng(rng, seed)
    if router is None:
        router = Router(
            hierarchy,
            params=params,
            rng=rng,
            faults=context.fault_plan if context is not None else None,
        )
    graph = hierarchy.g0.base_graph
    n = graph.num_nodes
    sources, destinations = all_pairs_demand(n)
    full_count = sources.shape[0]
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    if sample_fraction < 1.0:
        keep = rng.random(full_count) < sample_fraction
        sources, destinations = sources[keep], destinations[keep]
    routing = router.route(sources, destinations)
    rounds = routing.cost_rounds
    num_phases = routing.num_phases
    if sample_fraction < 1.0 and routing.num_phases > 0:
        # Extrapolate: phases scale ~1/sample_fraction; per-phase cost is
        # what we measured.
        full_phases = max(
            routing.num_phases,
            int(np.ceil(routing.num_phases / sample_fraction)),
        )
        rounds = rounds * full_phases / routing.num_phases
        num_phases = full_phases
    # The emulation's fault surcharge scales with the same extrapolation
    # factor as the rounds it is part of.
    fault_rounds = routing.fault_rounds
    if routing.cost_rounds > 0:
        fault_rounds *= rounds / routing.cost_rounds
    if context is not None:
        context.charge(
            "clique/emulation",
            rounds - fault_rounds,
            messages=int(sources.shape[0]),
            phases=num_phases,
        )
        if fault_rounds > 0:
            context.charge(
                "faults/retry-rounds",
                fault_rounds,
                stage="clique/emulation",
                messages=int(sources.shape[0]),
            )
    return CliqueEmulationResult(
        delivered=routing.delivered,
        num_messages=int(sources.shape[0]),
        num_phases=num_phases,
        rounds=rounds,
        routing=routing,
    )
