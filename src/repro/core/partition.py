"""The pseudo-random hierarchical partition (Section 3.1.2).

Virtual nodes are mapped to the leaves of a ``beta``-ary tree of depth
``k`` by a ``Theta(log n)``-wise independent hash of their globally
computable UID.  This gives both required properties:

* **(P1) near-uniformity** — limited-independence Chernoff bounds keep
  every prefix class within a constant factor of ``N / beta^p``;
* **(P2) computability** — any node can evaluate the shared hash on any
  destination ID, so packet sources know every destination's full label.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hashing.kwise import KWiseHash
from ..params import Params
from ..theory import num_levels, optimal_beta
from .embedding import VirtualNodes

__all__ = ["HierarchicalPartition", "build_partition"]


@dataclass
class HierarchicalPartition:
    """Assignment of every virtual node to a leaf of the partition tree.

    Part IDs at level ``p`` are the length-``p`` label prefixes encoded as
    integers in ``[0, beta^p)``; level 0 is the single root part.

    Attributes:
        virtual: the virtual-node layer.
        beta: branching factor.
        depth: number of levels ``k`` (leaves live at level ``k``).
        hash_fn: the shared k-wise independent hash.
        leaf: leaf id of every virtual node, shape ``(2m,)``.
    """

    virtual: VirtualNodes
    beta: int
    depth: int
    hash_fn: KWiseHash
    leaf: np.ndarray

    @property
    def num_leaves(self) -> int:
        """Total number of leaves, ``beta^depth``."""
        return self.beta**self.depth

    def parts_at_level(self, level: int) -> int:
        """Number of parts at ``level`` (``beta^level``)."""
        if not 0 <= level <= self.depth:
            raise ValueError(f"level {level} outside [0, {self.depth}]")
        return self.beta**level

    def part_of(self, vnodes, level: int) -> np.ndarray:
        """Part id at ``level`` of each given virtual node."""
        if not 0 <= level <= self.depth:
            raise ValueError(f"level {level} outside [0, {self.depth}]")
        vnodes = np.asarray(vnodes, dtype=np.int64)
        return self.leaf[vnodes] // (self.beta ** (self.depth - level))

    def all_parts_at_level(self, level: int) -> np.ndarray:
        """Part id at ``level`` of every virtual node (vectorized)."""
        return self.leaf // (self.beta ** (self.depth - level))

    def leaf_of_real_destination(self, real_nodes) -> np.ndarray:
        """Leaf of the canonical virtual node of each real node.

        This is property (P2) in action: computed from the destination's
        ID alone via the shared hash, with no communication.
        """
        uids = self.virtual.canonical_uid(real_nodes)
        return self.hash_fn(uids)

    def part_sizes(self, level: int) -> np.ndarray:
        """Size of every part at ``level``."""
        return np.bincount(
            self.all_parts_at_level(level), minlength=self.parts_at_level(level)
        )

    def balance_ratio(self, level: int) -> float:
        """Max over min part size at ``level`` (property P1; ``O(1)``)."""
        sizes = self.part_sizes(level)
        smallest = sizes.min()
        if smallest == 0:
            return float("inf")
        return float(sizes.max() / smallest)


def build_partition(
    virtual: VirtualNodes,
    params: Params,
    rng: np.random.Generator,
    beta: int | None = None,
    depth: int | None = None,
) -> HierarchicalPartition:
    """Draw the shared hash and label all virtual nodes.

    Args:
        virtual: the virtual-node layer.
        params: construction constants (hash independence, bottom size).
        rng: source of the ``Theta(log^2 n)`` shared seed bits.
        beta: branching factor override (default: the paper's optimum).
        depth: level-count override (default: until parts reach the
            bottom size).

    Returns:
        The :class:`HierarchicalPartition`.
    """
    n = virtual.graph.num_nodes
    if beta is None:
        if params.beta is not None:
            beta = params.beta
        else:
            # The paper's optimum, additionally capped so that a single
            # level cannot undershoot the bottom part size (relevant only
            # at very small n, where beta* exceeds 2m / bottom and would
            # produce near-empty parts with no boundary edges).
            beta = min(
                optimal_beta(n),
                max(2, virtual.count // params.bottom_size(n)),
            )
    if beta < 2:
        raise ValueError(f"beta must be at least 2, got {beta}")
    if depth is None:
        depth = num_levels(virtual.count, beta, params.bottom_size(n))
    depth = max(1, depth)
    hash_fn = KWiseHash(params.hash_wise(n), beta**depth, rng)
    uids = virtual.uid(np.arange(virtual.count))
    leaf = hash_fn(uids)
    return HierarchicalPartition(
        virtual=virtual, beta=beta, depth=depth, hash_fn=hash_fn, leaf=leaf
    )
