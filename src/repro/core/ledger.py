"""Hierarchical round accounting.

Every phase of the construction/routing charges rounds to a
:class:`RoundLedger`.  Charges are expressed in *base-graph* (``G``)
rounds at charge time — callers convert overlay rounds through the
measured emulation factors (one ``G_i`` round costs a measured number of
``G_{i-1}`` rounds, one ``G0`` round costs a measured number of ``G``
rounds).  The ledger keeps a per-label breakdown so benchmarks can print
the cost decomposition of Lemmas 3.2–3.4.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["Charge", "RoundLedger"]


@dataclass
class Charge:
    """One accounting entry.

    Attributes:
        label: phase name, e.g. ``"g0-build"`` or ``"route/hop-level-2"``.
        rounds: cost in base-graph rounds.
        detail: free-form context (level, packet counts, ...).
    """

    label: str
    rounds: float
    detail: dict = field(default_factory=dict)


class RoundLedger:
    """Accumulates round charges with a per-label breakdown."""

    def __init__(self) -> None:
        self._charges: list[Charge] = []

    def charge(self, label: str, rounds: float, **detail) -> None:
        """Charge ``rounds`` base-graph rounds under ``label``."""
        if rounds < 0:
            raise ValueError(f"negative round charge: {rounds}")
        self._charges.append(Charge(label, float(rounds), dict(detail)))

    @property
    def charges(self) -> list[Charge]:
        """All entries, in charge order."""
        return list(self._charges)

    def __len__(self) -> int:
        return len(self._charges)

    def slice_from(self, start: int) -> "RoundLedger":
        """A new ledger holding the entries charged at index >= ``start``.

        The session layer marks ``len(ledger)`` before serving a request
        and slices afterwards, giving each request its own ledger view
        without forking the accounting.
        """
        sliced = RoundLedger()
        sliced._charges = list(self._charges[start:])
        return sliced

    def truncate(self, length: int) -> None:
        """Drop every entry charged at index >= ``length``.

        The warm-state restore: rewinding a component-local ledger (the
        hierarchy's construction ledger, which per-request routers also
        charge) to its post-build position, so one request's charges
        can never leak into the next request's view.
        """
        del self._charges[max(0, int(length)):]

    def total(self) -> float:
        """Total base-graph rounds charged."""
        return sum(charge.rounds for charge in self._charges)

    def by_label(self) -> "OrderedDict[str, float]":
        """Total rounds per label, in first-seen order."""
        table: OrderedDict[str, float] = OrderedDict()
        for charge in self._charges:
            table[charge.label] = table.get(charge.label, 0.0) + charge.rounds
        return table

    def by_prefix(self, separator: str = "/") -> "OrderedDict[str, float]":
        """Total rounds per top-level label prefix (before ``separator``)."""
        table: OrderedDict[str, float] = OrderedDict()
        for charge in self._charges:
            prefix = charge.label.split(separator, 1)[0]
            table[prefix] = table.get(prefix, 0.0) + charge.rounds
        return table

    def merge(self, other: "RoundLedger") -> None:
        """Append all of ``other``'s charges to this ledger."""
        self._charges.extend(other._charges)

    def format(self) -> str:
        """Human-readable breakdown."""
        lines = [f"{'label':40s} {'rounds':>12s}"]
        for label, rounds in self.by_label().items():
            lines.append(f"{label:40s} {rounds:12.1f}")
        lines.append(f"{'TOTAL':40s} {self.total():12.1f}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RoundLedger(total={self.total():.1f}, entries={len(self._charges)})"
