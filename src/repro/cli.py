"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a graph from a named family to JSON.
* ``info`` — print a graph's size, expansion, and mixing statistics.
* ``route`` — build the routing structure and route a random demand.
* ``mst`` — run the distributed MST (random weights if none stored).
* ``run`` — continue a run snapshotted with ``--checkpoint``.
* ``serve`` — open a warm session and answer JSONL requests; with
  ``--deadline-rounds/--retry-budget/--max-inflight`` the stream is
  governed by a :class:`~repro.runtime.ResiliencePolicy`, with
  ``--journal PATH`` every applied update is journaled crash-safely,
  and ``--recover`` reopens from that journal (replaying updates and
  skipping already-served records).
* ``bench`` — run registry benchmark suites / gate them against
  committed baselines (``repro bench SUITE [--check] [--quick]``).
* ``report`` — regenerate EXPERIMENTS.md from live runs.

Pipeline commands (``route``/``mst``/``mincut``/``clique``) construct
one :class:`~repro.runtime.RunConfig` from their flags and execute
through :func:`repro.run`:

* ``--backend {oracle,native}`` — vectorized engines vs. real message
  passing (native covers build + routing; elsewhere it exits with a
  clear error).
* ``--trace out.jsonl`` — write the structured trace-event stream.
* ``--validate {full,first_round,off}`` — simulator outbox validation
  for the native backend.
* ``--faults SPEC`` — seeded fault injection, e.g.
  ``drop=0.01,dup=0.001,crash=3@rounds:10-20`` (see
  ``docs/robustness.md`` for the grammar).  Delivery is still
  all-or-nothing: retries are paid and charged under ``faults/``, or a
  ``DeliveryTimeout`` diagnoses what was lost.
* ``--recovery {fail-fast,self-heal}`` — with ``self-heal``, crash
  windows are detected and survived (waited out, failed over, or
  re-homed) with the cost charged under ``recovery/``; the default
  ``fail-fast`` reproduces pre-recovery runs bit-identically.
* ``--checkpoint PATH`` — snapshot the run after the build phase;
  ``repro run --resume PATH`` continues it deterministically.
* ``--cache {off,auto,PATH}`` — content-addressed hierarchy cache; a
  hit restores the built structure and skips the build phase (see
  ``docs/service.md``).

Every random decision draws from a *named* stream of the context, so
e.g. ``--packets`` changes only the ``"workload"`` stream and never
perturbs the routing structure itself — and ``--faults`` draws only
from the ``"faults"`` stream.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.report import build_report
from .baselines import kruskal
from .congest.faults import DeliveryTimeout
from .graphs import (
    FAMILIES,
    WeightedGraph,
    load_graph,
    save_graph,
    spectral_gap,
    with_random_weights,
)
from .runtime import (
    CheckpointError,
    ResiliencePolicy,
    RunConfig,
    RunContext,
    RunOutcome,
    Session,
    UnsupportedOnBackend,
    run,
    serve_jsonl,
)
from .walks import estimate_mixing_time

__all__ = ["main"]


def _add_runtime_flags(sub: argparse.ArgumentParser) -> None:
    """Flags shared by every command that executes the pipeline."""
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--backend", choices=("oracle", "native"), default="oracle",
        help="oracle: vectorized engines (default); native: walk batches "
        "executed as real CONGEST message passing",
    )
    sub.add_argument(
        "--trace", metavar="OUT.JSONL", default=None,
        help="write structured trace events (JSONL) to this file",
    )
    sub.add_argument(
        "--validate", choices=("full", "first_round", "off"),
        default="full",
        help="simulator outbox-validation mode (native backend only)",
    )
    sub.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject seeded faults, e.g. "
        "'drop=0.01,dup=0.001,crash=3@rounds:10-20'; retry overhead is "
        "charged under the faults/ ledger category",
    )
    sub.add_argument(
        "--recovery", choices=("fail-fast", "self-heal"),
        default="fail-fast",
        help="fail-fast: crash windows that defeat delivery raise "
        "(default); self-heal: detect crashes, wait out / route around "
        "them, charging the recovery/ ledger category",
    )
    sub.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="snapshot the run's full state here after the build phase; "
        "continue it later with 'repro run --resume PATH'",
    )
    sub.add_argument(
        "--workers", type=int, default=1,
        help="message-delivery shards for the native simulator; results "
        "and round accounting are identical at any worker count",
    )
    sub.add_argument(
        "--cache", metavar="MODE", default="off",
        help="content-addressed hierarchy cache: 'off' (default), "
        "'auto' ($REPRO_CACHE_DIR or the XDG cache dir), or a "
        "directory path; a hit skips the build phase",
    )


def _make_config(args) -> RunConfig:
    """One RunConfig per command invocation, built from the flags."""
    return RunConfig(
        seed=args.seed,
        backend=args.backend,
        validate=args.validate,
        trace=getattr(args, "trace", None),
        faults=getattr(args, "faults", None),
        recovery=getattr(args, "recovery", "fail-fast"),
        checkpoint=getattr(args, "checkpoint", None),
        workers=getattr(args, "workers", 1),
        cache=getattr(args, "cache", "off"),
    )


def _finish(outcome: RunOutcome, args) -> None:
    """Shared epilogue: fault accounting and trace-file notice."""
    if outcome.config.faults is not None:
        print(f"fault rounds {outcome.fault_rounds():,.0f}")
    if outcome.config.recovery == "self-heal":
        print(f"recovery     {outcome.recovery_rounds():,.0f} rounds")
    if getattr(args, "trace", None):
        print(f"trace        {args.trace}")
    if getattr(args, "checkpoint", None):
        print(f"checkpoint   {args.checkpoint}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed MST and routing in almost mixing time "
            "(Ghaffari-Kuhn-Su, PODC 2017) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a graph to JSON")
    generate.add_argument("family", choices=sorted(FAMILIES))
    generate.add_argument("n", type=int)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--weighted", action="store_true",
        help="attach i.i.d. uniform edge weights",
    )

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph")

    route = sub.add_parser("route", help="route a random demand")
    route.add_argument("graph")
    route.add_argument(
        "--packets", type=int, default=0,
        help="number of packets (default: one per node, a permutation)",
    )
    _add_runtime_flags(route)

    mst = sub.add_parser("mst", help="distributed MST")
    mst.add_argument("graph")
    _add_runtime_flags(mst)

    mincut = sub.add_parser("mincut", help="approximate minimum cut")
    mincut.add_argument("graph")
    mincut.add_argument("--trees", type=int, default=None)
    mincut.add_argument("--eps", type=float, default=0.5)
    _add_runtime_flags(mincut)

    clique = sub.add_parser("clique", help="emulate a congested-clique round")
    clique.add_argument("graph")
    clique.add_argument("--sample", type=float, default=1.0)
    _add_runtime_flags(clique)

    run_cmd = sub.add_parser(
        "run", help="continue a checkpointed run to completion"
    )
    run_cmd.add_argument(
        "--resume", metavar="PATH", required=True,
        help="checkpoint file written by a --checkpoint run",
    )
    run_cmd.add_argument(
        "--trace", metavar="OUT.JSONL", default=None,
        help="write the resumed run's full trace (pre-snapshot events "
        "are replayed into it first) to this file",
    )

    serve = sub.add_parser(
        "serve",
        help="open a warm session and answer JSONL requests",
    )
    serve.add_argument("graph")
    serve.add_argument(
        "--requests", metavar="IN.JSONL", default="-",
        help="JSONL request file ('-' = stdin); each line is "
        '{"op": ..., "args": {...}, "id": ...} or '
        '{"update": {"edges_added": [...], "edges_removed": [...], '
        '"nodes_down": [...]}}',
    )
    serve.add_argument(
        "-o", "--output", metavar="OUT.JSONL", default="-",
        help="JSONL response file ('-' = stdout); one response per "
        "request with per-request rounds and wall latency",
    )
    serve.add_argument(
        "--batch", type=int, default=0,
        help="group up to N consecutive explicit-demand route requests "
        "into one routing instance (batched admission; default off)",
    )
    serve.add_argument(
        "--deadline-rounds", type=float, default=None,
        help="per-request delivery-round budget; exceeding it yields a "
        "structured deadline_exceeded error record",
    )
    serve.add_argument(
        "--deadline-wall", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock budget in seconds "
        "(machine-dependent; never gated)",
    )
    serve.add_argument(
        "--retry-budget", type=int, default=0,
        help="retries (with exponential backoff) for DeliveryTimeout-"
        "recoverable requests before the error record is emitted",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=0,
        help="admission bound: requests arriving while this many are "
        "in flight are shed with a structured record (0 = unlimited)",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=0,
        help="consecutive failures that trip the circuit breaker "
        "(fast-fail circuit_open records while repair completes)",
    )
    serve.add_argument(
        "--journal", metavar="PATH", default=None,
        help="crash-safe write-ahead journal: applied updates and the "
        "served high-water mark are fsync'd here so --recover can "
        "rebuild the session after a crash",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="recover from --journal: warm snapshot + deterministic "
        "update replay, then serve the remaining (unserved) records",
    )
    _add_runtime_flags(serve)

    bench = sub.add_parser(
        "bench",
        help="run benchmark suites from the registry / gate them "
        "against committed baselines",
    )
    bench.add_argument(
        "suites", nargs="*", metavar="SUITE",
        help="registry suites to run (default: all; see --list)",
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_suites",
        help="list the registered suites and exit",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="run each suite's quick tier and gate it against the "
        "committed benchmarks/results/<suite>.quick.json baseline; "
        "exit 1 on any regression",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="run the small quick-tier sizes and write the "
        "<suite>.quick.json baseline instead of <suite>.json",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the record here instead of the results directory "
        "(single suite only)",
    )
    bench.add_argument(
        "--results", metavar="DIR", default=None,
        help="baseline/results directory "
        "(default: benchmarks/results under the cwd)",
    )

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    return parser


def _cmd_generate(args) -> int:
    context = RunContext(seed=args.seed)
    rng = context.stream("generate")
    graph = FAMILIES[args.family](args.n, rng)
    if args.weighted:
        graph = with_random_weights(graph, context.stream("weights"))
    save_graph(graph, args.output)
    print(f"wrote {args.output}: {graph!r}")
    return 0


def _cmd_info(args) -> int:
    graph = load_graph(args.graph)
    print(f"{graph!r}")
    print(f"max degree        {graph.max_degree}")
    print(f"connected         {graph.is_connected()}")
    if graph.is_connected():
        gap = spectral_gap(graph)
        print(f"lazy spectral gap {gap:.5f}")
        print(f"tau_mix estimate  {estimate_mixing_time(graph)}")
        if graph.num_nodes <= 512:
            print(f"diameter          {graph.diameter()}")
    if isinstance(graph, WeightedGraph):
        print(
            f"weights           [{graph.weights.min():.4f}, "
            f"{graph.weights.max():.4f}]"
        )
    return 0


def _cmd_route(args) -> int:
    graph = load_graph(args.graph)
    outcome = run(
        "route",
        graph,
        config=_make_config(args),
        packets=args.packets if args.packets > 0 else None,
    )
    result = outcome.result
    hierarchy = outcome.backend.hierarchy
    print(f"tau_mix      {hierarchy.g0.tau_mix}")
    print(f"beta/depth   {hierarchy.beta}/{hierarchy.depth}")
    print(f"packets      {result.num_packets}")
    print(f"phases       {result.num_phases}")
    print(f"delivered    {result.delivered}")
    print(f"rounds       {result.cost_rounds:,.0f}")
    print(
        f"rounds/tau   {result.cost_rounds / hierarchy.g0.tau_mix:,.1f}"
    )
    _finish(outcome, args)
    return 0 if result.delivered else 1


def _cmd_mst(args) -> int:
    graph = load_graph(args.graph)
    if not isinstance(graph, WeightedGraph):
        print("graph has no weights; attaching i.i.d. uniform weights")
        # Same "weights" stream run("mst") would use, materialized here
        # so the Kruskal cross-check below sees the same weights.
        graph = with_random_weights(
            graph, RunContext(seed=args.seed).stream("weights")
        )
    outcome = run("mst", graph, config=_make_config(args))
    result = outcome.result
    matches = result.edge_ids == kruskal(graph)
    print(f"mst weight   {result.total_weight:.6f}")
    print(f"iterations   {result.num_iterations}")
    print(f"rounds       {result.rounds:,.0f}")
    print(f"construction {result.construction_rounds:,.0f}")
    print(f"verified     {matches} (vs centralized Kruskal)")
    _finish(outcome, args)
    return 0 if matches else 1


def _cmd_run(args) -> int:
    from .runtime.checkpoint import resume

    outcome = resume(args.resume, sink=args.trace)
    print(f"resumed      {args.resume}")
    print(f"op           {outcome.op}")
    print(f"seed         {outcome.config.seed}")
    print(f"backend      {outcome.config.backend}")
    print(f"rounds       {outcome.ledger.total():,.0f}")
    if outcome.config.faults is not None:
        print(f"fault rounds {outcome.fault_rounds():,.0f}")
    if outcome.config.recovery == "self-heal":
        print(f"recovery     {outcome.recovery_rounds():,.0f} rounds")
    if args.trace:
        print(f"trace        {args.trace}")
    delivered = getattr(outcome.result, "delivered", True)
    return 0 if delivered else 1


def _cmd_report(args) -> int:
    report = build_report()
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


def _cmd_mincut(args) -> int:
    graph = load_graph(args.graph)
    outcome = run(
        "mincut",
        graph,
        config=_make_config(args),
        eps=args.eps,
        num_trees=args.trees,
        two_respecting=graph.num_nodes <= 256,
    )
    result = outcome.result
    side = int(result.cut_side.sum())
    print(f"cut value    {result.cut_value}")
    print(f"side sizes   {side} / {graph.num_nodes - side}")
    print(f"trees packed {result.num_trees}")
    print(f"rounds       {result.rounds:,.0f}")
    _finish(outcome, args)
    return 0


def _cmd_clique(args) -> int:
    graph = load_graph(args.graph)
    outcome = run(
        "clique",
        graph,
        config=_make_config(args),
        sample_fraction=args.sample,
    )
    result = outcome.result
    print(f"messages     {result.num_messages}")
    print(f"phases       {result.num_phases}")
    print(f"delivered    {result.delivered}")
    print(f"rounds       {result.rounds:,.0f}")
    _finish(outcome, args)
    return 0 if result.delivered else 1


def _serve_policy(args) -> "ResiliencePolicy | None":
    """A ResiliencePolicy from the serve flags, or None if all unset."""
    policy = ResiliencePolicy(
        deadline_rounds=args.deadline_rounds,
        deadline_wall_s=args.deadline_wall,
        retry_budget=args.retry_budget,
        max_inflight=args.max_inflight,
        breaker_failures=args.breaker_failures,
    )
    return None if policy.is_null else policy


def _cmd_serve(args) -> int:
    import json

    graph = load_graph(args.graph)
    config = _make_config(args)
    policy = _serve_policy(args)
    if args.recover and args.journal is None:
        raise ValueError("--recover needs --journal PATH")

    def records(handle, skip: int):
        # The journal's record mark counts *parsed* records consumed by
        # serve_jsonl, so only non-blank lines may count against the
        # resume skip — blank input lines must not shift the point.
        parsed = 0
        for line in handle:
            line = line.strip()
            if not line:
                continue
            parsed += 1
            if parsed > skip:
                yield json.loads(line)

    in_handle = (
        sys.stdin if args.requests == "-" else open(args.requests)
    )
    out_handle = (
        sys.stdout if args.output == "-" else open(args.output, "w")
    )
    served = 0
    skip = 0
    try:
        if args.recover:
            session = Session.recover(
                graph, config, journal=args.journal, policy=policy
            )
            assert session.journal is not None
            skip = session.journal.record_mark
            print(
                f"recovered: replayed {session.updates_applied} "
                f"update(s), resuming at record {skip}",
                file=sys.stderr,
            )
        else:
            session = Session.open(
                graph, config, policy=policy, journal=args.journal
            )
        with session:
            print(
                f"session ready: n={graph.num_nodes} "
                f"backend={config.backend} "
                f"cached={session.from_cache}",
                file=sys.stderr,
            )
            for response in serve_jsonl(
                session, records(in_handle, skip), batch=args.batch
            ):
                out_handle.write(json.dumps(response) + "\n")
                out_handle.flush()
                served += 1
    finally:
        if in_handle is not sys.stdin:
            in_handle.close()
        if out_handle is not sys.stdout:
            out_handle.close()
    print(f"served {served} response(s)", file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    import os

    from .bench import (
        SUITES,
        baseline_path,
        check_suite,
        default_results_dir,
        run_suite,
        write_record,
    )

    if args.list_suites:
        width = max(len(name) for name in SUITES)
        for name in sorted(SUITES):
            print(f"{name:<{width}}  {SUITES[name].title}")
        return 0

    names = args.suites or sorted(SUITES)
    for name in names:
        if name not in SUITES:
            raise ValueError(
                f"unknown bench suite {name!r}; choose from "
                f"{tuple(sorted(SUITES))}"
            )
    if args.out is not None and len(names) != 1:
        raise ValueError("--out needs exactly one SUITE")

    if args.check:
        failed = False
        for name in names:
            result = check_suite(
                name, seed=args.seed, results_dir=args.results
            )
            print(result.describe())
            failed = failed or not result.ok
        return 1 if failed else 0

    results_dir = (
        args.results
        if args.results is not None
        else default_results_dir()
    )
    for name in names:
        record = run_suite(name, seed=args.seed, quick=args.quick)
        path = args.out or baseline_path(
            name, quick=args.quick, results_dir=results_dir
        )
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        write_record(record, path)
        tier = "quick" if args.quick else "full"
        print(
            f"{name}: wrote {len(record['rows'])} rows ({tier} tier) "
            f"to {path}"
        )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "route": _cmd_route,
    "mst": _cmd_mst,
    "mincut": _cmd_mincut,
    "clique": _cmd_clique,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (UnsupportedOnBackend, ValueError, CheckpointError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except DeliveryTimeout as error:
        print(f"delivery failed: {error}", file=sys.stderr)
        for node, target, attempts in error.culprits[:8]:
            print(
                f"  exhausted: {node}->{target} after "
                f"{attempts} attempt(s)",
                file=sys.stderr,
            )
        return 3


if __name__ == "__main__":
    sys.exit(main())
