"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a graph from a named family to JSON.
* ``info`` — print a graph's size, expansion, and mixing statistics.
* ``route`` — build the routing structure and route a random demand.
* ``mst`` — run the distributed MST (random weights if none stored).
* ``report`` — regenerate EXPERIMENTS.md from live runs.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.report import build_report
from .baselines import kruskal
from .core import (
    MstRunner,
    Router,
    approximate_min_cut,
    build_hierarchy,
    emulate_clique,
)
from .graphs import (
    FAMILIES,
    WeightedGraph,
    load_graph,
    save_graph,
    spectral_gap,
    with_random_weights,
)
from .params import Params
from .walks import estimate_mixing_time

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed MST and routing in almost mixing time "
            "(Ghaffari-Kuhn-Su, PODC 2017) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a graph to JSON")
    generate.add_argument("family", choices=sorted(FAMILIES))
    generate.add_argument("n", type=int)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--weighted", action="store_true",
        help="attach i.i.d. uniform edge weights",
    )

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph")

    route = sub.add_parser("route", help="route a random demand")
    route.add_argument("graph")
    route.add_argument("--seed", type=int, default=0)
    route.add_argument(
        "--packets", type=int, default=0,
        help="number of packets (default: one per node, a permutation)",
    )

    mst = sub.add_parser("mst", help="distributed MST")
    mst.add_argument("graph")
    mst.add_argument("--seed", type=int, default=0)

    mincut = sub.add_parser("mincut", help="approximate minimum cut")
    mincut.add_argument("graph")
    mincut.add_argument("--seed", type=int, default=0)
    mincut.add_argument("--trees", type=int, default=None)
    mincut.add_argument("--eps", type=float, default=0.5)

    clique = sub.add_parser("clique", help="emulate a congested-clique round")
    clique.add_argument("graph")
    clique.add_argument("--seed", type=int, default=0)
    clique.add_argument("--sample", type=float, default=1.0)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    return parser


def _cmd_generate(args) -> int:
    rng = np.random.default_rng(args.seed)
    graph = FAMILIES[args.family](args.n, rng)
    if args.weighted:
        graph = with_random_weights(graph, rng)
    save_graph(graph, args.output)
    print(f"wrote {args.output}: {graph!r}")
    return 0


def _cmd_info(args) -> int:
    graph = load_graph(args.graph)
    print(f"{graph!r}")
    print(f"max degree        {graph.max_degree}")
    print(f"connected         {graph.is_connected()}")
    if graph.is_connected():
        gap = spectral_gap(graph)
        print(f"lazy spectral gap {gap:.5f}")
        print(f"tau_mix estimate  {estimate_mixing_time(graph)}")
        if graph.num_nodes <= 512:
            print(f"diameter          {graph.diameter()}")
    if isinstance(graph, WeightedGraph):
        print(
            f"weights           [{graph.weights.min():.4f}, "
            f"{graph.weights.max():.4f}]"
        )
    return 0


def _cmd_route(args) -> int:
    graph = load_graph(args.graph)
    rng = np.random.default_rng(args.seed)
    params = Params.default()
    hierarchy = build_hierarchy(graph, params, rng)
    router = Router(hierarchy, params=params, rng=rng)
    n = graph.num_nodes
    if args.packets > 0:
        sources = rng.integers(0, n, size=args.packets)
        destinations = rng.integers(0, n, size=args.packets)
    else:
        sources = np.arange(n)
        destinations = rng.permutation(n)
    result = router.route(sources, destinations)
    print(f"tau_mix      {hierarchy.g0.tau_mix}")
    print(f"beta/depth   {hierarchy.beta}/{hierarchy.depth}")
    print(f"packets      {result.num_packets}")
    print(f"phases       {result.num_phases}")
    print(f"delivered    {result.delivered}")
    print(f"rounds       {result.cost_rounds:,.0f}")
    print(f"rounds/tau   {result.cost_rounds / hierarchy.g0.tau_mix:,.1f}")
    return 0 if result.delivered else 1


def _cmd_mst(args) -> int:
    graph = load_graph(args.graph)
    rng = np.random.default_rng(args.seed)
    if not isinstance(graph, WeightedGraph):
        print("graph has no weights; attaching i.i.d. uniform weights")
        graph = with_random_weights(graph, rng)
    params = Params.default()
    runner = MstRunner(graph, params=params, rng=rng)
    result = runner.run()
    matches = result.edge_ids == kruskal(graph)
    print(f"mst weight   {result.total_weight:.6f}")
    print(f"iterations   {result.num_iterations}")
    print(f"rounds       {result.rounds:,.0f}")
    print(f"construction {result.construction_rounds:,.0f}")
    print(f"verified     {matches} (vs centralized Kruskal)")
    return 0 if matches else 1


def _cmd_report(args) -> int:
    report = build_report()
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


def _cmd_mincut(args) -> int:
    graph = load_graph(args.graph)
    rng = np.random.default_rng(args.seed)
    result = approximate_min_cut(
        graph,
        eps=args.eps,
        params=Params.default(),
        rng=rng,
        num_trees=args.trees,
        two_respecting=graph.num_nodes <= 256,
    )
    side = int(result.cut_side.sum())
    print(f"cut value    {result.cut_value}")
    print(f"side sizes   {side} / {graph.num_nodes - side}")
    print(f"trees packed {result.num_trees}")
    print(f"rounds       {result.rounds:,.0f}")
    return 0


def _cmd_clique(args) -> int:
    graph = load_graph(args.graph)
    rng = np.random.default_rng(args.seed)
    params = Params.default()
    hierarchy = build_hierarchy(graph, params, rng)
    result = emulate_clique(
        hierarchy, params, rng, sample_fraction=args.sample
    )
    print(f"messages     {result.num_messages}")
    print(f"phases       {result.num_phases}")
    print(f"delivered    {result.delivered}")
    print(f"rounds       {result.rounds:,.0f}")
    return 0 if result.delivered else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "route": _cmd_route,
    "mst": _cmd_mst,
    "mincut": _cmd_mincut,
    "clique": _cmd_clique,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
