"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write a graph from a named family to JSON.
* ``info`` — print a graph's size, expansion, and mixing statistics.
* ``route`` — build the routing structure and route a random demand.
* ``mst`` — run the distributed MST (random weights if none stored).
* ``report`` — regenerate EXPERIMENTS.md from live runs.

Pipeline commands (``route``/``mst``/``mincut``/``clique``) execute
through a :class:`~repro.runtime.RunContext` and accept:

* ``--backend {oracle,native}`` — vectorized engines vs. real message
  passing (native covers build + routing; elsewhere it exits with a
  clear error).
* ``--trace out.jsonl`` — write the structured trace-event stream.
* ``--validate {full,first_round,off}`` — simulator outbox validation
  for the native backend.

Every random decision draws from a *named* stream of the context, so
e.g. ``--packets`` changes only the ``"workload"`` stream and never
perturbs the routing structure itself.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

import numpy as np

from .analysis.report import build_report
from .baselines import kruskal
from .graphs import (
    FAMILIES,
    WeightedGraph,
    load_graph,
    save_graph,
    spectral_gap,
    with_random_weights,
)
from .runtime import (
    JsonlSink,
    RunContext,
    UnsupportedOnBackend,
    make_backend,
)
from .walks import estimate_mixing_time

__all__ = ["main"]


def _add_runtime_flags(sub: argparse.ArgumentParser) -> None:
    """Flags shared by every command that executes the pipeline."""
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--backend", choices=("oracle", "native"), default="oracle",
        help="oracle: vectorized engines (default); native: walk batches "
        "executed as real CONGEST message passing",
    )
    sub.add_argument(
        "--trace", metavar="OUT.JSONL", default=None,
        help="write structured trace events (JSONL) to this file",
    )
    sub.add_argument(
        "--validate", choices=("full", "first_round", "off"),
        default="full",
        help="simulator outbox-validation mode (native backend only)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed MST and routing in almost mixing time "
            "(Ghaffari-Kuhn-Su, PODC 2017) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a graph to JSON")
    generate.add_argument("family", choices=sorted(FAMILIES))
    generate.add_argument("n", type=int)
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--weighted", action="store_true",
        help="attach i.i.d. uniform edge weights",
    )

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph")

    route = sub.add_parser("route", help="route a random demand")
    route.add_argument("graph")
    route.add_argument(
        "--packets", type=int, default=0,
        help="number of packets (default: one per node, a permutation)",
    )
    _add_runtime_flags(route)

    mst = sub.add_parser("mst", help="distributed MST")
    mst.add_argument("graph")
    _add_runtime_flags(mst)

    mincut = sub.add_parser("mincut", help="approximate minimum cut")
    mincut.add_argument("graph")
    mincut.add_argument("--trees", type=int, default=None)
    mincut.add_argument("--eps", type=float, default=0.5)
    _add_runtime_flags(mincut)

    clique = sub.add_parser("clique", help="emulate a congested-clique round")
    clique.add_argument("graph")
    clique.add_argument("--sample", type=float, default=1.0)
    _add_runtime_flags(clique)

    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    return parser


@contextmanager
def _run_context(args):
    """A RunContext for one command, with run_start/run_end bracketing."""
    sink = JsonlSink(args.trace) if getattr(args, "trace", None) else None
    context = RunContext(seed=args.seed, sink=sink)
    context.emit(
        "run_start",
        args.command,
        seed=context.seed,
        backend=getattr(args, "backend", "oracle"),
    )
    try:
        yield context
    finally:
        context.emit(
            "run_end",
            args.command,
            total_rounds=float(context.ledger.total()),
        )
        context.close()
        if getattr(args, "trace", None):
            print(f"trace        {args.trace}")


def _cmd_generate(args) -> int:
    context = RunContext(seed=args.seed)
    rng = context.stream("generate")
    graph = FAMILIES[args.family](args.n, rng)
    if args.weighted:
        graph = with_random_weights(graph, context.stream("weights"))
    save_graph(graph, args.output)
    print(f"wrote {args.output}: {graph!r}")
    return 0


def _cmd_info(args) -> int:
    graph = load_graph(args.graph)
    print(f"{graph!r}")
    print(f"max degree        {graph.max_degree}")
    print(f"connected         {graph.is_connected()}")
    if graph.is_connected():
        gap = spectral_gap(graph)
        print(f"lazy spectral gap {gap:.5f}")
        print(f"tau_mix estimate  {estimate_mixing_time(graph)}")
        if graph.num_nodes <= 512:
            print(f"diameter          {graph.diameter()}")
    if isinstance(graph, WeightedGraph):
        print(
            f"weights           [{graph.weights.min():.4f}, "
            f"{graph.weights.max():.4f}]"
        )
    return 0


def _cmd_route(args) -> int:
    graph = load_graph(args.graph)
    with _run_context(args) as context:
        backend = make_backend(
            args.backend, graph, context, validate=args.validate
        )
        hierarchy = backend.build()
        n = graph.num_nodes
        # The demand comes from its own stream: changing --packets can
        # never perturb the routing structure built above.
        workload = context.stream("workload")
        if args.packets > 0:
            sources = workload.integers(0, n, size=args.packets)
            destinations = workload.integers(0, n, size=args.packets)
        else:
            sources = np.arange(n)
            destinations = workload.permutation(n)
        result = backend.route(sources, destinations)
        print(f"tau_mix      {hierarchy.g0.tau_mix}")
        print(f"beta/depth   {hierarchy.beta}/{hierarchy.depth}")
        print(f"packets      {result.num_packets}")
        print(f"phases       {result.num_phases}")
        print(f"delivered    {result.delivered}")
        print(f"rounds       {result.cost_rounds:,.0f}")
        print(
            f"rounds/tau   {result.cost_rounds / hierarchy.g0.tau_mix:,.1f}"
        )
    return 0 if result.delivered else 1


def _cmd_mst(args) -> int:
    graph = load_graph(args.graph)
    with _run_context(args) as context:
        if not isinstance(graph, WeightedGraph):
            print("graph has no weights; attaching i.i.d. uniform weights")
            graph = with_random_weights(graph, context.stream("weights"))
        backend = make_backend(
            args.backend, graph, context, validate=args.validate
        )
        result = backend.mst(graph)
        matches = result.edge_ids == kruskal(graph)
        print(f"mst weight   {result.total_weight:.6f}")
        print(f"iterations   {result.num_iterations}")
        print(f"rounds       {result.rounds:,.0f}")
        print(f"construction {result.construction_rounds:,.0f}")
        print(f"verified     {matches} (vs centralized Kruskal)")
    return 0 if matches else 1


def _cmd_report(args) -> int:
    report = build_report()
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")
    return 0


def _cmd_mincut(args) -> int:
    graph = load_graph(args.graph)
    with _run_context(args) as context:
        backend = make_backend(
            args.backend, graph, context, validate=args.validate
        )
        result = backend.min_cut(
            eps=args.eps,
            num_trees=args.trees,
            two_respecting=graph.num_nodes <= 256,
        )
        side = int(result.cut_side.sum())
        print(f"cut value    {result.cut_value}")
        print(f"side sizes   {side} / {graph.num_nodes - side}")
        print(f"trees packed {result.num_trees}")
        print(f"rounds       {result.rounds:,.0f}")
    return 0


def _cmd_clique(args) -> int:
    graph = load_graph(args.graph)
    with _run_context(args) as context:
        backend = make_backend(
            args.backend, graph, context, validate=args.validate
        )
        result = backend.clique(sample_fraction=args.sample)
        print(f"messages     {result.num_messages}")
        print(f"phases       {result.num_phases}")
        print(f"delivered    {result.delivered}")
        print(f"rounds       {result.rounds:,.0f}")
    return 0 if result.delivered else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "route": _cmd_route,
    "mst": _cmd_mst,
    "mincut": _cmd_mincut,
    "clique": _cmd_clique,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except UnsupportedOnBackend as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
