"""Baseline gating: accept today's findings, fail on tomorrow's.

Adopting a new rule over a mature tree surfaces historical findings that
are understood and deliberately deferred; gating CI on "zero findings"
would force either a big-bang fix or disabling the rule.  The baseline
is the third option: a committed ledger of *accepted* findings, so the
gate becomes "no finding that is not in the baseline" — new code is held
to the full rule set while the backlog shrinks on its own schedule.

Findings are keyed by a **structural fingerprint**, not ``(path,
line)``: SHA-256 over the rule id, the file's repo-relative path, the
enclosing ``Class.method`` scope, and the stripped source line, plus an
occurrence index for identical lines in one scope.  Editing an unrelated
part of the file moves line numbers but not fingerprints, so the
baseline does not churn on drift; editing the offending line itself
invalidates its entry — which is exactly when a human should re-look.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path, PurePath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .engine import Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint_findings",
    "load_baseline",
    "partition_findings",
    "write_baseline",
]

BASELINE_VERSION = 1


def _relative_path(path: str, root: Optional[Path]) -> str:
    """``path`` relative to ``root`` when possible, POSIX separators."""
    pure = Path(path)
    if root is not None:
        try:
            pure = pure.resolve().relative_to(Path(root).resolve())
        except ValueError:
            pass
    return PurePath(pure).as_posix()


def fingerprint_findings(
    findings: Sequence[Finding], root: Optional[Path] = None
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its structural fingerprint.

    Duplicate (rule, path, scope, snippet) keys — e.g. two identical
    offending lines in one function — are disambiguated by occurrence
    index, in source order, so the k-th duplicate keeps its identity as
    long as the earlier ones survive.
    """
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    seen: Dict[str, int] = {}
    pairs: List[Tuple[Finding, str]] = []
    by_identity = {id(f): None for f in findings}
    for finding in ordered:
        rel = _relative_path(finding.path, root)
        base = "|".join(
            (finding.rule, rel, finding.scope, finding.snippet)
        )
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        digest = hashlib.sha256(
            f"{base}|{occurrence}".encode("utf-8")
        ).hexdigest()[:24]
        by_identity[id(finding)] = digest
    for finding in findings:
        pairs.append((finding, by_identity[id(finding)]))
    return pairs


def load_baseline(path: Path) -> Dict[str, dict]:
    """Fingerprint -> baseline entry; {} for a missing file.

    Raises ``ValueError`` on a malformed or wrong-version file — a
    silently ignored baseline would un-gate CI.
    """
    path = Path(path)
    if not path.is_file():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed baseline {path}: {error}") from error
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(
            f"baseline {path} has no 'findings' key — regenerate it "
            "with --update-baseline"
        )
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}, expected "
            f"{BASELINE_VERSION} — regenerate it with --update-baseline"
        )
    table: Dict[str, dict] = {}
    for entry in data["findings"]:
        table[entry["fingerprint"]] = entry
    return table


def partition_findings(
    findings: Sequence[Finding],
    baseline: Dict[str, dict],
    root: Optional[Path] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Split into ``(new, baselined)`` against the accepted set."""
    new: List[Finding] = []
    accepted: List[Finding] = []
    for finding, digest in fingerprint_findings(findings, root):
        if digest in baseline:
            accepted.append(finding)
        else:
            new.append(finding)
    return new, accepted


def write_baseline(
    path: Path,
    findings: Iterable[Finding],
    root: Optional[Path] = None,
) -> int:
    """Write the baseline file for ``findings``; returns the count.

    Entries carry the human-readable context (rule, path, scope,
    snippet, message) alongside the fingerprint so a reviewer can audit
    the accepted set without re-running the linter.
    """
    entries = []
    for finding, digest in fingerprint_findings(list(findings), root):
        entries.append(
            {
                "fingerprint": digest,
                "rule": finding.rule,
                "path": _relative_path(finding.path, root),
                "scope": finding.scope,
                "snippet": finding.snippet,
                "message": finding.message,
            }
        )
    entries.sort(key=lambda e: (e["path"], e["rule"], e["fingerprint"]))
    payload = {
        "version": BASELINE_VERSION,
        "tool": "reprolint",
        "findings": entries,
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def finding_fingerprint(
    finding: Finding, root: Optional[Path] = None
) -> str:
    """Fingerprint of a single finding (occurrence index 0)."""
    return fingerprint_findings([finding], root)[0][1]


def replace_path(finding: Finding, path: str) -> Finding:
    """A copy of ``finding`` with ``path`` swapped (for reporting)."""
    return dataclasses.replace(finding, path=path)
