"""``reprolint`` — static analysis for the repo's reproducibility contract.

The paper's guarantees hold only under the CONGEST model (one
``O(log n)``-bit message per edge per round) and our experiments are
reproducible only if every random choice flows through a seeded
generator.  The runtime simulator (:mod:`repro.congest.network`) enforces
the first constraint for code that runs through it; this package checks
both constraints *statically*, over the whole tree, so the ledger-based
fast paths (``core/``, ``walks/``) are covered too.

Usage::

    python -m repro.lint src/repro tests
    reprolint --format=json src/repro

Findings can be suppressed per line with ``# reprolint: disable=R001``
(comma-separated rule ids, or ``all``).  See ``docs/linting.md`` for the
rule catalogue.
"""

from .engine import Finding, LintModule, Rule, lint_paths, lint_source
from .rules import RULES, get_rules

__all__ = [
    "Finding",
    "LintModule",
    "Rule",
    "RULES",
    "get_rules",
    "lint_paths",
    "lint_source",
]
