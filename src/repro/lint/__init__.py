"""``reprolint`` — static analysis for the repo's reproducibility contract.

The paper's guarantees hold only under the CONGEST model (one
``O(log n)``-bit message per edge per round) and our experiments are
reproducible only if every random choice flows through a seeded
generator.  The runtime simulator (:mod:`repro.congest.network`) enforces
the first constraint for code that runs through it; this package checks
both constraints *statically*, over the whole tree, so the ledger-based
fast paths (``core/``, ``walks/``) are covered too.

Two layers of analysis:

* per-file rules (R001–R008) judge one module's AST at a time;
* whole-program rules (R009–R012, :mod:`.program`) build a project-wide
  symbol table and call graph, then check interprocedural contracts —
  ledger coverage, RNG provenance, message-size flow, and internal use
  of deprecated shims.

Usage::

    python -m repro.lint src/repro tests
    python -m repro.lint --format=sarif src/repro
    python -m repro.lint --update-baseline

Findings can be suppressed per line with ``# reprolint: disable=R001``
(comma-separated rule ids, or ``all``), or accepted wholesale in the
committed ``.reprolint-baseline.json`` (see :mod:`.baseline`).  See
``docs/linting.md`` for the rule catalogue and the baseline workflow.
"""

from .baseline import (
    fingerprint_findings,
    load_baseline,
    partition_findings,
    write_baseline,
)
from .cache import LintCache
from .engine import Finding, LintModule, Rule, lint_paths, lint_source
from .program import Program, ProgramRule, build_program, lint_program
from .program_rules import PROGRAM_RULES, get_program_rules
from .rules import RULES, get_rules

__all__ = [
    "Finding",
    "LintModule",
    "LintCache",
    "Program",
    "ProgramRule",
    "PROGRAM_RULES",
    "RULES",
    "Rule",
    "build_program",
    "fingerprint_findings",
    "get_program_rules",
    "get_rules",
    "lint_paths",
    "lint_program",
    "lint_source",
    "load_baseline",
    "partition_findings",
    "write_baseline",
]
