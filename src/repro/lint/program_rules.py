"""Interprocedural ``reprolint`` rules (R009–R012).

These rules run on the :class:`~repro.lint.program.Program` call graph
rather than one file at a time, because the contracts they enforce only
exist across call boundaries:

* **R009** — every executed CONGEST round is charged to the ledger (or
  its count is handed to the caller), on every call chain;
* **R010** — every generator handed to an ``rng`` parameter traces back
  to :func:`repro.rng.derive_rng` / a ``RunContext`` stream, however
  many call layers it crosses;
* **R011** — statically over-wide payloads cannot sneak into a send by
  being built in a helper one call away;
* **R012** — library code never calls the deprecated ``repro.*`` shims
  it is itself the implementation of.

See ``docs/linting.md`` for the catalogue entries with the paper-level
rationale.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..congest.network import MESSAGE_WORD_LIMIT
from .engine import Finding, qualified_name
from .program import CallSite, FunctionInfo, Program, ProgramRule
from .rules import CongestModelRule

__all__ = [
    "PROGRAM_RULES",
    "get_program_rules",
    "register_program",
]

PROGRAM_RULES: Dict[str, ProgramRule] = {}

#: Directories whose code is scaffolding: fixtures there deliberately
#: violate contracts to test the enforcement machinery.
SCAFFOLD_DIRS = {"tests", "benchmarks", "examples"}

#: Generator-minting constructors (import-alias-expanded spellings).
RNG_MINTERS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: Parameter names that receive injected randomness.
RNG_PARAM_NAMES = {"rng", "random_state", "rng_factory"}

#: Parameter names that receive a CONGEST message payload.
PAYLOAD_PARAM_NAMES = {"payload", "message", "msg"}


def register_program(cls: type) -> type:
    """Class decorator: instantiate and register a program rule."""
    rule = cls()
    PROGRAM_RULES[rule.rule_id] = rule
    return cls


def get_program_rules(
    disable: Sequence[str] = (),
) -> List[ProgramRule]:
    disabled = {rule_id.upper() for rule_id in disable}
    return [
        rule for rule_id, rule in sorted(PROGRAM_RULES.items())
        if rule_id not in disabled
    ]


def _parts(path: str) -> Set[str]:
    return set(PurePath(path).parts)


def _is_scaffold(path: str) -> bool:
    return bool(SCAFFOLD_DIRS & _parts(path))


def _map_arguments(
    call: ast.Call, callee: FunctionInfo, bound: bool
) -> Iterator[Tuple[str, ast.AST]]:
    """Pair up ``call``'s arguments with ``callee``'s parameter names.

    ``bound`` drops the leading ``self``/``cls`` (method called on an
    instance, or a constructor resolved to ``__init__``).
    """
    params = callee.param_names()
    if bound and params and params[0] in ("self", "cls"):
        params = params[1:]
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            return
        if index < len(params):
            yield params[index], arg
    for keyword in call.keywords:
        if keyword.arg is not None:
            yield keyword.arg, keyword.value


def _assign_targets(node: ast.AST) -> List[str]:
    """Plain-name targets of an assignment (tuple unpacking included)."""
    names: List[str] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    else:
        return names
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    names.append(element.id)
                elif isinstance(element, ast.Starred) and isinstance(
                    element.value, ast.Name
                ):
                    names.append(element.value.id)
    return names


def _mentions(node: ast.AST, names: Set[str]) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in names:
            return True
    return False


@register_program
class LedgerCoverageRule(ProgramRule):
    """R009: rounds under ``congest/``/``core/``/``runtime/`` reach a charge.

    A function that *executes rounds* — calls ``Network.run`` (directly,
    or transitively through the call graph) or ``replay_walk_run`` —
    must account for them one of two ways: reach a
    ``RoundLedger.charge``/``RunContext.charge``/``absorb_ledger`` call
    (in itself or a transitive callee), or *export* the round count to
    its caller (the ``RunStats`` / rounds value flows into its return
    value, the pattern of the CONGEST primitives).  A function that does
    neither executes "free rounds": wall-clock work the paper's round
    accounting never sees, which would falsify the headline budgets.
    """

    rule_id = "R009"
    name = "ledger-coverage"
    description = (
        "congest/core/runtime function executes CONGEST rounds but "
        "neither charges a ledger nor returns the round count to its "
        "caller"
    )

    # ``slice_from`` is the session layer's accounting handoff: a
    # request handler that marks ``len(ctx.ledger)`` before running an
    # op and slices afterwards hands every executed round to the
    # per-request ledger view — same contract as charging directly.
    _CHARGE_ATTRS = {"charge", "absorb_ledger", "slice_from"}
    # simulate_walk_timing is the array engine's round executor: it plays
    # the queue/wire dynamics without a Network, so its rounds need the
    # same coverage as a simulator run.
    _RUN_EXECUTORS = ("replay_walk_run", "simulate_walk_timing")
    # Serving ops invoked on a backend execute rounds behind an attribute
    # call the call graph cannot resolve; treat them as round sites so
    # session request handlers owe the same accounting (they pay it by
    # slicing the run ledger per request — see _CHARGE_ATTRS).
    _SERVE_OP_ATTRS = {"route", "mst", "min_cut", "clique"}

    def check(self, program: Program) -> Iterator[Finding]:
        direct: Dict[str, List[CallSite]] = {
            qual: self._direct_round_sites(program, fn)
            for qual, fn in program.functions.items()
        }
        # Round-executing closure: seed with direct executors, walk the
        # caller edges so "calls something that runs rounds" counts.
        round_funcs: Set[str] = {
            qual for qual, sites in direct.items() if sites
        }
        frontier = list(round_funcs)
        while frontier:
            callee = frontier.pop()
            for caller, _site in program.callers.get(callee, ()):
                if caller not in round_funcs:
                    round_funcs.add(caller)
                    frontier.append(caller)

        charges_direct = {
            qual
            for qual, fn in program.functions.items()
            if self._charges_directly(program, qual)
        }

        def charges_somewhere(qual: str) -> bool:
            if qual in charges_direct:
                return True
            return bool(
                charges_direct & program.transitive_callees(qual)
            )

        for qual, fn in program.functions.items():
            parts = _parts(fn.module.path)
            if _is_scaffold(fn.module.path):
                continue
            if not ({"congest", "core", "runtime"} & parts):
                continue
            round_sites = direct[qual] + [
                site
                for site in program.calls.get(qual, ())
                if site.callee in round_funcs
                and not self._callee_is_accounted(
                    program, site.callee, charges_somewhere
                )
            ]
            if not round_sites:
                continue
            if charges_somewhere(qual):
                continue
            if self._exports_rounds(program, fn, round_funcs):
                continue
            for site in round_sites:
                yield self.finding(
                    fn.module, site.node,
                    f"{fn.name}() executes CONGEST rounds here but "
                    "neither charges a RoundLedger/RunContext nor "
                    "returns the round count — these rounds are "
                    "invisible to the paper's accounting (charge them, "
                    "return stats.rounds, or suppress citing the "
                    "charging site)",
                )

    # A callee that charges internally (or exports nothing because it
    # charges) discharges the caller's obligation for that site.
    @staticmethod
    def _callee_is_accounted(
        program: Program, callee: Optional[str], charges_somewhere
    ) -> bool:
        return callee is not None and charges_somewhere(callee)

    def _charges_directly(self, program: Program, qual: str) -> bool:
        for site in program.calls.get(qual, ()):
            if site.attr in self._CHARGE_ATTRS:
                return True
        return False

    def _direct_round_sites(
        self, program: Program, fn: FunctionInfo
    ) -> List[CallSite]:
        network_names = self._network_locals(program, fn)
        sites = []
        for site in program.calls.get(fn.qualname, ()):
            if self._is_direct_run(program, fn, site, network_names):
                sites.append(site)
        return sites

    def _is_direct_run(
        self,
        program: Program,
        fn: FunctionInfo,
        site: CallSite,
        network_names: Set[str],
    ) -> bool:
        if site.callee is not None:
            tail = site.callee.rsplit(".", 1)[-1]
            if tail in self._RUN_EXECUTORS:
                return True
            if site.callee.endswith(".Network.run"):
                return True
        if site.attr == "run" and site.receiver is not None:
            root = site.receiver.split(".")[-1]
            return root in network_names
        if site.attr in self._SERVE_OP_ATTRS and site.receiver is not None:
            return site.receiver.split(".")[-1] == "backend"
        # Op-table dispatch (`spec.runner(backend, ...)`): the runner
        # executes whichever backend op the request named.
        if site.attr == "runner":
            return True
        return False

    @staticmethod
    def _network_locals(
        program: Program, fn: FunctionInfo
    ) -> Set[str]:
        """Names in ``fn`` statically known to hold a ``Network``:
        parameters annotated ``Network``, variables assigned from a
        ``Network(...)`` constructor, and the conventional name
        ``network`` itself."""
        names = {"network"}
        args = fn.node.args
        for arg in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        ):
            if arg.annotation is not None:
                rendered = qualified_name(arg.annotation) or ""
                expanded = program.expand(fn.module, rendered)
                if expanded.rsplit(".", 1)[-1] == "Network":
                    names.add(arg.arg)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = qualified_name(node.value.func)
                if ctor is None:
                    continue
                expanded = program.expand(fn.module, ctor)
                if expanded.rsplit(".", 1)[-1] == "Network":
                    names.update(_assign_targets(node))
        return names

    def _exports_rounds(
        self,
        program: Program,
        fn: FunctionInfo,
        round_funcs: Set[str],
    ) -> bool:
        """True when a rounds-bearing value reaches a ``return``.

        Within-function taint: results of round-executing calls seed the
        tainted set; plain assignments propagate it; a return whose
        expression mentions a tainted name (or is itself a
        round-executing call) exports the count to the caller.
        """
        network_names = self._network_locals(program, fn)
        round_calls = [
            site.node
            for site in program.calls.get(fn.qualname, ())
            if self._is_direct_run(program, fn, site, network_names)
            or site.callee in round_funcs
        ]
        round_call_ids = {id(node) for node in round_calls}

        def contains_round_call(node: ast.AST) -> bool:
            return any(
                id(child) in round_call_ids for child in ast.walk(node)
            )

        tainted: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn.node):
                if not isinstance(
                    node, (ast.Assign, ast.AnnAssign, ast.AugAssign)
                ):
                    continue
                value = node.value
                if value is None:
                    continue
                if contains_round_call(value) or _mentions(
                    value, tainted
                ):
                    for name in _assign_targets(node):
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if contains_round_call(node.value) or _mentions(
                    node.value, tainted
                ):
                    return True
        return False


@register_program
class RngProvenanceRule(ProgramRule):
    """R010: generators crossing call boundaries trace to managed seeds.

    The interprocedural upgrade of R006: a generator minted locally with
    ``np.random.default_rng(...)`` / ``random.Random(...)`` and then
    *passed to another function's* ``rng``-like parameter has untracked
    provenance — two such sites can silently share (or fail to share) a
    stream, and the run's draws stop being attributable to named
    streams.  Every generator argument must come from
    :func:`repro.rng.derive_rng`, :func:`repro.rng.resolve_rng`, a
    ``RunContext.stream(...)``/``fresh_stream(...)`` call, or the
    caller's own ``rng`` parameter (whose provenance is checked at *its*
    call sites, all the way up the call graph).
    """

    rule_id = "R010"
    name = "rng-provenance"
    description = (
        "locally-minted RNG passed to another function's rng parameter "
        "— derive it via derive_rng/resolve_rng or a RunContext stream"
    )

    _EXEMPT_DIRS = SCAFFOLD_DIRS | {"runtime"}

    def check(self, program: Program) -> Iterator[Finding]:
        for qual, fn in program.functions.items():
            path = fn.module.path
            if self._EXEMPT_DIRS & _parts(path):
                continue
            pure = PurePath(path)
            if pure.name == "rng.py" and "repro" in pure.parts:
                continue
            yield from self._check_function(program, fn)

    def _check_function(
        self, program: Program, fn: FunctionInfo
    ) -> Iterator[Finding]:
        minted = self._minted_names(program, fn)
        for site in program.calls.get(fn.qualname, ()):
            callee = (
                program.functions.get(site.callee)
                if site.callee else None
            )
            if callee is None:
                continue
            bound = site.attr is not None or (
                callee.name == "__init__"
            )
            for param, arg in _map_arguments(site.node, callee, bound):
                if param not in RNG_PARAM_NAMES:
                    continue
                origin = self._mint_origin(program, fn, arg, minted)
                if origin is None:
                    continue
                target = site.callee.rsplit(".", 2)[-2:]
                yield self.finding(
                    fn.module, site.node,
                    f"generator minted via `{origin}` flows into "
                    f"`{'.'.join(target)}({param}=...)` — its stream "
                    "has no managed provenance; derive it with "
                    "repro.rng.derive_rng/resolve_rng or a "
                    "RunContext stream so every draw traces to a "
                    "named seed",
                )

    def _minted_names(
        self, program: Program, fn: FunctionInfo
    ) -> Dict[str, str]:
        """Local names bound to a raw RNG constructor result."""
        minted: Dict[str, str] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = self._minter_of(program, fn, node.value)
                if ctor is not None:
                    for name in _assign_targets(node):
                        minted[name] = ctor
        return minted

    @staticmethod
    def _minter_of(
        program: Program, fn: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        dotted = qualified_name(call.func)
        if dotted is None:
            return None
        expanded = program.expand(fn.module, dotted)
        return expanded if expanded in RNG_MINTERS else None

    def _mint_origin(
        self,
        program: Program,
        fn: FunctionInfo,
        arg: ast.AST,
        minted: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(arg, ast.Name):
            return minted.get(arg.id)
        if isinstance(arg, ast.Call):
            return self._minter_of(program, fn, arg)
        return None


@register_program
class MessageSizeFlowRule(ProgramRule):
    """R011: over-wide payloads caught across call boundaries.

    R002 sees a 6-word tuple built *inside* ``receive``; it cannot see
    one built by a helper and returned, or passed into a ``payload``
    parameter.  This rule propagates static tuple widths through the
    call graph: a call that passes a statically over-wide tuple to a
    ``payload``/``message`` parameter, or a NodeAlgorithm
    ``initialize``/``receive`` calling a helper whose return is
    statically wider than ``MESSAGE_WORD_LIMIT``, is flagged — the
    simulator would reject the send at runtime, but only on executed
    paths.
    """

    rule_id = "R011"
    name = "message-size-flow"
    description = (
        "payload wider than MESSAGE_WORD_LIMIT words flowing into a "
        "send across a call boundary"
    )

    _METHODS = {"initialize", "receive"}

    def check(self, program: Program) -> Iterator[Finding]:
        widths = self._return_widths(program)
        for qual, fn in program.functions.items():
            if _is_scaffold(fn.module.path):
                continue
            yield from self._check_payload_args(program, fn)
            if (
                fn.class_qualname
                and fn.name in self._METHODS
                and program.class_is(fn.class_qualname, "NodeAlgorithm")
            ):
                yield from self._check_helper_widths(
                    program, fn, widths
                )

    @staticmethod
    def _return_widths(program: Program) -> Dict[str, int]:
        """Max *statically known* tuple width returned per function."""
        widths: Dict[str, int] = {}
        for qual, fn in program.functions.items():
            best = 0
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    width = CongestModelRule._static_tuple_width(
                        node.value
                    )
                    if width is not None:
                        best = max(best, width)
            if best:
                widths[qual] = best
        return widths

    def _check_payload_args(
        self, program: Program, fn: FunctionInfo
    ) -> Iterator[Finding]:
        for site in program.calls.get(fn.qualname, ()):
            callee = (
                program.functions.get(site.callee)
                if site.callee else None
            )
            if callee is None:
                continue
            bound = site.attr is not None or callee.name == "__init__"
            for param, arg in _map_arguments(site.node, callee, bound):
                if param not in PAYLOAD_PARAM_NAMES:
                    continue
                width = CongestModelRule._static_tuple_width(arg)
                if width is not None and width > MESSAGE_WORD_LIMIT:
                    yield self.finding(
                        fn.module, site.node,
                        f"{width}-word tuple passed to "
                        f"`{callee.name}({param}=...)` exceeds the "
                        f"{MESSAGE_WORD_LIMIT}-word CONGEST message "
                        "budget one call away from the send",
                    )

    def _check_helper_widths(
        self,
        program: Program,
        fn: FunctionInfo,
        widths: Dict[str, int],
    ) -> Iterator[Finding]:
        for site in program.calls.get(fn.qualname, ()):
            if site.callee is None:
                continue
            width = widths.get(site.callee)
            if width is not None and width > MESSAGE_WORD_LIMIT:
                helper = site.callee.rsplit(".", 1)[-1]
                yield self.finding(
                    fn.module, site.node,
                    f"{fn.name}() calls {helper}(), whose return is a "
                    f"statically {width}-word tuple — wider than the "
                    f"{MESSAGE_WORD_LIMIT}-word CONGEST message budget "
                    "if sent",
                )


@register_program
class InternalShimRule(ProgramRule):
    """R012: library code must not call the deprecated ``repro.*`` shims.

    The surviving top-level shims (``repro.build_hierarchy``,
    ``repro.minimum_spanning_tree``) exist for downstream users
    mid-migration; they warn on every call and add a layer of
    indirection.  Internal modules calling them
    would warn at import time, re-enter the package root, and couple
    the implementation to its own deprecation surface — import the
    originals from ``repro.core`` instead.  The shim list is discovered
    from the package root itself (anything whose body calls
    ``_deprecated``), so adding a shim automatically extends the rule.
    """

    rule_id = "R012"
    name = "internal-shim-use"
    description = (
        "internal module imports/calls a deprecated repro.* shim — "
        "use the repro.core original"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        shims = self._discover_shims(program)
        if not shims:
            return
        for path, module in program.modules.items():
            name = program.module_names.get(path, "")
            if not name.startswith("repro.") or _is_scaffold(path):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom):
                    if node.level == 0 and node.module == "repro":
                        for alias in node.names:
                            if alias.name in shims:
                                yield self.finding(
                                    module, node,
                                    "internal import of deprecated "
                                    f"shim `repro.{alias.name}` — "
                                    "import the original from "
                                    "repro.core",
                                )
                elif isinstance(node, ast.Attribute):
                    dotted = qualified_name(node)
                    if (
                        dotted is not None
                        and dotted.startswith("repro.")
                        and dotted.split(".", 1)[1] in shims
                    ):
                        yield self.finding(
                            module, node,
                            f"internal use of deprecated `{dotted}` — "
                            "use the repro.core original",
                        )

    @staticmethod
    def _discover_shims(program: Program) -> Set[str]:
        """Names in the ``repro`` package root whose body calls
        ``_deprecated`` — i.e. the deprecation shims themselves."""
        shims: Set[str] = set()
        root_path = program.by_module_name.get("repro")
        if root_path is None:
            return shims
        root = program.modules[root_path]

        def calls_deprecated(body_owner: ast.AST) -> bool:
            for node in ast.walk(body_owner):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "_deprecated"
                ):
                    return True
            return False

        for stmt in root.tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.ClassDef)
            ) and calls_deprecated(stmt):
                shims.add(stmt.name)
        return shims
