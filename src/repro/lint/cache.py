"""Content-hash cache for lint runs.

Per-file rules are a pure function of (file content, rule set); the
whole-program pass is a pure function of (every file's content, rule
set).  The cache exploits both: a file whose SHA-256 is unchanged since
the last run reuses its recorded findings, and the program pass re-runs
only when the *input set* (the multiset of content hashes, i.e. any
edit, addition, or removal) changes.  The rule set is part of every key
— the cache hashes the lint package's own sources — so editing a rule
invalidates everything, and a stale cache can never mask a finding.

The cache file is a plain JSON artifact (default
``.reprolint-cache.json``, git-ignored); deleting it is always safe.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from .engine import Finding

__all__ = ["LintCache", "rules_digest"]

CACHE_VERSION = 1

_rules_digest_memo: Optional[str] = None


def rules_digest() -> str:
    """SHA-256 over the lint package's own source files.

    Any change to the engine, a rule, or the program analyzer yields a
    new digest, so cached findings can never outlive the rules that
    produced them.
    """
    global _rules_digest_memo
    if _rules_digest_memo is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for source in sorted(package_dir.glob("*.py")):
            digest.update(source.name.encode("utf-8"))
            digest.update(source.read_bytes())
        _rules_digest_memo = digest.hexdigest()
    return _rules_digest_memo


def file_digest(content: bytes) -> str:
    return hashlib.sha256(content).hexdigest()


class LintCache:
    """Findings keyed by content hash, persisted as JSON."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._rules = rules_digest()
        self._files: Dict[str, dict] = {}
        self._program: Optional[dict] = None
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # corrupt cache == no cache
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("rules") != self._rules
        ):
            return
        files = data.get("files")
        if isinstance(files, dict):
            self._files = files
        program = data.get("program")
        if isinstance(program, dict):
            self._program = program

    # -- per-file findings ---------------------------------------------------

    def get_file(
        self, path: str, digest: str
    ) -> Optional[List[Finding]]:
        entry = self._files.get(path)
        if entry is None or entry.get("sha256") != digest:
            self.misses += 1
            return None
        self.hits += 1
        return [
            _finding_from_dict(raw, path)
            for raw in entry.get("findings", [])
        ]

    def put_file(
        self, path: str, digest: str, findings: List[Finding]
    ) -> None:
        self._files[path] = {
            "sha256": digest,
            "findings": [f.to_dict() for f in findings],
        }

    # -- whole-program findings ----------------------------------------------

    @staticmethod
    def program_input_hash(digests: Dict[str, str]) -> str:
        """One hash over the program's full input set (path + content
        per file) — any edit, rename, addition, or deletion changes
        it."""
        combined = hashlib.sha256()
        for path in sorted(digests):
            combined.update(path.encode("utf-8"))
            combined.update(digests[path].encode("ascii"))
        return combined.hexdigest()

    def get_program(
        self, input_hash: str
    ) -> Optional[List[Finding]]:
        if (
            self._program is None
            or self._program.get("input_hash") != input_hash
        ):
            self.misses += 1
            return None
        self.hits += 1
        return [
            _finding_from_dict(raw, raw.get("path", ""))
            for raw in self._program.get("findings", [])
        ]

    def put_program(
        self, input_hash: str, findings: List[Finding]
    ) -> None:
        self._program = {
            "input_hash": input_hash,
            "findings": [f.to_dict() for f in findings],
        }

    # -- persistence ---------------------------------------------------------

    def save(self) -> None:
        payload = {
            "version": CACHE_VERSION,
            "rules": self._rules,
            "files": self._files,
            "program": self._program,
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # a read-only checkout just runs uncached


def _finding_from_dict(raw: dict, path: str) -> Finding:
    return Finding(
        rule=str(raw.get("rule", "")),
        path=str(raw.get("path", path)),
        line=int(raw.get("line", 1)),
        col=int(raw.get("col", 0)),
        message=str(raw.get("message", "")),
        scope=str(raw.get("scope", "")),
        snippet=str(raw.get("snippet", "")),
    )
