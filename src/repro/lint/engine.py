"""Core of ``reprolint``: module model, rule base class, lint drivers.

A :class:`LintModule` wraps one parsed source file with the helpers every
rule needs (import-alias resolution, qualified-name rendering, line-level
suppressions).  Rules are small classes with a ``check`` generator; the
registry lives in :mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "LintModule",
    "Rule",
    "lint_paths",
    "lint_source",
    "qualified_name",
]

#: ``# reprolint: disable=R001,R003`` or ``# reprolint: disable=all``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``scope`` (the enclosing ``Class.method`` chain) and ``snippet``
    (the stripped source line) exist so a finding can be identified
    *structurally*: the baseline keys findings by a fingerprint over
    them, which survives the line drift that pure ``(path, line)`` keys
    churn on (see :mod:`repro.lint.baseline`).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    scope: str = ""
    snippet: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable form (consumed by ``--format=json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def qualified_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c`` (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class LintModule:
    """One parsed source file plus the context rules need to inspect it."""

    def __init__(self, source: str, path: str = "<string>"):
        self.source = source
        self.path = path
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.aliases = self._collect_aliases(self.tree)
        self.suppressions = self._collect_suppressions(self.lines)
        self._scopes: Optional[list[tuple[int, int, str]]] = None

    @staticmethod
    def _collect_aliases(tree: ast.Module) -> dict[str, str]:
        """Map local names to the dotted module/object they import.

        ``import numpy as np`` maps ``np -> numpy``;
        ``from random import randint as ri`` maps ``ri -> random.randint``.
        """
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: not an external module
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return aliases

    @staticmethod
    def _collect_suppressions(lines: Sequence[str]) -> dict[int, set[str]]:
        suppressions: dict[int, set[str]] = {}
        for number, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {
                    token.strip().upper() if token.strip() != "all" else "all"
                    for token in match.group(1).split(",")
                    if token.strip()
                }
                suppressions[number] = rules
        return suppressions

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Qualified name of ``node`` with the leading import alias expanded.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the module did
        ``import numpy as np``.  Names that were never imported resolve to
        their literal spelling, so shadowed locals do not masquerade as
        modules unless the module really imported them.
        """
        dotted = qualified_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved_head = self.aliases.get(head)
        if resolved_head is None:
            return dotted
        return f"{resolved_head}.{rest}" if rest else resolved_head

    def resolve_imported(self, node: ast.AST) -> Optional[str]:
        """Like :meth:`resolve`, but only for chains rooted at an import.

        Returns ``None`` when the root name was never imported, so a
        local variable that happens to be called ``random`` or ``time``
        cannot masquerade as the module.
        """
        dotted = qualified_name(node)
        if dotted is None:
            return None
        head = dotted.partition(".")[0]
        if head not in self.aliases:
            return None
        return self.resolve(node)

    def scope_at(self, line: int) -> str:
        """Innermost ``Class.method`` chain enclosing ``line`` ('' at
        module level).  Used to key findings structurally (baseline
        fingerprints survive line drift because of it)."""
        if self._scopes is None:
            scopes: list[tuple[int, int, str]] = []

            def visit(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef),
                    ):
                        name = (
                            f"{prefix}.{child.name}" if prefix
                            else child.name
                        )
                        end = getattr(child, "end_lineno", child.lineno)
                        scopes.append((child.lineno, end or child.lineno,
                                       name))
                        visit(child, name)
                    else:
                        visit(child, prefix)

            visit(self.tree, "")
            self._scopes = scopes
        best = ""
        best_span = None
        for start, end, name in self._scopes:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = name, span
        return best

    def snippet_at(self, line: int) -> str:
        """The stripped source text of ``line`` (1-based), or ''."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "all" in rules or finding.rule in rules


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id` / :attr:`name` / :attr:`description`
    and implement :meth:`check` as a generator of :class:`Finding`.
    """

    rule_id: str = "R000"
    name: str = "abstract"
    description: str = ""

    def check(self, module: LintModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            scope=module.scope_at(line),
            snippet=module.snippet_at(line),
        )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings, sorted."""
    from .rules import get_rules

    try:
        module = LintModule(source, path)
    except SyntaxError as error:
        return [
            Finding(
                rule="E000",
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
                message=f"syntax error: {error.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules if rules is not None else get_rules():
        for finding in rule.check(module):
            if not module.is_suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files beneath them."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[str | Path],
    rules: Optional[Iterable[Rule]] = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    rules = list(rules) if rules is not None else None
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path), rules))
    return findings
