"""Whole-program model for ``reprolint``: symbols, imports, call graph.

The per-file rules (R001–R008) judge one module at a time; the contracts
they enforce, though, are *global* properties — "every executed round is
charged to the ledger" and "every generator traces back to a seed" hold
or fail across call boundaries.  This module builds the project-wide
view the interprocedural rules (R009–R012, :mod:`.program_rules`) need:

* a **module table** mapping files to dotted module names (derived from
  the package layout, so ``src/repro/congest/leader.py`` is
  ``repro.congest.leader``);
* a **symbol table** of every function, method, and class, keyed by
  qualified name (``repro.congest.primitives.build_bfs_tree``,
  ``repro.core.router.Router.route``);
* per-module **import resolution** including relative imports
  (``from .primitives import build_bfs_tree``) and re-exports through
  package ``__init__`` files;
* a **call graph**: each function's call sites resolved to symbol-table
  entries where statically possible — plain calls, aliased imports,
  ``self.method(...)`` through program-wide base-class resolution, and
  ``functools.partial(f, ...)`` — with *unresolved* attribute calls kept
  around (rules pattern-match them by attribute name, which is how
  ``.charge(...)`` on a ledger of unknown static type is recognised).

The model is deliberately an over/under-approximation in the usual
linter sense: precise enough to catch the bug classes the rules target,
coarse enough to stay fast and dependency-free.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .engine import (
    Finding,
    LintModule,
    iter_python_files,
    qualified_name,
)

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "Program",
    "ProgramRule",
    "build_program",
    "lint_program",
    "module_dotted_name",
]


def module_dotted_name(path: Path) -> str:
    """Dotted module name of ``path``, derived from the package layout.

    Walks upward while ``__init__.py`` exists, so the name matches what
    ``import`` would see regardless of where the tree is checked out.
    A stray file with no package parent is just its stem.
    """
    path = Path(path)
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class CallSite:
    """One ``ast.Call`` inside a function, with its resolution.

    Attributes:
        node: the call expression.
        callee: qualified name of the resolved target (symbol-table
            key), or ``None`` when resolution failed.
        attr: for attribute calls (``obj.m(...)``), the method name —
            kept even when the receiver's type is unknown, so rules can
            match calls like ``.charge(...)`` structurally.
        receiver: rendered receiver chain of an attribute call
            (``"self.network"``), or ``None`` for plain calls.
    """

    node: ast.Call
    callee: Optional[str] = None
    attr: Optional[str] = None
    receiver: Optional[str] = None


@dataclass
class FunctionInfo:
    """A function or method in the program's symbol table."""

    qualname: str
    module: LintModule
    module_name: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_qualname: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    def param_names(self) -> List[str]:
        """Positional-ish parameter names, in call-mapping order."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        return names

    def all_param_names(self) -> Set[str]:
        args = self.node.args
        names = set(self.param_names())
        names.update(a.arg for a in args.kwonlyargs)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """A class definition plus its resolved base names."""

    qualname: str
    module: LintModule
    module_name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


class Program:
    """The whole-program view: modules, symbols, and the call graph."""

    def __init__(self) -> None:
        #: file path -> parsed module
        self.modules: Dict[str, LintModule] = {}
        #: file path -> dotted module name
        self.module_names: Dict[str, str] = {}
        #: dotted module name -> file path (first wins)
        self.by_module_name: Dict[str, str] = {}
        #: qualified name -> function/method
        self.functions: Dict[str, FunctionInfo] = {}
        #: qualified name -> class
        self.classes: Dict[str, ClassInfo] = {}
        #: function qualname -> its call sites
        self.calls: Dict[str, List[CallSite]] = {}
        #: callee qualname -> [(caller qualname, site), ...]
        self.callers: Dict[str, List[Tuple[str, CallSite]]] = {}
        #: per-module import table with *relative imports resolved*
        #: (unlike LintModule.aliases, which skips them)
        self._imports: Dict[str, Dict[str, str]] = {}

    # -- construction --------------------------------------------------------

    def add_module(self, module: LintModule) -> None:
        name = module_dotted_name(Path(module.path))
        self.modules[module.path] = module
        self.module_names[module.path] = name
        self.by_module_name.setdefault(name, module.path)
        self._imports[module.path] = self._collect_imports(module, name)
        self._collect_symbols(module, name)

    @staticmethod
    def _collect_imports(
        module: LintModule, module_name: str
    ) -> Dict[str, str]:
        """Local name -> dotted target, relative imports included."""
        table: Dict[str, str] = {}
        package = module_name.rsplit(".", 1)[0] if "." in module_name \
            else module_name
        is_package = Path(module.path).name == "__init__.py"
        if is_package:
            package = module_name
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    table[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative: climb level-1 packages from here.
                    base_parts = package.split(".")
                    climb = node.level - 1
                    if climb:
                        base_parts = base_parts[:-climb] or base_parts[:1]
                    base = ".".join(base_parts)
                    prefix = f"{base}.{node.module}" if node.module \
                        else base
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    table[local] = f"{prefix}.{alias.name}" if prefix \
                        else alias.name
        return table

    def _collect_symbols(self, module: LintModule, name: str) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{name}.{stmt.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=module, module_name=name,
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{name}.{stmt.name}"
                info = ClassInfo(
                    qualname=cls_qual, module=module, module_name=name,
                    node=stmt,
                )
                for base in stmt.bases:
                    rendered = qualified_name(base)
                    if rendered:
                        info.bases.append(rendered)
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        method_qual = f"{cls_qual}.{item.name}"
                        fn = FunctionInfo(
                            qualname=method_qual, module=module,
                            module_name=name, node=item,
                            class_qualname=cls_qual,
                        )
                        self.functions[method_qual] = fn
                        info.methods[item.name] = fn
                self.classes[cls_qual] = info

    # -- name resolution -----------------------------------------------------

    def resolve_local(
        self, module: LintModule, dotted: str
    ) -> Optional[str]:
        """Resolve ``dotted`` as seen from ``module`` to a symbol key.

        Expands the leading import alias (relative imports included),
        then follows re-exports through package ``__init__`` modules.
        """
        table = self._imports.get(module.path, {})
        head, _, rest = dotted.partition(".")
        target = table.get(head)
        module_name = self.module_names.get(module.path, "")
        if target is None:
            # Not imported: a module-local symbol?
            candidate = f"{module_name}.{dotted}"
            return self.resolve_symbol(candidate)
        full = f"{target}.{rest}" if rest else target
        return self.resolve_symbol(full)

    def resolve_symbol(
        self, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Canonicalise ``dotted`` against the symbol table.

        Follows re-export chains (``repro.congest.build_bfs_tree`` ->
        ``repro.congest.primitives.build_bfs_tree``) up to a small
        depth.
        """
        if _depth > 8:
            return None
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Split into (module prefix, remainder) at the longest module
        # name we know.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            path = self.by_module_name.get(prefix)
            if path is None:
                continue
            remainder = parts[cut:]
            # Direct symbol in that module?
            candidate = f"{prefix}." + ".".join(remainder)
            if candidate in self.functions or candidate in self.classes:
                return candidate
            # Re-export: the module's import table knows the head.
            table = self._imports.get(path, {})
            head = remainder[0]
            if head in table:
                rebased = table[head]
                if len(remainder) > 1:
                    rebased += "." + ".".join(remainder[1:])
                if rebased != dotted:
                    return self.resolve_symbol(rebased, _depth + 1)
            return None
        return None

    def expand(self, module: LintModule, dotted: str) -> str:
        """Expand the leading import alias of ``dotted`` (relative
        imports included) without requiring an in-program symbol —
        ``np.random.default_rng`` becomes ``numpy.random.default_rng``
        even though numpy is not part of the program."""
        table = self._imports.get(module.path, {})
        head, _, rest = dotted.partition(".")
        target = table.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def method_on(
        self, class_qualname: str, method: str, _seen: frozenset = frozenset()
    ) -> Optional[str]:
        """Resolve ``method`` on a class or its (program-wide) bases."""
        if class_qualname in _seen:
            return None
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method].qualname
        for base in info.bases:
            base_qual = self.resolve_local(info.module, base)
            if base_qual is None:
                continue
            found = self.method_on(
                base_qual, method, _seen | {class_qualname}
            )
            if found:
                return found
        return None

    def class_is(
        self, class_qualname: str, base_suffix: str,
        _seen: frozenset = frozenset(),
    ) -> bool:
        """True if the class (transitively) extends a base whose name
        ends with ``base_suffix`` — program-wide, so a subclass in
        another module still counts."""
        if class_qualname in _seen:
            return False
        if class_qualname.endswith(base_suffix):
            return True
        info = self.classes.get(class_qualname)
        if info is None:
            return False
        for base in info.bases:
            if base.endswith(base_suffix):
                return True
            base_qual = self.resolve_local(info.module, base)
            if base_qual and self.class_is(
                base_qual, base_suffix, _seen | {class_qualname}
            ):
                return True
        return False

    # -- call graph ----------------------------------------------------------

    def build_call_graph(self) -> None:
        for qual, fn in self.functions.items():
            sites = list(self._call_sites(fn))
            self.calls[qual] = sites
            for site in sites:
                if site.callee:
                    self.callers.setdefault(site.callee, []).append(
                        (qual, site)
                    )

    def _call_sites(self, fn: FunctionInfo) -> Iterator[CallSite]:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                yield self._resolve_call(fn, node)
                # functools.partial(f, ...): an edge to f as well.
                target = self._partial_target(fn, node)
                if target is not None:
                    yield CallSite(node=node, callee=target)

    def _partial_target(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        name = qualified_name(call.func)
        if name is None or not call.args:
            return None
        resolved = self.resolve_local(fn.module, name)
        is_partial = (
            name in ("partial", "functools.partial")
            or (resolved or "").endswith("functools.partial")
        )
        # `functools` is stdlib, so resolve_local can't see its symbol
        # table; match the spelling through the import table instead.
        table = self._imports.get(fn.module.path, {})
        head = name.partition(".")[0]
        expanded = table.get(head, head)
        full = name.replace(head, expanded, 1)
        if not (is_partial or full == "functools.partial"):
            return None
        inner = qualified_name(call.args[0])
        if inner is None:
            return None
        return self.resolve_local(fn.module, inner)

    def _resolve_call(
        self, fn: FunctionInfo, call: ast.Call
    ) -> CallSite:
        func = call.func
        if isinstance(func, ast.Name):
            callee = self.resolve_local(fn.module, func.id)
            if callee in self.classes:
                # Constructor: edge to __init__ when it exists, else
                # keep the class itself as the target.
                init = self.method_on(callee, "__init__")
                callee = init or callee
            return CallSite(node=call, callee=callee)
        if isinstance(func, ast.Attribute):
            receiver = qualified_name(func.value)
            # self.method(...) -> program-wide method resolution.
            if receiver == "self" and fn.class_qualname:
                callee = self.method_on(fn.class_qualname, func.attr)
                return CallSite(
                    node=call, callee=callee, attr=func.attr,
                    receiver=receiver,
                )
            # module.attr(...) through the import table.
            dotted = qualified_name(func)
            callee = None
            if dotted is not None:
                callee = self.resolve_local(fn.module, dotted)
                if callee in self.classes:
                    init = self.method_on(callee, "__init__")
                    callee = init or callee
            return CallSite(
                node=call, callee=callee, attr=func.attr,
                receiver=receiver,
            )
        return CallSite(node=call)

    # -- traversal helpers for rules -----------------------------------------

    def transitive_callees(self, qualname: str) -> Set[str]:
        """All resolved callees reachable from ``qualname``."""
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            for site in self.calls.get(current, ()):
                if site.callee and site.callee not in seen:
                    seen.add(site.callee)
                    stack.append(site.callee)
        return seen


class ProgramRule:
    """Base class for whole-program rules.

    Like :class:`~repro.lint.engine.Rule` but ``check`` receives the
    :class:`Program`; findings still carry the module path/line of the
    offending site so suppressions and baselines work identically.
    """

    rule_id: str = "R900"
    name: str = "abstract-program"
    description: str = ""

    def check(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            scope=module.scope_at(line),
            snippet=module.snippet_at(line),
        )


def build_program(paths: Iterable["str | Path"]) -> Program:
    """Parse every ``.py`` under ``paths`` into one :class:`Program`."""
    program = Program()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
            module = LintModule(source, str(file_path))
        except (OSError, SyntaxError):
            continue  # per-file linting already reports E000
        program.add_module(module)
    program.build_call_graph()
    return program


def lint_program(
    paths: Iterable["str | Path"],
    rules: Optional[Iterable[ProgramRule]] = None,
) -> List[Finding]:
    """Run the whole-program rules over the tree under ``paths``."""
    from .program_rules import get_program_rules

    program = build_program(paths)
    findings: List[Finding] = []
    active = list(rules) if rules is not None else get_program_rules()
    for rule in active:
        for finding in rule.check(program):
            module = program.modules.get(finding.path)
            if module is not None and module.is_suppressed(finding):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
