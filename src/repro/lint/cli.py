"""``reprolint`` command line: ``python -m repro.lint [paths...]``.

Runs the per-file rules (R001–R008) and, unless ``--no-program`` is
given, the whole-program rules (R009–R012) over the same tree.  Exit
status: 0 when clean (or every finding is baselined), 1 when *new*
findings were reported, 2 on usage errors (bad paths, malformed
baseline).  Defaults can be set in ``pyproject.toml``::

    [tool.reprolint]
    paths = ["src/repro", "tests"]
    disable = []
    baseline = ".reprolint-baseline.json"

Command-line arguments override the configuration file.  The baseline
gate compares structural fingerprints (see :mod:`.baseline`), so a
committed ``.reprolint-baseline.json`` accepts today's findings while
new code is held to the full rule set; refresh it with
``--update-baseline`` after deliberately accepting a finding.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Dict, List, Optional, Sequence, Tuple

from .baseline import load_baseline, partition_findings, write_baseline
from .cache import LintCache, file_digest
from .engine import Finding, iter_python_files, lint_source
from .program import lint_program
from .program_rules import PROGRAM_RULES, get_program_rules
from .reporters import render_json, render_sarif, render_text
from .rules import RULES, get_rules

__all__ = ["main"]

# Mirrors the project version in pyproject.toml; kept literal so the
# linter never has to import the (numpy-heavy) ``repro`` package itself.
TOOL_VERSION = "1.0.0"

DEFAULT_BASELINE = ".reprolint-baseline.json"
DEFAULT_CACHE = ".reprolint-cache.json"


def _load_config(start: Path) -> Tuple[dict, Path]:
    """``[tool.reprolint]`` from the nearest ``pyproject.toml`` upward.

    Returns ``(config, root)`` where ``root`` is the directory holding
    the ``pyproject.toml`` (the repo root for fingerprint-relative
    paths), or ``start`` when none was found.
    """
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return {}, start
    for directory in [start, *start.parents]:
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            try:
                with open(pyproject, "rb") as handle:
                    data = tomllib.load(handle)
            except (OSError, tomllib.TOMLDecodeError):
                return {}, directory
            return data.get("tool", {}).get("reprolint", {}), directory
    return {}, start


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Static checks for the CONGEST-model and seeded-randomness "
            "contract of the repro codebase."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.reprolint] "
        "paths from pyproject.toml, else src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--disable", default="",
        help="comma-separated rule ids to skip, e.g. R003,R010",
    )
    parser.add_argument(
        "--no-program", action="store_true",
        help="skip the whole-program rules (R009+); per-file only",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="accepted-findings file to gate against (default: "
        "[tool.reprolint] baseline, else .reprolint-baseline.json "
        "when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; report every finding as new",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept the current findings, "
        "then exit 0",
    )
    parser.add_argument(
        "--cache", metavar="PATH", nargs="?", const=DEFAULT_CACHE,
        default=None,
        help="reuse findings for content-unchanged files via a JSON "
        f"cache (default path: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the findings cache even if configured",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _lint_files(
    paths: Sequence[str],
    rules,
    cache: Optional[LintCache],
) -> Tuple[List[Finding], Dict[str, str]]:
    """Per-file pass; returns findings + content digests per file.

    The digests feed the program pass's cache key, so they are computed
    whenever a cache is active — one read per file either way.
    """
    findings: List[Finding] = []
    digests: Dict[str, str] = {}
    for file_path in iter_python_files(paths):
        key = str(file_path)
        try:
            raw = file_path.read_bytes()
        except OSError:
            continue
        if cache is None:
            source = raw.decode("utf-8", errors="replace")
            findings.extend(lint_source(source, key, rules))
            continue
        digest = file_digest(raw)
        digests[key] = digest
        cached = cache.get_file(key, digest)
        if cached is None:
            source = raw.decode("utf-8", errors="replace")
            cached = lint_source(source, key, rules)
            cache.put_file(key, digest, cached)
        findings.extend(cached)
    return findings, digests


def main(
    argv: Optional[Sequence[str]] = None,
    stdout: Optional[IO[str]] = None,
) -> int:
    stdout = stdout if stdout is not None else sys.stdout
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        catalogue = dict(RULES)
        catalogue.update(PROGRAM_RULES)
        for rule_id, rule in sorted(catalogue.items()):
            print(f"{rule_id} {rule.name}: {rule.description}", file=stdout)
        return 0

    config, root = _load_config(Path.cwd())
    disable = [
        token.strip() for token in args.disable.split(",") if token.strip()
    ] or list(config.get("disable", []))
    paths = list(args.paths) or list(config.get("paths", []))
    if not paths:
        fallback = Path("src/repro")
        paths = [str(fallback)] if fallback.is_dir() else ["."]

    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache_setting = args.cache
        if cache_setting is None:
            configured = config.get("cache")
            if configured is True:
                cache_setting = DEFAULT_CACHE
            elif isinstance(configured, str):
                cache_setting = configured
        if cache_setting is not None:
            cache = LintCache(root / cache_setting)

    rules = get_rules(disable)
    findings, digests = _lint_files(paths, rules, cache)

    program_rules = [] if args.no_program else get_program_rules(disable)
    if program_rules:
        if cache is not None:
            input_hash = LintCache.program_input_hash(digests)
            program_findings = cache.get_program(input_hash)
            if program_findings is None:
                program_findings = lint_program(paths, program_rules)
                cache.put_program(input_hash, program_findings)
        else:
            program_findings = lint_program(paths, program_rules)
        findings = findings + program_findings
    if cache is not None:
        cache.save()
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif isinstance(config.get("baseline"), str):
            baseline_path = root / config["baseline"]
        elif (root / DEFAULT_BASELINE).is_file():
            baseline_path = root / DEFAULT_BASELINE

    if args.update_baseline:
        target = baseline_path or root / DEFAULT_BASELINE
        count = write_baseline(target, findings, root)
        print(
            f"reprolint: baseline {target} updated "
            f"({count} accepted finding(s))",
            file=stdout,
        )
        return 0

    baselined: List[Finding] = []
    if baseline_path is not None:
        try:
            accepted = load_baseline(baseline_path)
        except ValueError as error:
            print(f"reprolint: {error}", file=sys.stderr)
            return 2
        findings, baselined = partition_findings(findings, accepted, root)

    all_rules = list(rules) + list(program_rules)
    if args.format == "json":
        print(render_json(findings, all_rules), file=stdout)
    elif args.format == "sarif":
        print(
            render_sarif(
                findings,
                all_rules,
                root=root,
                version=TOOL_VERSION,
                baselined=baselined,
            ),
            file=stdout,
        )
    else:
        print(render_text(findings), file=stdout)
        if baselined:
            print(
                f"reprolint: {len(baselined)} baselined finding(s) "
                "suppressed",
                file=stdout,
            )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
