"""``reprolint`` command line: ``python -m repro.lint [paths...]``.

Exit status: 0 when clean, 1 when findings were reported.  Defaults
(paths to lint, rules to disable) can be set in ``pyproject.toml``::

    [tool.reprolint]
    paths = ["src/repro", "tests"]
    disable = []

Command-line arguments override the configuration file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from .engine import lint_paths
from .reporters import render_json, render_text
from .rules import RULES, get_rules

__all__ = ["main"]


def _load_config(start: Path) -> dict:
    """``[tool.reprolint]`` from the nearest ``pyproject.toml`` upward."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return {}
    for directory in [start, *start.parents]:
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            try:
                with open(pyproject, "rb") as handle:
                    data = tomllib.load(handle)
            except (OSError, tomllib.TOMLDecodeError):
                return {}
            return data.get("tool", {}).get("reprolint", {})
    return {}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "Static checks for the CONGEST-model and seeded-randomness "
            "contract of the repro codebase."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.reprolint] "
        "paths from pyproject.toml, else src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--disable", default="",
        help="comma-separated rule ids to skip, e.g. R003,R005",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(
    argv: Optional[Sequence[str]] = None,
    stdout: Optional[IO[str]] = None,
) -> int:
    stdout = stdout if stdout is not None else sys.stdout
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(RULES.items()):
            print(f"{rule_id} {rule.name}: {rule.description}", file=stdout)
        return 0

    config = _load_config(Path.cwd())
    disable = [
        token.strip() for token in args.disable.split(",") if token.strip()
    ] or list(config.get("disable", []))
    paths = list(args.paths) or list(config.get("paths", []))
    if not paths:
        fallback = Path("src/repro")
        paths = [str(fallback)] if fallback.is_dir() else ["."]

    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    rules = get_rules(disable)
    findings = lint_paths(paths, rules)
    if args.format == "json":
        print(render_json(findings, rules), file=stdout)
    else:
        print(render_text(findings), file=stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
