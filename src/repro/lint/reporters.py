"""Finding renderers: human text, machine JSON, and SARIF 2.1.0.

The JSON shape is part of the tool's contract (CI annotations and the
benchmarks dashboard consume it): a top-level object with ``count``,
``findings`` (list of ``rule``/``path``/``line``/``col``/``message``),
and ``rules`` (the catalogue the run used).  The SARIF output targets
GitHub code scanning (``--format=sarif`` + the upload-sarif action), so
every finding becomes an inline annotation on the PR diff.
"""

from __future__ import annotations

import json
from pathlib import Path, PurePath
from typing import Iterable, Optional, Protocol, Sequence

from .engine import Finding

__all__ = ["render_text", "render_json", "render_sarif"]


class RuleLike(Protocol):
    """What a reporter needs from a rule — per-file and program rules
    both satisfy it."""

    rule_id: str
    name: str
    description: str


SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append(f"reprolint: {len(findings)} finding(s)")
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], rules: Iterable[RuleLike] = ()
) -> str:
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "description": rule.description,
            }
            for rule in rules
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_uri(path: str, root: Optional[Path]) -> str:
    """Repo-relative POSIX path for SARIF's artifactLocation."""
    pure = Path(path)
    if root is not None:
        try:
            pure = pure.resolve().relative_to(Path(root).resolve())
        except ValueError:
            pass
    return PurePath(pure).as_posix()


def render_sarif(
    findings: Sequence[Finding],
    rules: Iterable[RuleLike] = (),
    root: Optional[Path] = None,
    version: str = "0",
    baselined: Sequence[Finding] = (),
) -> str:
    """SARIF 2.1.0 log for GitHub code-scanning upload.

    ``findings`` become ``results`` with level ``error``; ``baselined``
    findings are included too but demoted to ``note`` with
    ``baselineState: "unchanged"``, so the code-scanning UI shows the
    accepted backlog without failing the gate.  Fingerprints ride in
    ``partialFingerprints`` under the same scheme the baseline file
    uses, which keeps annotations stable across line drift.
    """
    from .baseline import fingerprint_findings

    rule_list = list(rules)
    rule_index = {
        rule.rule_id: index for index, rule in enumerate(rule_list)
    }
    results = []
    for level, batch in (("error", findings), ("note", baselined)):
        for finding, digest in fingerprint_findings(list(batch), root):
            result = {
                "ruleId": finding.rule,
                "level": level,
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _sarif_uri(finding.path, root),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reprolintFingerprint/v1": digest,
                },
            }
            if finding.rule in rule_index:
                result["ruleIndex"] = rule_index[finding.rule]
            if level == "note":
                result["baselineState"] = "unchanged"
            results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": version,
                        "informationUri": (
                            "https://pypi.org/project/repro/"
                        ),
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "name": rule.name,
                                "shortDescription": {
                                    "text": rule.description
                                },
                                "defaultConfiguration": {
                                    "level": "error"
                                },
                            }
                            for rule in rule_list
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "uri": (
                            Path(root).resolve().as_uri() + "/"
                            if root is not None
                            else "file:///"
                        )
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
