"""Finding renderers: human text and machine JSON.

The JSON shape is part of the tool's contract (CI annotations and the
benchmarks dashboard consume it): a top-level object with ``count``,
``findings`` (list of ``rule``/``path``/``line``/``col``/``message``),
and ``rules`` (the catalogue the run used).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .engine import Finding, Rule

__all__ = ["render_text", "render_json"]


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append(f"reprolint: {len(findings)} finding(s)")
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], rules: Iterable[Rule] = ()
) -> str:
    payload = {
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "description": rule.description,
            }
            for rule in rules
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
