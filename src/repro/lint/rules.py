"""The ``reprolint`` rule set.

Each rule targets a concrete failure mode of this codebase: breaking the
CONGEST model the paper's theorems assume, or breaking the seeded-RNG
discipline the experiments' reproducibility rests on.  Rule ids are
stable (suppression comments reference them); see ``docs/linting.md``
for the catalogue with rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from ..congest.network import MESSAGE_WORD_LIMIT
from .engine import Finding, LintModule, Rule, qualified_name

__all__ = ["RULES", "get_rules", "register"]

RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = cls()
    RULES[rule.rule_id] = rule
    return cls


def get_rules(disable: Sequence[str] = ()) -> list[Rule]:
    """All registered rules minus ``disable`` (ids, case-insensitive)."""
    disabled = {rule_id.upper() for rule_id in disable}
    return [
        rule for rule_id, rule in sorted(RULES.items())
        if rule_id not in disabled
    ]


#: Calls that mint a new generator.  Seeding decides whether they are OK.
RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}

#: Module-level sampling functions of the stdlib ``random`` module.
STDLIB_SAMPLERS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: ``numpy.random`` attributes that are *not* the legacy global samplers.
NUMPY_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

#: Wall-clock / entropy sources that make runs unreproducible.
NONDETERMINISTIC_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "os.urandom",
    "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.randbits", "secrets.choice",
}

#: Bare names that, read inside a node-local CONGEST method, mean the
#: algorithm is peeking at global knowledge it cannot have.
NONLOCAL_KNOWLEDGE_NAMES = {"graph", "network", "topology", "adjacency"}

#: Parameter names that count as "randomness is injected by the caller".
SEED_PARAM_NAMES = {"rng", "seed", "random_state", "rng_factory"}


def _call_name(module: LintModule, call: ast.Call) -> Optional[str]:
    """Resolved callee name, or None unless rooted at a real import —
    a local that shadows a module name must not trigger RNG rules."""
    return module.resolve_imported(call.func)


def _is_unseeded(call: ast.Call) -> bool:
    return not call.args and not call.keywords


@register
class GlobalRngRule(Rule):
    """R001: global or unseeded RNG use.

    Every random choice must flow through an injected, seeded
    ``numpy.random.Generator`` (or ``random.Random``); the legacy global
    samplers and unseeded constructors make runs depend on interpreter
    state, which breaks same-seed reproducibility.
    """

    rule_id = "R001"
    name = "global-rng"
    description = (
        "module-level/global RNG use: legacy samplers, unseeded "
        "constructors, or module-scope generator instances"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node)
        yield from self._check_module_level(module)

    def _check_call(
        self, module: LintModule, call: ast.Call
    ) -> Iterator[Finding]:
        name = _call_name(module, call)
        if name is None:
            return
        if name in RNG_CONSTRUCTORS and _is_unseeded(call):
            yield self.finding(
                module, call,
                f"unseeded `{name}()` — pass an explicit seed (or use "
                "repro.rng.resolve_rng) so runs are reproducible",
            )
            return
        head, _, tail = name.rpartition(".")
        if head == "random" and tail in STDLIB_SAMPLERS:
            yield self.finding(
                module, call,
                f"call to global `random.{tail}` — inject a seeded "
                "random.Random/numpy Generator instead",
            )
        elif head == "numpy.random" and tail not in NUMPY_RANDOM_ALLOWED:
            yield self.finding(
                module, call,
                f"call to legacy global `numpy.random.{tail}` — use a "
                "seeded numpy.random.Generator instead",
            )

    def _check_module_level(self, module: LintModule) -> Iterator[Finding]:
        for stmt in module.tree.body:
            value = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
            if (
                isinstance(value, ast.Call)
                and _call_name(module, value) in RNG_CONSTRUCTORS
            ):
                yield self.finding(
                    module, stmt,
                    "module-level RNG instance shares mutable state across "
                    "every caller — construct generators inside functions "
                    "from an explicit seed",
                )


def _base_names(module: LintModule, cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        resolved = module.resolve(base) or qualified_name(base)
        if resolved:
            names.append(resolved)
    return names


def _local_bindings(fn: ast.FunctionDef) -> set[str]:
    """Names bound inside ``fn``: parameters plus any assignment target."""
    bound = {arg.arg for arg in fn.args.args}
    bound.update(arg.arg for arg in fn.args.posonlyargs)
    bound.update(arg.arg for arg in fn.args.kwonlyargs)
    if fn.args.vararg:
        bound.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        bound.add(fn.args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                bound.add(node.name)
    return bound


@register
class CongestModelRule(Rule):
    """R002: statically-detectable CONGEST violations in node algorithms.

    Inside ``initialize``/``receive`` of a ``NodeAlgorithm`` subclass, a
    payload tuple longer than ``MESSAGE_WORD_LIMIT`` words cannot fit in
    one O(log n)-bit message, and reading a module-global graph/network
    gives the node knowledge the model says it does not have.
    """

    rule_id = "R002"
    name = "congest-model"
    description = (
        "NodeAlgorithm.initialize/receive builds an over-wide payload "
        "tuple or reads global graph/network state"
    )

    _METHODS = {"initialize", "receive"}

    def check(self, module: LintModule) -> Iterator[Finding]:
        classes = [
            node for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        ]
        # Transitive subclass resolution *within the module*: Chatty
        # extending _Silent extending NodeAlgorithm is still a node
        # algorithm even though its direct base does not say so.
        bases_of = {cls.name: _base_names(module, cls) for cls in classes}

        def is_node_algorithm(name: str, seen: frozenset = frozenset()):
            if name.endswith("NodeAlgorithm"):
                return True
            if name in seen:
                return False
            return any(
                is_node_algorithm(base, seen | {name})
                for base in bases_of.get(name, ())
            )

        for node in classes:
            if not any(
                is_node_algorithm(base)
                for base in _base_names(module, node)
            ):
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name in self._METHODS
                ):
                    yield from self._check_method(module, item)

    def _check_method(
        self, module: LintModule, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        local = _local_bindings(fn)
        for node in ast.walk(fn):
            width = self._static_tuple_width(node)
            if width is not None and width > MESSAGE_WORD_LIMIT:
                yield self.finding(
                    module, node,
                    f"payload tuple of {width} words exceeds the "
                    f"{MESSAGE_WORD_LIMIT}-word CONGEST message budget "
                    f"in {fn.name}()",
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id.lower() in NONLOCAL_KNOWLEDGE_NAMES
                and node.id not in local
            ):
                yield self.finding(
                    module, node,
                    f"{fn.name}() reads global `{node.id}` — non-local "
                    "knowledge breaks the CONGEST model; nodes may only "
                    "use their NodeContext and received messages",
                )

    @staticmethod
    def _static_tuple_width(node: ast.AST) -> Optional[int]:
        """Length of a tuple whose size is statically known, else None."""
        if isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            if any(isinstance(elt, ast.Starred) for elt in node.elts):
                return None
            return len(node.elts)
        # tuple(range(k)) with a constant k
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "tuple"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
            and node.args[0].func.id == "range"
            and len(node.args[0].args) == 1
            and isinstance(node.args[0].args[0], ast.Constant)
            and isinstance(node.args[0].args[0].value, int)
        ):
            return node.args[0].args[0].value
        return None


@register
class NondeterminismRule(Rule):
    """R003: wall-clock, entropy, or hash-order dependence.

    ``time.time``/``os.urandom``/``uuid.uuid4`` make a run depend on the
    environment; iterating a set directly makes it depend on hash
    randomisation.  Either way, same-seed runs stop being identical.
    """

    rule_id = "R003"
    name = "nondeterminism"
    description = (
        "wall-clock/entropy source, or direct iteration over a set"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _call_name(module, node)
                if name is not None and name in NONDETERMINISTIC_CALLS:
                    yield self.finding(
                        module, node,
                        f"`{name}` is nondeterministic — thread seeds/"
                        "counters through parameters instead",
                    )
            elif isinstance(node, ast.For):
                yield from self._check_iter(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iter(module, generator.iter)

    def _check_iter(
        self, module: LintModule, iterable: ast.AST
    ) -> Iterator[Finding]:
        is_set_call = (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in {"set", "frozenset"}
        )
        if is_set_call or isinstance(iterable, ast.Set):
            yield self.finding(
                module, iterable,
                "iteration order over a set depends on hash "
                "randomisation — iterate `sorted(...)` instead",
            )


@register
class ExceptionHygieneRule(Rule):
    """R004: bare excepts and swallowed CongestViolation.

    A bare ``except:`` hides model violations (and KeyboardInterrupt); a
    handler that catches ``CongestViolation`` without re-raising turns a
    broken-model run into a silently wrong result.
    """

    rule_id = "R004"
    name = "exception-hygiene"
    description = "bare except, or CongestViolation caught and swallowed"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` hides CONGEST violations and "
                    "KeyboardInterrupt — catch specific exceptions",
                )
                continue
            caught = self._caught_names(node.type)
            has_raise = any(
                isinstance(child, ast.Raise) for child in ast.walk(node)
            )
            if any(
                name.endswith("CongestViolation") for name in caught
            ) and not has_raise:
                yield self.finding(
                    module, node,
                    "CongestViolation caught without re-raise — a "
                    "swallowed model violation yields silently wrong "
                    "round/message counts",
                )
            elif self._is_silent_pass(node) and any(
                name in {"Exception", "BaseException"} for name in caught
            ):
                yield self.finding(
                    module, node,
                    f"`except {'/'.join(sorted(caught))}: pass` swallows "
                    "every error, including model violations",
                )

    @staticmethod
    def _caught_names(type_node: ast.AST) -> list[str]:
        nodes = (
            type_node.elts if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        names = []
        for node in nodes:
            name = qualified_name(node)
            if name:
                names.append(name)
        return names

    @staticmethod
    def _is_silent_pass(handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in handler.body
        )


@register
class SeedParamRule(Rule):
    """R005: public function mints an RNG no caller can control.

    A public function that constructs its own generator from a constant
    (or from nothing) cannot be replayed under a different seed and hides
    randomness from the experiment harness: its signature must accept
    ``rng``/``seed`` (or derive the seed from its parameters/self).
    """

    rule_id = "R005"
    name = "missing-seed-param"
    description = (
        "public library function constructs an RNG without an rng/seed "
        "parameter or a seed derived from its inputs"
    )

    #: Directories whose code is scaffolding, not library API: a pinned
    #: literal seed there *is* the injected seed, the exact discipline
    #: this rule exists to enforce.
    _EXEMPT_DIRS = {"tests", "benchmarks", "examples"}

    def check(self, module: LintModule) -> Iterator[Finding]:
        from pathlib import PurePath

        if self._EXEMPT_DIRS & set(PurePath(module.path).parts):
            return
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if node.name.startswith("_") or node.name.startswith("test"):
                # Private helpers inherit their caller's contract; pytest
                # entry points take no arguments, so their literal seeds
                # *are* the injected seeds.
                continue
            if self._is_fixture(module, node):
                continue
            params = _local_bindings_params(node)
            if params & SEED_PARAM_NAMES:
                continue
            for call in _walk_own_body(node):
                if not isinstance(call, ast.Call):
                    continue
                if _call_name(module, call) not in RNG_CONSTRUCTORS:
                    continue
                if self._derives_from(call, params):
                    continue
                yield self.finding(
                    module, call,
                    f"{node.name}() constructs an RNG the caller cannot "
                    "seed — add an `rng`/`seed` parameter and thread it "
                    "through",
                )

    @staticmethod
    def _is_fixture(
        module: LintModule, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """Pytest fixtures pin seeds by design."""
        for decorator in fn.decorator_list:
            target = decorator.func if isinstance(
                decorator, ast.Call
            ) else decorator
            name = module.resolve(target) or ""
            if "fixture" in name:
                return True
        return False

    @staticmethod
    def _derives_from(call: ast.Call, params: set[str]) -> bool:
        """True if any argument of ``call`` references a parameter."""
        sources = params | {"self", "cls"}
        arg_nodes = list(call.args) + [kw.value for kw in call.keywords]
        for arg in arg_nodes:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name) and node.id in sources:
                    return True
        return False


@register
class TupleSeedRule(Rule):
    """R006: ad-hoc tuple-seed RNG derivation outside the runtime layer.

    ``np.random.default_rng((seed, k))`` derives sub-streams with magic
    offsets; every call site invents its own ``k``, and two sites that
    collide silently share a stream.  Stream derivation is centralised:
    use :func:`repro.rng.derive_rng` for integer labels or
    :meth:`repro.runtime.RunContext.stream` for named streams.  The
    implementation modules themselves (``repro/rng.py``,
    ``repro/runtime/``) and scaffolding dirs are exempt.
    """

    rule_id = "R006"
    name = "tuple-seed-derivation"
    description = (
        "RNG constructed from a raw tuple seed outside repro.rng/"
        "repro.runtime — use derive_rng or RunContext.stream"
    )

    _EXEMPT_DIRS = {"tests", "benchmarks", "examples", "runtime"}

    def check(self, module: LintModule) -> Iterator[Finding]:
        from pathlib import PurePath

        parts = set(PurePath(module.path).parts)
        if self._EXEMPT_DIRS & parts:
            return
        if PurePath(module.path).name == "rng.py" and "repro" in parts:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(module, node) not in RNG_CONSTRUCTORS:
                continue
            if node.args and isinstance(node.args[0], ast.Tuple):
                yield self.finding(
                    module, node,
                    "raw tuple-seed RNG derivation — use "
                    "repro.rng.derive_rng(seed, k) for integer labels or "
                    "RunContext.stream(name) for named streams",
                )


@register
class FaultStreamRule(Rule):
    """R007: a FaultPlan built from an unmanaged RNG.

    Fault sampling must draw from its own named stream, or enabling
    ``--faults`` would shift the draw sequence of every other stream and
    change the structure under test.  A ``FaultPlan`` may therefore only
    be constructed from :func:`repro.rng.derive_rng` or a
    ``RunContext.stream(...)``/``fresh_stream(...)`` call — never from a
    generator whose provenance the runtime does not manage.
    """

    rule_id = "R007"
    name = "fault-stream-hygiene"
    description = (
        "FaultPlan constructed from an RNG that is not derive_rng(...) "
        "or a context .stream(...)/.fresh_stream(...) call"
    )

    _STREAM_METHODS = {"stream", "fresh_stream"}

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = qualified_name(node.func)
            if callee is None or callee.split(".")[-1] != "FaultPlan":
                continue
            rng_arg = self._rng_argument(node)
            if rng_arg is None:
                yield self.finding(
                    module, node,
                    "FaultPlan constructed without an explicit rng — pass "
                    "derive_rng(...) or context.stream('faults')",
                )
            elif not self._is_managed_stream(rng_arg):
                yield self.finding(
                    module, node,
                    "FaultPlan rng must come straight from "
                    "repro.rng.derive_rng(...) or a context "
                    ".stream(...)/.fresh_stream(...) call, so --faults "
                    "never perturbs any other stream",
                )

    @staticmethod
    def _rng_argument(call: ast.Call) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == "rng":
                return keyword.value
        if len(call.args) >= 2:
            return call.args[1]
        return None

    @classmethod
    def _is_managed_stream(cls, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "derive_rng"
        if isinstance(func, ast.Attribute):
            return (
                func.attr == "derive_rng"
                or func.attr in cls._STREAM_METHODS
            )
        return False


@register
class CrashStateRule(Rule):
    """R008: recovery code reading raw crash state.

    Self-healing code must learn about crashes the way a real system
    would — through the failure detector.  Reading ``FaultPlan.crashed``
    (or the private ``_crash_sets``/``_crash_entropy`` caches) outside
    ``repro/congest/`` gives recovery logic oracle knowledge the model
    does not grant and couples it to the fault-injection internals.
    Consume :class:`repro.congest.detector.CrashView` (via
    ``RunContext.crash_view_for`` or ``crash_view``) instead; inspecting
    the declarative ``plan.spec.crashes`` is fine.
    """

    rule_id = "R008"
    name = "raw-crash-state"
    description = (
        "crash state read via FaultPlan.crashed/_crash_sets outside "
        "repro/congest — consume the failure-detector CrashView instead"
    )

    _PRIVATE_ATTRS = {"_crash_sets", "_crash_entropy"}

    def check(self, module: LintModule) -> Iterator[Finding]:
        from pathlib import PurePath

        if "congest" in PurePath(module.path).parts:
            # The simulator and the detector are the two sanctioned
            # consumers; both live in repro/congest/.
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "crashed"
            ):
                yield self.finding(
                    module, node,
                    "`.crashed(...)` hands recovery code the ground-truth "
                    "crash schedule — consume a failure-detector "
                    "CrashView (repro.congest.detector) instead",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in self._PRIVATE_ATTRS
                and isinstance(node.ctx, ast.Load)
            ):
                yield self.finding(
                    module, node,
                    f"`.{node.attr}` is FaultPlan's private crash cache — "
                    "consume a failure-detector CrashView "
                    "(repro.congest.detector) instead",
                )


@register
class ChaosStreamRule(Rule):
    """R013: a ChaosPlan built off the named ``"chaos"`` stream.

    The chaos harness promises that enabling a failure campaign cannot
    perturb the run it attacks: kills, corruption, and fault windows
    are decided by draws from the dedicated ``"chaos"`` stream and
    nothing else.  A ``ChaosPlan`` constructed from any other generator
    — an unmanaged RNG, or a managed stream with a different name —
    breaks that isolation: the campaign would either consume another
    stream's draws (changing the structure under test, the failure
    mode R007 guards for fault plans) or stop being a pure function of
    the seed.  The rng argument must therefore be a
    :func:`repro.rng.derive_rng` or ``.stream(...)``/
    ``.fresh_stream(...)`` call whose arguments name the ``"chaos"``
    stream literally.
    """

    rule_id = "R013"
    name = "chaos-stream-hygiene"
    description = (
        "ChaosPlan constructed from an RNG that is not a "
        "derive_rng/.stream/.fresh_stream call naming the 'chaos' "
        "stream"
    )

    _STREAM_METHODS = FaultStreamRule._STREAM_METHODS

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = qualified_name(node.func)
            if callee is None or callee.split(".")[-1] != "ChaosPlan":
                continue
            rng_arg = self._rng_argument(node)
            if rng_arg is None:
                yield self.finding(
                    module, node,
                    "ChaosPlan constructed without an explicit rng — "
                    "pass derive_rng(seed, stream_entropy('chaos')) or "
                    "context.stream('chaos')",
                )
            elif not self._is_chaos_stream(rng_arg):
                yield self.finding(
                    module, node,
                    "ChaosPlan rng must come straight from the named "
                    "'chaos' stream (derive_rng with "
                    "stream_entropy('chaos'), or a context "
                    ".stream('chaos')/.fresh_stream('chaos') call), so "
                    "a failure campaign never perturbs the run it "
                    "attacks",
                )

    _rng_argument = staticmethod(FaultStreamRule._rng_argument)

    @classmethod
    def _is_chaos_stream(cls, node: ast.AST) -> bool:
        if not FaultStreamRule._is_managed_stream(node):
            return False
        return any(
            isinstance(child, ast.Constant) and child.value == "chaos"
            for child in ast.walk(node)
        )


def _walk_own_body(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested function definitions

    (nested functions are visited — and judged — on their own)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _local_bindings_params(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    params = {arg.arg for arg in fn.args.args}
    params.update(arg.arg for arg in fn.args.posonlyargs)
    params.update(arg.arg for arg in fn.args.kwonlyargs)
    if fn.args.vararg:
        params.add(fn.args.vararg.arg)
    if fn.args.kwarg:
        params.add(fn.args.kwarg.arg)
    return params
