"""Random-walk engines, the Lemma 2.5 scheduler, and mixing estimation."""

from .correlated import run_correlated_walks
from .cover import CoverEstimate, cover_time_bounds, estimate_cover_time
from .engine import WalkRun, run_lazy_walks, run_regular_walks
from .hitting import (
    expected_hitting_time,
    hitting_time_lower_bound,
    hitting_times,
)
from .mixing import (
    EXACT_LIMIT,
    empirical_tv_distance,
    estimate_mixing_time,
    estimate_regular_mixing_time,
    walk_length,
)
from .parallel import (
    ParallelWalkReport,
    degree_proportional_starts,
    run_parallel_walks,
)

__all__ = [
    "WalkRun",
    "run_correlated_walks",
    "CoverEstimate",
    "cover_time_bounds",
    "estimate_cover_time",
    "run_lazy_walks",
    "run_regular_walks",
    "expected_hitting_time",
    "hitting_time_lower_bound",
    "hitting_times",
    "EXACT_LIMIT",
    "empirical_tv_distance",
    "estimate_mixing_time",
    "estimate_regular_mixing_time",
    "walk_length",
    "ParallelWalkReport",
    "degree_proportional_starts",
    "run_parallel_walks",
]
