"""The parallel-walk scheduler of Lemmas 2.4 and 2.5.

Given that each node ``v`` starts at most ``k * d(v)`` walks, Lemma 2.4
bounds the per-step load at any node by ``O(k d(v) + log n)`` w.h.p., and
Lemma 2.5 schedules ``T`` steps of all walks in ``O((k + log n) T)``
CONGEST rounds.  :func:`run_parallel_walks` runs such a batch and reports
both the measured quantities and the lemma bounds side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from .engine import WalkRun, run_lazy_walks, run_regular_walks

__all__ = ["ParallelWalkReport", "degree_proportional_starts", "run_parallel_walks"]


@dataclass
class ParallelWalkReport:
    """Measured vs. predicted behaviour of one parallel-walk batch.

    Attributes:
        run: the underlying :class:`WalkRun`.
        k: walks-per-degree multiplicity of the batch.
        measured_rounds: Lemma 2.5 schedule length on measured congestion.
        predicted_rounds: the ``(k + log2 n) * T`` bound (constant 1).
        measured_peak_load: Lemma 2.4's max per-node token count, measured.
        predicted_peak_load: ``k * Delta + log2 n`` (constant 1).
    """

    run: WalkRun
    k: float
    measured_rounds: int
    predicted_rounds: float
    measured_peak_load: int
    predicted_peak_load: float

    @property
    def rounds_ratio(self) -> float:
        """Measured rounds over the Lemma 2.5 bound (should be O(1))."""
        return self.measured_rounds / max(1.0, self.predicted_rounds)

    @property
    def load_ratio(self) -> float:
        """Measured peak load over the Lemma 2.4 bound (should be O(1))."""
        return self.measured_peak_load / max(1.0, self.predicted_peak_load)


def degree_proportional_starts(graph: Graph, k: int) -> np.ndarray:
    """Start array with exactly ``k * d(v)`` walks at every node ``v``.

    This is the canonical Lemma 2.4 workload: one walk per arc, repeated
    ``k`` times, so the token distribution is stationary from step 0.
    """
    per_node = np.repeat(np.arange(graph.num_nodes), graph.degrees)
    return np.tile(per_node, k)


def run_parallel_walks(
    graph: Graph,
    starts: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    regular: bool = False,
) -> ParallelWalkReport:
    """Run a batch of parallel walks and report measured vs. bound.

    Args:
        graph: graph to walk on.
        starts: start node per walk.
        steps: synchronous steps ``T``.
        rng: randomness source.
        regular: use the ``2*Delta``-regular walk instead of the lazy walk.

    Returns:
        A :class:`ParallelWalkReport`; its ratios should stay ``O(1)`` for
        any workload satisfying the per-degree start condition.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.bincount(starts, minlength=graph.num_nodes)
    degrees = np.maximum(graph.degrees, 1)
    k = float(np.max(counts / degrees)) if starts.size else 0.0
    runner = run_regular_walks if regular else run_lazy_walks
    run = runner(graph, starts, steps, rng)
    log_n = math.log2(max(2, graph.num_nodes))
    return ParallelWalkReport(
        run=run,
        k=k,
        measured_rounds=run.schedule_rounds(),
        predicted_rounds=(k + log_n) * steps,
        measured_peak_load=run.peak_node_load(),
        predicted_peak_load=k * graph.max_degree + log_n,
    )
