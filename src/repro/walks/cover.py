"""Cover times of the lazy walk (Monte Carlo and classic bounds).

Background material for the walk machinery: the cover time — steps until
a single walk has visited every node — is the natural scale against which
the paper's "use many short walks, not one long one" design is measured
(cf. Alon et al., "Many random walks are faster than one", cited as [2]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph

__all__ = ["CoverEstimate", "estimate_cover_time", "cover_time_bounds"]


@dataclass
class CoverEstimate:
    """Monte-Carlo cover-time estimate.

    Attributes:
        mean: average steps to cover over the trials.
        std: sample standard deviation.
        trials: number of walks run.
        truncated: trials that hit the step cap before covering.
    """

    mean: float
    std: float
    trials: int
    truncated: int


def estimate_cover_time(
    graph: Graph,
    rng: np.random.Generator,
    trials: int = 24,
    start: int | None = None,
    max_steps: int | None = None,
) -> CoverEstimate:
    """Monte-Carlo estimate of the lazy-walk cover time.

    Args:
        graph: connected graph.
        rng: randomness source.
        trials: independent walks to average over.
        start: fixed start node (default: stationary-ish random starts).
        max_steps: per-trial cap (default ``50 n^3`` — far above the
            worst-case cover time scale).

    Returns:
        A :class:`CoverEstimate`.
    """
    if not graph.is_connected():
        raise ValueError("cover time of a disconnected graph diverges")
    n = graph.num_nodes
    if max_steps is None:
        max_steps = 50 * n**3
    indptr = graph.indptr
    indices = graph.indices
    degrees = graph.degrees
    times = []
    truncated = 0
    for _ in range(trials):
        position = (
            int(start)
            if start is not None
            else int(rng.integers(0, n))
        )
        visited = np.zeros(n, dtype=bool)
        visited[position] = True
        remaining = n - 1
        steps = 0
        while remaining and steps < max_steps:
            steps += 1
            if rng.random() < 0.5 and degrees[position] > 0:
                arc = indptr[position] + int(
                    rng.integers(0, degrees[position])
                )
                position = int(indices[arc])
                if not visited[position]:
                    visited[position] = True
                    remaining -= 1
        if remaining:
            truncated += 1
        times.append(steps)
    values = np.asarray(times, dtype=float)
    return CoverEstimate(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if trials > 1 else 0.0,
        trials=trials,
        truncated=truncated,
    )


def cover_time_bounds(graph: Graph) -> tuple[float, float]:
    """Classic cover-time sandwich for the lazy walk.

    Lower: ``(1 - o(1)) n ln n`` (coupon collecting is unavoidable).
    Upper: ``4 m n`` for the simple walk (Aleliunas et al.), doubled for
    laziness.

    Returns:
        ``(lower, upper)``.
    """
    n = graph.num_nodes
    m = graph.num_edges
    lower = n * math.log(max(2, n)) * 0.5
    upper = 2.0 * 4.0 * m * n
    return lower, upper
