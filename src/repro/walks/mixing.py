"""Mixing-time estimation: exact for small graphs, spectral for large.

The routing construction needs a walk length at least ``tau_mix``.  For
graphs up to :data:`EXACT_LIMIT` nodes we compute the exact Definition 2.1
mixing time by matrix powering; beyond that we use the relaxation-time
estimate ``t = ln(n^2 / min_u pi(u)) / gap`` from the standard
``|P^t - pi| <= sqrt(pi_max/pi_min) * (1 - gap)^t`` bound, which is an
upper bound of the same order for the families we simulate.
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import Graph
from ..graphs.properties import (
    mixing_time,
    regular_mixing_time,
    spectral_gap,
)
from .engine import run_lazy_walks

__all__ = [
    "EXACT_LIMIT",
    "estimate_mixing_time",
    "estimate_regular_mixing_time",
    "walk_length",
    "empirical_tv_distance",
]

#: Largest n for which the exact matrix-powering computation is used.
EXACT_LIMIT = 1200


def _spectral_estimate(graph: Graph, regular: bool) -> int:
    gap = spectral_gap(graph, regular=regular)
    if gap <= 0:
        raise ValueError("graph has zero spectral gap (disconnected?)")
    n = graph.num_nodes
    if regular:
        pi_min = 1.0 / n
    else:
        pi_min = graph.degrees.min() / (2.0 * graph.num_edges)
    return max(1, int(math.ceil(math.log(n * n / pi_min) / gap)))


def estimate_mixing_time(graph: Graph) -> int:
    """``tau_mix`` of the lazy walk: exact when feasible, else spectral."""
    if graph.num_nodes <= EXACT_LIMIT:
        return mixing_time(graph)
    return _spectral_estimate(graph, regular=False)


def estimate_regular_mixing_time(graph: Graph) -> int:
    """``tau_bar_mix`` of the ``2*Delta``-regular walk."""
    if graph.num_nodes <= EXACT_LIMIT:
        return regular_mixing_time(graph)
    return _spectral_estimate(graph, regular=True)


def walk_length(graph: Graph, slack: float = 2.0) -> int:
    """Walk length used by the construction: ``slack * tau_mix``.

    The paper's remark after Definition 2.1: running ``O(tau_mix)`` steps
    sharpens the stationarity deviation to ``1/n^c``.
    """
    return max(1, int(math.ceil(slack * estimate_mixing_time(graph))))


def empirical_tv_distance(
    graph: Graph,
    steps: int,
    rng: np.random.Generator,
    walks_per_node: int = 64,
) -> float:
    """Monte-Carlo total-variation distance from stationarity after ``steps``.

    Starts ``walks_per_node`` lazy walks at every node, runs them for
    ``steps`` steps, and compares the empirical end distribution with the
    degree-proportional stationary distribution.  Used by tests to sanity-
    check the exact mixing computation.
    """
    n = graph.num_nodes
    starts = np.repeat(np.arange(n), walks_per_node)
    run = run_lazy_walks(graph, starts, steps, rng)
    counts = np.bincount(run.positions, minlength=n).astype(float)
    empirical = counts / counts.sum()
    stationary = graph.degrees / (2.0 * graph.num_edges)
    return float(0.5 * np.abs(empirical - stationary).sum())
