"""Correlated parallel walks — the ``k = o(log n)`` refinement.

Lemma 2.5 schedules independent walks in ``O((k + log n) T)`` rounds; for
``k = o(log n)`` the additive ``log n`` (driven by Chernoff fluctuations
of independent edge choices) dominates and the bound is suboptimal
against the ``k T`` lower bound.  The paper notes (end of Section 2) that
this gap can be closed by running the walks *in a carefully correlated
fashion*, deferring details to the full version.

This module implements that idea with the standard token-balancing
correlation: per step, every node deals its resident tokens onto its
incident edges almost-evenly (a random rotation of a round-robin deal,
plus a lazy coin per token).  Properties:

* **Per-edge load is deterministic-ish**: a node holding ``t`` tokens
  sends at most ``ceil(t / (2 d(v)))``... more precisely at most
  ``ceil(moving / d(v))`` tokens per edge, so one step schedules in
  ``O(k + 1)`` rounds instead of ``O(k + log n)``.
* **Per-token marginal**: the random rotation makes each moving token's
  edge uniform among the ``d(v)`` incident edges, so each token's
  marginal law is exactly the lazy random walk (tokens are no longer
  independent, which is the point).

The stationary/mixing behaviour of the *marginals* is therefore
unchanged, and all the construction steps that only consume walk
endpoints (G0, level overlays, portals) can run on correlated batches.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from .engine import WalkRun

__all__ = ["run_correlated_walks"]


def run_correlated_walks(
    graph: Graph,
    starts: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    record_trajectory: bool = False,
) -> WalkRun:
    """Run token-balanced (correlated) lazy walks.

    Per step, each token first flips the lazy coin (stay w.p. 1/2); each
    node then deals its moving tokens over its incident edges by a
    uniformly rotated round-robin, so no edge carries more than
    ``ceil(moving_tokens / degree)`` tokens.

    Args:
        graph: graph to walk on.
        starts: start node per token.
        steps: synchronous steps.
        rng: randomness source.
        record_trajectory: attach a ``(steps+1, W)`` trajectory array.

    Returns:
        A :class:`WalkRun` whose measured congestion is near-optimal
        (``~ceil(k)`` per step for degree-proportional batches).
    """
    starts = np.asarray(starts, dtype=np.int64)
    positions = starts.copy()
    run = WalkRun(starts=starts, positions=positions, steps=steps)
    trajectory = [starts.copy()] if record_trajectory else None
    indptr = graph.indptr
    indices = graph.indices
    degrees = graph.degrees
    num_tokens = positions.shape[0]
    for _ in range(steps):
        move = rng.random(num_tokens) < 0.5
        move &= degrees[positions] > 0
        moving_idx = np.flatnonzero(move)
        if moving_idx.size:
            # Group moving tokens by node; deal each group round-robin
            # over the node's arcs, starting from a random rotation and in
            # a random token order (so each token's marginal is uniform).
            order = rng.permutation(moving_idx)
            nodes = positions[order]
            sort = np.argsort(nodes, kind="stable")
            order = order[sort]
            nodes = nodes[sort]
            boundaries = np.flatnonzero(
                np.diff(np.concatenate(([-1], nodes, [-1])))
            )
            chosen_arcs = np.empty(order.shape[0], dtype=np.int64)
            for lo, hi in zip(boundaries[:-1], boundaries[1:]):
                node = nodes[lo]
                degree = degrees[node]
                rotation = rng.integers(0, degree)
                offsets = (rotation + np.arange(hi - lo)) % degree
                chosen_arcs[lo:hi] = indptr[node] + offsets
            new_positions = positions.copy()
            new_positions[order] = indices[chosen_arcs]
            positions = new_positions
            arc_counts = np.bincount(chosen_arcs, minlength=graph.num_arcs)
            congestion = int(arc_counts.max())
        else:
            congestion = 0
        node_counts = np.bincount(positions, minlength=graph.num_nodes)
        run.edge_congestion.append(congestion)
        run.max_node_load.append(int(node_counts.max()))
        if trajectory is not None:
            trajectory.append(positions.copy())
    run.positions = positions
    if trajectory is not None:
        run.trajectory = np.stack(trajectory)  # type: ignore[attr-defined]
    return run
