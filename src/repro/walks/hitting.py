"""Exact hitting times of the lazy walk.

Quantifies the paper's opening observation: *"A random walk starting
from the packet source would be unlikely to get to the correct
destination, unless it is very long"* — the expected hitting time to a
target ``t`` is ``Theta(m / d(t))`` even on perfect expanders, which is
why blind walks do not route and the hierarchical structure is needed.

Computed exactly by solving the linear system
``h(v) = 1 + sum_u P(v, u) h(u)`` with ``h(t) = 0``.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.properties import lazy_transition_matrix

__all__ = ["hitting_times", "expected_hitting_time", "hitting_time_lower_bound"]


def hitting_times(graph: Graph, target: int) -> np.ndarray:
    """Expected lazy-walk steps from every node to ``target``.

    Args:
        graph: connected graph.
        target: absorbing node.

    Returns:
        Array ``h`` with ``h[target] == 0``.
    """
    if not graph.is_connected():
        raise ValueError("hitting times of a disconnected graph diverge")
    n = graph.num_nodes
    matrix = lazy_transition_matrix(graph)
    keep = np.arange(n) != target
    reduced = matrix[np.ix_(keep, keep)]
    solution = np.linalg.solve(
        np.eye(n - 1) - reduced, np.ones(n - 1)
    )
    result = np.zeros(n)
    result[keep] = solution
    return result


def expected_hitting_time(
    graph: Graph, source: int, target: int
) -> float:
    """Expected lazy-walk steps from ``source`` to ``target``."""
    return float(hitting_times(graph, target)[source])


def hitting_time_lower_bound(graph: Graph, target: int) -> float:
    """The ``m / d(t)`` stationary-return scale.

    The lazy walk's expected return time to ``t`` is ``2m / d(t) * 2``
    (the laziness doubles it); hitting from a stationary start is of the
    same order, which is the cost floor for blind-walk delivery.
    """
    return 2.0 * graph.num_edges / graph.degree(target)
