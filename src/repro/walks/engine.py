"""Vectorized random-walk engines with congestion measurement.

Every walk phase in the paper is scheduled by Lemma 2.5: one synchronous
walk *step* of all tokens costs (in CONGEST rounds) the maximum number of
tokens that must cross a single edge in that step.  The engines here
advance all tokens one step at a time with numpy and record exactly that
per-step maximum, so round accounting uses the *measured* congestion of
the true random process rather than the lemma's upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph

__all__ = [
    "WalkRun",
    "advance_lazy_step",
    "run_lazy_walks",
    "run_regular_walks",
]


def advance_lazy_step(
    positions: np.ndarray,
    move: np.ndarray,
    choice_u: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    num_arcs: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance all walks one lazy step over a CSR adjacency.

    The shared inner step of every walk engine in this repo —
    :func:`run_lazy_walks` here and the trajectory presampler in
    :mod:`repro.congest.walk_engine_vec` — so the arc choice is the
    *same arithmetic* everywhere: ``floor(u * degree)`` with the uniform
    ``choice_u``, truncated exactly like the scalar protocol's
    ``int(u * degree)``.

    Args:
        positions: current node per walk.
        move: per walk, whether it moves this step; must already fold in
            the stay coin AND the degree-0 guard.
        choice_u: uniform draw in ``[0, 1)`` per walk (consumed even for
            stays — the caller's draw order is part of its contract).
        indptr: CSR row pointers of the (possibly filtered) adjacency.
        indices: CSR neighbour array.
        degrees: out-degree per node in that adjacency.
        num_arcs: ``len(indices)`` (0 allowed: nothing moves).

    Returns:
        ``(new_positions, chosen_arcs)`` — the arc indices are
        meaningful only where ``move`` is True but stay in bounds
        everywhere, so callers can gather congestion stats unmasked.
    """
    offsets = (choice_u * degrees[positions]).astype(np.int64)
    chosen_arcs = indptr[positions] + offsets
    # Degree-0 positions never move, but their (meaningless) arc index
    # must stay in bounds for the vectorized gather.
    chosen_arcs = np.minimum(chosen_arcs, max(0, num_arcs - 1))
    if num_arcs:
        positions = np.where(move, indices[chosen_arcs], positions)
    return positions, chosen_arcs


@dataclass
class WalkRun:
    """Outcome of running a batch of independent walks.

    Attributes:
        starts: start node of each walk.
        positions: final node of each walk.
        steps: number of synchronous steps performed.
        edge_congestion: per step, the max number of tokens crossing any
            single edge (0 if no token moved that step).
        max_node_load: per step, the max number of tokens resident at any
            single node *after* the step (Lemma 2.4's quantity).
    """

    starts: np.ndarray
    positions: np.ndarray
    steps: int
    edge_congestion: list[int] = field(default_factory=list)
    max_node_load: list[int] = field(default_factory=list)

    @property
    def num_walks(self) -> int:
        """Number of walks in the batch."""
        return int(self.starts.shape[0])

    def schedule_rounds(self) -> int:
        """CONGEST rounds of the Lemma 2.5 schedule for this batch.

        Each step runs as one phase whose length is the max edge load
        (at least 1, since the step itself takes a round even if short).
        """
        return int(sum(max(1, c) for c in self.edge_congestion))

    def peak_node_load(self) -> int:
        """Worst per-node token load over all steps (Lemma 2.4)."""
        return max(self.max_node_load) if self.max_node_load else 0


def _step_stats(
    graph: Graph,
    positions: np.ndarray,
    chosen_arcs: np.ndarray,
    moved: np.ndarray,
) -> tuple[int, int]:
    """Measured (max arc load, max node load) for one completed step.

    Congestion is per *directed* arc: the CONGEST model allows one message
    per edge per direction per round, so opposite-direction tokens cross
    simultaneously.
    """
    if moved.any():
        arc_counts = np.bincount(chosen_arcs[moved], minlength=graph.num_arcs)
        edge_congestion = int(arc_counts.max())
    else:
        edge_congestion = 0
    node_counts = np.bincount(positions, minlength=graph.num_nodes)
    return edge_congestion, int(node_counts.max())


def run_lazy_walks(
    graph: Graph,
    starts: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    record_trajectory: bool = False,
) -> WalkRun:
    """Run lazy random walks (stay w.p. 1/2, else uniform incident edge).

    Args:
        graph: the graph to walk on.
        starts: start node per walk, shape ``(W,)``.
        steps: number of synchronous steps.
        rng: randomness source.
        record_trajectory: if True, attach ``run.trajectory`` of shape
            ``(steps + 1, W)`` (memory-heavy; for tests).

    Returns:
        A :class:`WalkRun` with measured per-step congestion.
    """
    starts = np.asarray(starts, dtype=np.int64)
    positions = starts.copy()
    run = WalkRun(starts=starts, positions=positions, steps=steps)
    trajectory = [starts.copy()] if record_trajectory else None
    indptr = graph.indptr
    degrees = graph.degrees
    for _ in range(steps):
        move = rng.random(positions.shape[0]) < 0.5
        move &= degrees[positions] > 0
        positions, chosen_arcs = advance_lazy_step(
            positions, move, rng.random(positions.shape[0]),
            indptr, graph.indices, degrees, graph.num_arcs,
        )
        congestion, node_load = _step_stats(graph, positions, chosen_arcs, move)
        run.edge_congestion.append(congestion)
        run.max_node_load.append(node_load)
        if trajectory is not None:
            trajectory.append(positions.copy())
    run.positions = positions
    if trajectory is not None:
        run.trajectory = np.stack(trajectory)  # type: ignore[attr-defined]
    return run


def run_regular_walks(
    graph: Graph,
    starts: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    record_trajectory: bool = False,
) -> WalkRun:
    """Run ``2*Delta``-regular walks (Definition 2.2).

    Each token moves to each incident edge w.p. ``1/(2*Delta)`` and stays
    otherwise, giving a uniform stationary distribution.
    """
    starts = np.asarray(starts, dtype=np.int64)
    positions = starts.copy()
    run = WalkRun(starts=starts, positions=positions, steps=steps)
    trajectory = [starts.copy()] if record_trajectory else None
    indptr = graph.indptr
    degrees = graph.degrees
    delta = max(1, graph.max_degree)
    for _ in range(steps):
        move_probability = degrees[positions] / (2.0 * delta)
        move = rng.random(positions.shape[0]) < move_probability
        offsets = (
            rng.random(positions.shape[0]) * degrees[positions]
        ).astype(np.int64)
        # Guard isolated nodes (degree 0): they never move.
        offsets = np.minimum(offsets, np.maximum(degrees[positions] - 1, 0))
        chosen_arcs = indptr[positions] + offsets
        chosen_arcs = np.minimum(chosen_arcs, max(0, graph.num_arcs - 1))
        if graph.num_arcs:
            positions = np.where(move, graph.indices[chosen_arcs], positions)
        congestion, node_load = _step_stats(graph, positions, chosen_arcs, move)
        run.edge_congestion.append(congestion)
        run.max_node_load.append(node_load)
        if trajectory is not None:
            trajectory.append(positions.copy())
    run.positions = positions
    if trajectory is not None:
        run.trajectory = np.stack(trajectory)  # type: ignore[attr-defined]
    return run
