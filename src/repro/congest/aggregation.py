"""Pipelined upcast over a BFS tree — the classic ``O(D + k)`` primitive.

Collecting ``k`` distinct items at a root naively costs ``O(D * k)``
rounds; pipelining sends one item per tree edge per round, smallest
first, for ``O(D + k)``.  This is the engine of the Kutten–Peleg /
Garay–Kutten–Peleg phase-2 aggregation our GKP baseline accounts for;
here it runs as real message passing so its round count can be checked
against the ``D + k`` claim.

The variant implemented collects the ``k`` globally smallest keyed items
(each node starts with a set of items; duplicates by key are merged).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .network import Network, NodeAlgorithm
from .primitives import build_bfs_tree

__all__ = ["pipelined_min_collect"]


class _PipelineNode(NodeAlgorithm):
    """Forwards its pending items upward, smallest key first.

    A node may not know when descendants are done, so it sends a ``done``
    marker once its own buffer is empty and all children reported done.
    """

    def __init__(self, context, parent: Optional[int], items, limit: int):
        super().__init__(context)
        self.parent = parent
        self.limit = limit
        self.buffer = sorted(items)
        self.children_pending = set()
        self.collected = []
        self.done_sent = False

    def _outbox(self) -> Mapping[int, tuple]:
        if self.parent is None:
            # Root: absorb everything; the smallest `limit` are selected
            # once all children have reported done.
            self.collected.extend(self.buffer)
            self.buffer.clear()
            if not self.children_pending:
                self.finished = True
            return {}
        if self.buffer:
            item = self.buffer.pop(0)
            return {self.parent: ("item",) + item}
        if not self.children_pending and not self.done_sent:
            self.done_sent = True
            self.finished = True
            return {self.parent: ("done",)}
        return {}

    def initialize(self) -> Mapping[int, tuple]:
        return self._outbox()

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            if payload[0] == "item":
                item = tuple(payload[1:])
                # Insert keeping the buffer sorted (key-first tuples).
                position = 0
                while (
                    position < len(self.buffer)
                    and self.buffer[position] < item
                ):
                    position += 1
                self.buffer.insert(position, item)
            elif payload[0] == "done":
                self.children_pending.discard(sender)
        return self._outbox()


def pipelined_min_collect(
    network: Network,
    root: int,
    items_per_node: Sequence[Sequence[tuple]],
    limit: int,
) -> tuple[list[tuple], int]:
    """Collect the ``limit`` smallest items at ``root`` by pipelined upcast.

    Args:
        network: the CONGEST network.
        root: collection root.
        items_per_node: per node, an iterable of key-first tuples (at
            most 3 words each, to fit the message budget with the tag).
        limit: how many smallest items the root should end up with.

    Returns:
        ``(collected items in sorted order, rounds used)`` — rounds
        include the BFS-tree construction.

    Note:
        The pipeline forwards *all* items upward (simple and always
        correct); the ``O(D + k)`` bound holds when the total item count
        is ``O(k)``, the regime GKP uses it in (one candidate per
        fragment).
    """
    graph = network.graph
    parents, depths, bfs_rounds = build_bfs_tree(network, root)
    algorithms = []
    for v in range(graph.num_nodes):
        parent = None if v == root else parents[v]
        algorithms.append(
            _PipelineNode(
                network.context(v), parent, items_per_node[v], limit
            )
        )
    for v in range(graph.num_nodes):
        if v != root:
            algorithms[parents[v]].children_pending.add(v)
    stats = network.run(algorithms, max_rounds=100 * graph.num_nodes + 100)
    root_algorithm = algorithms[root]
    collected = sorted(root_algorithm.collected)[:limit]
    return collected, bfs_rounds + stats.rounds
