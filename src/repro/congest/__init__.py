"""Synchronous CONGEST-model simulator and standard primitives."""

from .aggregation import pipelined_min_collect
from .detector import (
    MAX_WAIT_ROUNDS,
    CrashView,
    DetectionReport,
    HeartbeatNode,
    crash_view,
    run_heartbeat_detector,
)
from .faults import (
    CrashWindow,
    DeliveryTimeout,
    FaultPlan,
    FaultRecord,
    FaultSpec,
)
from .forwarding import TokenForwarder, forward_demands
from .leader import disseminate_seed, elect_leader
from .native import (
    NativeG0,
    NativeLevel,
    WalkReplay,
    build_native_g0,
    build_native_level1,
    replay_walk_run,
)
from .network import (
    MESSAGE_WORD_LIMIT,
    CongestViolation,
    Network,
    NodeAlgorithm,
    NodeContext,
    RunStats,
)
from .primitives import BfsNode, broadcast_value, build_bfs_tree
from .reliable import (
    DeliveryReport,
    ReliableForwarder,
    reliable_forward_demands,
)
from .walk_engine_vec import (
    TrajectoryBatch,
    VecPassStats,
    VecProtocolResult,
    forward_pass_vec,
    run_walk_protocol_vec,
    sample_trajectories,
    simulate_walk_timing,
)
from .walk_protocol import WalkProtocolOutcome, run_walk_protocol
from .walk_state import ForwardWalkNode, ReverseWalkNode, WalkState, WalkTape

__all__ = [
    "MAX_WAIT_ROUNDS",
    "MESSAGE_WORD_LIMIT",
    "CongestViolation",
    "CrashView",
    "CrashWindow",
    "DetectionReport",
    "HeartbeatNode",
    "crash_view",
    "run_heartbeat_detector",
    "DeliveryReport",
    "DeliveryTimeout",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "ReliableForwarder",
    "reliable_forward_demands",
    "Network",
    "NodeAlgorithm",
    "NodeContext",
    "RunStats",
    "pipelined_min_collect",
    "NativeG0",
    "NativeLevel",
    "WalkReplay",
    "build_native_level1",
    "build_native_g0",
    "replay_walk_run",
    "TokenForwarder",
    "forward_demands",
    "disseminate_seed",
    "elect_leader",
    "BfsNode",
    "broadcast_value",
    "build_bfs_tree",
    "WalkProtocolOutcome",
    "run_walk_protocol",
    "ForwardWalkNode",
    "ReverseWalkNode",
    "WalkState",
    "WalkTape",
    "TrajectoryBatch",
    "VecPassStats",
    "VecProtocolResult",
    "forward_pass_vec",
    "run_walk_protocol_vec",
    "sample_trajectories",
    "simulate_walk_timing",
]
