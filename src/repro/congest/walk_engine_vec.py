"""Array-native walk-protocol engine (the scalar simulation, vectorized).

The scalar walk protocol in :mod:`repro.congest.walk_protocol` executes
the paper's Section 3.1.1 mechanic one Python dict operation at a time:
per-node FIFO queues, one token per edge-direction per round, remembered
directions, reversal.  That is the semantic oracle — and the wall-clock
ceiling of the native pipeline.  This module produces the *identical*
execution from flat numpy arrays, in two stages:

1. **Trajectory presampling** (:func:`sample_trajectories`).  Because
   every walk reads its lazy-step decisions off the shared
   :class:`~repro.congest.walk_state.WalkTape` at index
   ``(length - ttl, walk_id)``, a walk's node sequence is independent of
   message timing.  All trajectories are therefore computed up front as
   a batched CSR gather per step — the same loop shape as
   :func:`repro.walks.engine.run_lazy_walks` — and compressed into a
   per-walk *move list* (stays dropped).

2. **Timing simulation** (:func:`simulate_walk_timing`).  What remains
   of the protocol is pure queueing: each move is a token in the FIFO
   queue of its ``(sender, target)`` node pair, each round every
   nonempty unblocked queue emits its head, and deliveries re-enqueue
   the walk's next move.  Queues are array-backed linked lists (the
   :class:`~repro.baselines.routing_baselines._SchedulerState` idiom),
   so one CONGEST round costs a handful of numpy ops over the busy
   queues.  The round/message/parked accounting replicates
   :meth:`repro.congest.network.Network.run` — including its faulty
   twin for crash windows under a self-heal
   :class:`~repro.congest.detector.CrashView` — event for event, which
   the equivalence suite in ``tests/congest/test_walk_engine_vec.py``
   asserts against the scalar oracle.

Equivalence invariants the timing simulation encodes (each mirrors a
line of the scalar code):

* Queues are keyed by the ``(owner, target-node)`` pair — parallel
  edges of a multigraph share one queue and one wire slot, exactly like
  the scalar ``dict[target, deque]`` plus the sender-keyed inbox.
* Within a round, deliveries are processed in ascending sender order
  (the network builds inboxes by iterating senders ``0..n-1`` and dict
  order preserves insertion), so same-queue appends sort by
  ``(queue, delivering sender)``.
* Initial forward appends sort by walk id within a queue (nodes admit
  their tokens in walk order); initial reverse appends sort by the
  forward *finish order* ``(finish round, finish sender, walk id)``.
* A delivered token that re-enqueues may be emitted in the same round
  (the scalar ``receive`` admits before ``_outbox`` runs).
* With a crash view, the queue ``(u, t)`` emits at the end of round
  ``r`` iff ``u`` is up at ``r`` (its ``receive`` ran; the round-0
  ``initialize`` always runs) and both ``u`` and ``t`` are up at the
  delivery round ``r + 1``; a nonempty queue whose owner is up but
  which is blocked parks (``parked += 1``) — the self-heal charge.
* Rounds tick while any queue is nonempty even if every queue is
  parked, and the run ends when no delivery is in flight and all
  queues are empty.

The engine handles fault-free runs and crash-only fault plans under
self-heal (crash-only plans draw nothing from the sequential link-fault
stream, so both engines see the same :class:`CrashView` and nothing
else).  Wire-level fault rates (drop/duplicate/delay) and fail-fast
crash runs stay on the scalar path — their per-message RNG draws are
inherently sequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..walks.engine import advance_lazy_step
from .detector import CrashView
from .walk_state import WalkTape

__all__ = [
    "TrajectoryBatch",
    "VecPassStats",
    "VecProtocolResult",
    "forward_pass_vec",
    "run_walk_protocol_vec",
    "sample_trajectories",
    "simulate_walk_timing",
]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class TrajectoryBatch:
    """Presampled trajectories of a walk batch, as per-walk move lists.

    Attributes:
        origins: start node per walk.
        active: per walk, False for orphans (dead origins) — they hold
            no moves and never finish.
        endpoints: final node per walk (-1 for inactive walks).
        mv_ptr: CSR pointers, walk ``w``'s moves are ``mv_ptr[w]`` to
            ``mv_ptr[w + 1]``.
        mv_sender: per move, the node the token departs from.
        mv_target: per move, the node the token crosses to.
    """

    origins: np.ndarray
    active: np.ndarray
    endpoints: np.ndarray
    mv_ptr: np.ndarray
    mv_sender: np.ndarray
    mv_target: np.ndarray

    def move_counts(self) -> np.ndarray:
        """Number of moves per walk."""
        return np.diff(self.mv_ptr)


def sample_trajectories(
    graph: Graph,
    starts: np.ndarray,
    tape: WalkTape,
    dead: frozenset = frozenset(),
    active: Optional[np.ndarray] = None,
) -> TrajectoryBatch:
    """Batch-sample every walk's node sequence off the decision tape.

    Args:
        graph: the base graph.
        starts: origin per walk.
        tape: the shared decision tape (its ``num_walks`` must cover
            ``starts``).
        dead: permanently crashed nodes — walks step around them on the
            live subgraph, matching the scalar ``avoid`` filter.
        active: optional per-walk mask; inactive walks (orphans) get no
            moves and endpoint -1.

    Returns:
        A :class:`TrajectoryBatch`.
    """
    starts = np.asarray(starts, dtype=np.int64)
    n = graph.num_nodes
    num_walks = int(starts.shape[0])
    if active is None:
        active = np.ones(num_walks, dtype=bool)
    if dead:
        dead_mask = np.zeros(n, dtype=bool)
        dead_mask[np.fromiter(dead, dtype=np.int64, count=len(dead))] = True
        keep = ~dead_mask[graph.indices]
        live_indices = graph.indices[keep]
        live_deg = np.bincount(
            graph.arc_tails[keep], minlength=n
        ).astype(np.int64)
        live_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(live_deg, out=live_indptr[1:])
    else:
        live_indices = graph.indices
        live_deg = graph.degrees
        live_indptr = graph.indptr
    num_live_arcs = int(live_indices.shape[0])
    positions = np.where(active, starts, 0).astype(np.int64)
    # targets[s, w]: node walk w crossed to at step s, or -1 for a stay.
    targets = np.full((tape.length, num_walks), -1, dtype=np.int64)
    for step in range(tape.length):
        move = active & (live_deg[positions] > 0)
        move &= tape.stay_u[step] >= 0.5
        positions, _ = advance_lazy_step(
            positions, move, tape.choice_u[step],
            live_indptr, live_indices, live_deg, num_live_arcs,
        )
        targets[step] = np.where(move, positions, -1)
    endpoints = np.where(active, positions, -1)
    # Compress to walk-major move lists (the order tokens consume them).
    moved = targets >= 0
    counts = moved.sum(axis=0).astype(np.int64)
    mv_ptr = np.zeros(num_walks + 1, dtype=np.int64)
    np.cumsum(counts, out=mv_ptr[1:])
    mv_target = targets.T[moved.T]
    total = int(mv_target.shape[0])
    mv_sender = np.empty(total, dtype=np.int64)
    has_moves = counts > 0
    is_first = np.zeros(total, dtype=bool)
    is_first[mv_ptr[:-1][has_moves]] = True
    mv_sender[is_first] = starts[has_moves]
    rest = np.flatnonzero(~is_first)
    mv_sender[rest] = mv_target[rest - 1]
    return TrajectoryBatch(
        origins=starts,
        active=active,
        endpoints=endpoints,
        mv_ptr=mv_ptr,
        mv_sender=mv_sender,
        mv_target=mv_target,
    )


def _append_batch(
    qids: np.ndarray,
    walks: np.ndarray,
    keys: np.ndarray,
    q_first: np.ndarray,
    q_last: np.ndarray,
    next_in: np.ndarray,
) -> np.ndarray:
    """Enqueue one round's tokens, ordered by ``(queue, key)``.

    Links ``walks`` into the per-queue lists; returns the queues that
    were empty before (the caller adds them to its busy set).
    """
    order = np.lexsort((keys, qids))
    qs = qids[order]
    ws = walks[order]
    count = int(ws.shape[0])
    if count == 0:
        return _EMPTY
    next_in[ws[:-1]] = np.where(qs[:-1] == qs[1:], ws[1:], -1)
    next_in[ws[-1]] = -1
    run_start = np.ones(count, dtype=bool)
    run_start[1:] = qs[1:] != qs[:-1]
    start_idx = np.flatnonzero(run_start)
    run_q = qs[start_idx]
    heads = ws[start_idx]
    tails = ws[np.append(start_idx[1:] - 1, count - 1)]
    was_empty = q_first[run_q] == -1
    filled = run_q[~was_empty]
    next_in[q_last[filled]] = heads[~was_empty]
    q_first[run_q[was_empty]] = heads[was_empty]
    q_last[run_q] = tails
    return run_q[was_empty]


@dataclass
class VecPassStats:
    """Round accounting of one simulated protocol pass.

    ``finish_round``/``finish_sender`` are -1 for walks that never
    travelled (no moves) — the caller owns their bookkeeping.
    """

    rounds: int
    messages: int
    parked: int
    finish_round: np.ndarray
    finish_sender: np.ndarray


def simulate_walk_timing(
    num_nodes: int,
    mv_ptr: np.ndarray,
    mv_sender: np.ndarray,
    mv_target: np.ndarray,
    init_key: np.ndarray,
    view: Optional[CrashView] = None,
    max_rounds: int = 1_000_000,
) -> VecPassStats:
    """Execute one pass of the walk protocol's queueing, round by round.

    This is the round executor of the vectorized engine: it *is* the
    CONGEST execution (rounds, messages, parked waits), exported in the
    returned :class:`VecPassStats` for the caller to charge — the same
    contract :meth:`Network.run` has with its callers, and what keeps
    reprolint's R009 ledger-coverage rule satisfied.

    Args:
        num_nodes: ``n`` of the base graph.
        mv_ptr: per-walk CSR pointers into the move arrays.
        mv_sender: departure node per move.
        mv_target: arrival node per move.
        init_key: per walk, the within-queue ordering key of its first
            move's initial append (walk id on the forward pass, forward
            finish rank on the reverse pass).
        view: optional self-heal crash view; emissions into a crash
            window park instead of sending, byte-for-byte like the
            scalar ``_blocked`` check.
        max_rounds: hard budget, mirroring the network's.

    Returns:
        A :class:`VecPassStats`.

    Raises:
        RuntimeError: if the budget is exhausted (the caller converts
            this to a DeliveryTimeout under active faults, like the
            scalar ``_run_pass``).
    """
    num_walks = int(mv_ptr.shape[0]) - 1
    finish_round = np.full(num_walks, -1, dtype=np.int64)
    finish_sender = np.full(num_walks, -1, dtype=np.int64)
    total = int(mv_target.shape[0])
    if total == 0:
        return VecPassStats(0, 0, 0, finish_round, finish_sender)
    pair = mv_sender * num_nodes + mv_target
    uniq, mv_qid = np.unique(pair, return_inverse=True)
    q_sender = (uniq // num_nodes).astype(np.int64)
    q_target = (uniq % num_nodes).astype(np.int64)
    q_first = np.full(uniq.shape[0], -1, dtype=np.int64)
    q_last = np.full(uniq.shape[0], -1, dtype=np.int64)
    next_in = np.full(num_walks, -1, dtype=np.int64)
    # wptr[w]: global index of w's currently queued / in-flight move.
    wptr = np.zeros(num_walks, dtype=np.int64)
    counts = np.diff(mv_ptr)
    travellers = np.flatnonzero(counts > 0)
    wptr[travellers] = mv_ptr[travellers]
    init_key = np.asarray(init_key, dtype=np.int64)
    busy = _append_batch(
        mv_qid[mv_ptr[travellers]], travellers, init_key[travellers],
        q_first, q_last, next_in,
    )
    messages = 0
    parked = 0

    if view is not None:
        windows = [
            (int(s), int(e), np.fromiter(nodes, dtype=np.int64, count=len(nodes)))
            for s, e, nodes in view.windows
        ]

        def down_mask(round_number: int) -> np.ndarray:
            mask = np.zeros(num_nodes, dtype=bool)
            for start, end, nodes in windows:
                if start <= round_number <= end:
                    mask[nodes] = True
            return mask

    def emit(round_number: int) -> np.ndarray:
        nonlocal busy, parked
        if not busy.shape[0]:
            return _EMPTY
        if view is None:
            emit_q = busy
            held = _EMPTY
        else:
            down_next = down_mask(round_number + 1)
            blocked = down_next[q_sender[busy]] | down_next[q_target[busy]]
            if round_number > 0:
                awake = ~down_mask(round_number)[q_sender[busy]]
            else:
                # initialize() runs for every node, crashed or not.
                awake = np.ones(busy.shape[0], dtype=bool)
            eligible = awake & ~blocked
            parked += int(np.count_nonzero(awake & blocked))
            emit_q = busy[eligible]
            held = busy[~eligible]
        heads = q_first[emit_q]
        q_first[emit_q] = next_in[heads]
        still = q_first[emit_q] != -1
        busy = np.concatenate((held, emit_q[still]))
        return heads

    in_flight = emit(0)
    rounds = 0
    while in_flight.shape[0] or busy.shape[0]:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(
                f"walk timing simulation did not terminate within "
                f"{max_rounds} rounds"
            )
        messages += int(in_flight.shape[0])
        if in_flight.shape[0]:
            move = wptr[in_flight]
            last = (move + 1) == mv_ptr[in_flight + 1]
            done = in_flight[last]
            finish_round[done] = rounds
            finish_sender[done] = mv_sender[move[last]]
            advancing = in_flight[~last]
            if advancing.shape[0]:
                next_move = move[~last] + 1
                wptr[advancing] = next_move
                fresh = _append_batch(
                    mv_qid[next_move], advancing, mv_sender[move[~last]],
                    q_first, q_last, next_in,
                )
                if fresh.shape[0]:
                    busy = np.concatenate((busy, fresh))
        in_flight = emit(rounds)
    return VecPassStats(rounds, messages, parked, finish_round, finish_sender)


@dataclass
class VecProtocolResult:
    """Forward + reverse execution of the whole protocol.

    Field meanings match :class:`~repro.congest.walk_protocol.
    WalkProtocolOutcome`; ``parked`` is the self-heal wait total across
    both passes, ``batch`` keeps the trajectories (the native build
    reads embedded paths off it).
    """

    endpoints: np.ndarray
    returned_to: np.ndarray
    forward_rounds: int
    reverse_rounds: int
    messages: int
    parked: int
    batch: TrajectoryBatch


def run_walk_protocol_vec(
    graph: Graph,
    starts: np.ndarray,
    tape: WalkTape,
    view: Optional[CrashView] = None,
    dead: frozenset = frozenset(),
    active: Optional[np.ndarray] = None,
    max_rounds: int = 1_000_000,
) -> VecProtocolResult:
    """Run both protocol passes through the array engine.

    The caller (:func:`repro.congest.walk_protocol.run_walk_protocol`)
    owns fault normalization, orphan detection and ledger charges; this
    function owns the execution.
    """
    batch = sample_trajectories(graph, starts, tape, dead=dead, active=active)
    num_walks = int(batch.origins.shape[0])
    forward = simulate_walk_timing(
        graph.num_nodes, batch.mv_ptr, batch.mv_sender, batch.mv_target,
        init_key=np.arange(num_walks, dtype=np.int64),
        view=view, max_rounds=max_rounds,
    )
    counts = batch.move_counts()
    finish_round = forward.finish_round.copy()
    finish_sender = forward.finish_sender.copy()
    # Walks that never moved finish during __init__: round 0, no sender.
    home = batch.active & (counts == 0)
    finish_round[home] = 0
    # Reverse moves: each walk's forward moves, reversed and flipped.
    total = int(batch.mv_target.shape[0])
    if total:
        walk_of = np.repeat(np.arange(num_walks, dtype=np.int64), counts)
        flat = np.arange(total, dtype=np.int64)
        flipped = batch.mv_ptr[walk_of] + batch.mv_ptr[walk_of + 1] - 1 - flat
        rv_sender = batch.mv_target[flipped]
        rv_target = batch.mv_sender[flipped]
    else:
        rv_sender = batch.mv_sender
        rv_target = batch.mv_target
    # Reverse launch order per endpoint = forward finish order there.
    finish_order = np.lexsort(
        (np.arange(num_walks, dtype=np.int64), finish_sender, finish_round)
    )
    finish_rank = np.empty(num_walks, dtype=np.int64)
    finish_rank[finish_order] = np.arange(num_walks, dtype=np.int64)
    reverse = simulate_walk_timing(
        graph.num_nodes, batch.mv_ptr, rv_sender, rv_target,
        init_key=finish_rank, view=view, max_rounds=max_rounds,
    )
    # Reversal retraces the recorded path, so every surviving token ends
    # at its origin (the scalar astray check is re-run by the caller).
    returned = np.where(batch.active, batch.origins, -1)
    return VecProtocolResult(
        endpoints=batch.endpoints,
        returned_to=returned,
        forward_rounds=forward.rounds,
        reverse_rounds=reverse.rounds,
        messages=forward.messages + reverse.messages,
        parked=forward.parked + reverse.parked,
        batch=batch,
    )


def forward_pass_vec(
    graph: Graph,
    starts: np.ndarray,
    tape: WalkTape,
    max_rounds: int = 1_000_000,
) -> tuple[np.ndarray, TrajectoryBatch, int]:
    """Forward pass only, for the native G0 build (clean wire).

    Returns ``(endpoints, batch, rounds)``; the batch's move lists are
    the embedded paths (origin first, stays omitted).
    """
    batch = sample_trajectories(graph, np.asarray(starts, np.int64), tape)
    stats = simulate_walk_timing(
        graph.num_nodes, batch.mv_ptr, batch.mv_sender, batch.mv_target,
        init_key=np.arange(batch.origins.shape[0], dtype=np.int64),
        max_rounds=max_rounds,
    )
    return batch.endpoints, batch, stats.rounds
