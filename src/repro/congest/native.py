"""A CONGEST-native ``G0``: overlay edges as embedded paths.

The fastest paths in this library treat overlay graphs abstractly and
charge measured emulation costs.  This module builds the level-zero
overlay the way the distributed algorithm actually does, end to end:

1. the construction walks run through the message-passing walk protocol
   (per-edge queues, remembered directions, reversal);
2. every overlay edge *keeps the walk path that created it* — the
   embedded route its messages will travel;
3. delivering one message per overlay edge (one native ``G0`` round) is
   executed by store-and-forward scheduling of those embedded paths
   under unit edge capacity.

The native round cost is then compared against the vectorized
calibration of :func:`repro.core.embedding.build_g0` (see
``tests/congest/test_native.py``) — closing the loop between the
accounted and the executed pipeline.

The construction walks default to the array-native engine
(:mod:`repro.congest.walk_engine_vec`), which executes the identical
protocol — same tape, same queues, same rounds — from flat numpy state,
keeping base graphs up to ``n ~ 4096`` practical; the per-node scalar
simulation is retained (``engine="scalar"``) as the equivalence oracle.
The level-1 construction batches its sampling walks over the overlay
CSR and assembles the embedded chains with array ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain as _chain

import numpy as np

from ..baselines.routing_baselines import schedule_paths, schedule_paths_csr
from ..graphs.graph import Graph
from ..rng import derive_rng
from .forwarding import forward_demands
from .network import Network
from .walk_engine_vec import forward_pass_vec
from .walk_state import ForwardWalkNode, WalkState, WalkTape

__all__ = [
    "NativeG0",
    "NativeLevel",
    "WalkReplay",
    "build_native_g0",
    "build_native_level1",
    "replay_walk_run",
]


@dataclass
class NativeG0:
    """A level-zero overlay with embedded paths.

    Attributes:
        graph: the base graph.
        overlay: the overlay graph over virtual-node ids.
        vnode_host: real node of each virtual node.
        edge_paths: per overlay edge, the real-node path embedding it
            (from the tail's host to the head's host).
        build_rounds: CONGEST rounds of the construction (forward +
            reverse walk protocol).
        round_rounds: measured rounds of one native overlay round
            (one message per overlay edge, both directions).
    """

    graph: Graph
    overlay: Graph
    vnode_host: np.ndarray
    edge_paths: list[list[int]]
    build_rounds: int
    round_rounds: int


def _forward_pass_with_paths(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    seed: int,
    validate: str = "full",
    engine: str = "vectorized",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Run the forward walk protocol and reconstruct each token's path.

    Both engines read the same :class:`WalkTape`, so endpoints, paths
    and rounds are bit-identical; ``engine="scalar"`` runs the per-node
    oracle through the simulator, the default runs the array engine.
    Returns ``(endpoints, flat, pptr, rounds)``; walk ``w``'s path is
    ``flat[pptr[w]:pptr[w + 1]]`` — the real nodes the token moved
    through (stays omitted), starting at its origin.
    """
    starts = np.asarray(starts, dtype=np.int64)
    num_walks = int(starts.shape[0])
    tape = WalkTape.sample(seed, num_walks, length)
    if engine == "vectorized":
        endpoints, batch, rounds = forward_pass_vec(graph, starts, tape)
        # Inflate the move CSR into per-walk paths (origin first).
        counts = batch.move_counts()
        pptr = np.zeros(num_walks + 1, dtype=np.int64)
        np.cumsum(counts + 1, out=pptr[1:])
        flat = np.empty(int(pptr[-1]), dtype=np.int64)
        flat[pptr[:-1]] = starts
        content = np.ones(flat.shape[0], dtype=bool)
        content[pptr[:-1]] = False
        flat[content] = batch.mv_target
        return endpoints, flat, pptr, rounds
    if engine != "scalar":
        raise ValueError(
            f"engine must be 'vectorized' or 'scalar', got {engine!r}"
        )
    network = Network(graph)
    n = graph.num_nodes
    states = [WalkState() for _ in range(n)]
    per_node: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for walk_id, origin in enumerate(starts):
        per_node[int(origin)].append((walk_id, length))
    forward = [
        ForwardWalkNode(network.context(v), states[v], tape, per_node[v])
        for v in range(n)
    ]
    stats = network.run(
        forward, max_rounds=10000 * (length + 1), validate=validate
    )
    endpoints = np.full(starts.shape[0], -1, dtype=np.int64)
    for v, state in enumerate(states):
        for walk_id in state.finished_here:
            endpoints[walk_id] = v
    # Reconstruct paths by replaying the reversal centrally: pop the
    # visit stacks from the endpoint back to the origin.
    stacks = [
        {walk: list(senders) for walk, senders in state.visit_stack.items()}
        for state in states
    ]
    paths: list[list[int]] = []
    for walk_id, origin in enumerate(starts):
        node = int(endpoints[walk_id])
        reverse_path = [node]
        while True:
            stack = stacks[node].get(walk_id)
            if not stack:
                break
            node = stack.pop()
            reverse_path.append(node)
        if reverse_path[-1] != int(origin):
            raise RuntimeError("path reconstruction lost the origin")
        paths.append(list(reversed(reverse_path)))
    pptr = np.zeros(num_walks + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter(map(len, paths), dtype=np.int64, count=num_walks),
        out=pptr[1:],
    )
    flat = np.fromiter(
        _chain.from_iterable(paths), dtype=np.int64, count=int(pptr[-1])
    )
    return endpoints, flat, pptr, stats.rounds


def _reverse_rows_csr(flat: np.ndarray, pptr: np.ndarray) -> np.ndarray:
    """Reverse each CSR row in place-order: row ``w`` of the result is
    row ``w`` of ``flat`` backwards."""
    total = int(flat.shape[0])
    counts = np.diff(pptr)
    walk_of = np.repeat(
        np.arange(counts.shape[0], dtype=np.int64), counts
    )
    mirror = pptr[walk_of] + pptr[walk_of + 1] - 1 - np.arange(
        total, dtype=np.int64
    )
    return flat[mirror]


def build_native_g0(
    graph: Graph,
    walks_per_vnode: int,
    degree: int,
    length: int,
    seed: int = 0,
    validate: str = "full",
    engine: str = "vectorized",
) -> NativeG0:
    """Build a native ``G0`` with embedded paths and measure one round.

    The construction walks run through the walk-protocol engine
    (array-native by default, the per-node scalar oracle with
    ``engine="scalar"`` — same tape, bit-identical outcome); everything
    downstream (path delivery, native-round measurement) goes through
    the vectorized scheduler, which keeps ``n ~ 1024`` and beyond
    practical.

    Args:
        graph: connected base graph.
        walks_per_vnode: construction walks per virtual node.
        degree: out-neighbours kept per virtual node.
        length: walk length (use ``~2 tau_mix``).
        seed: seed of the shared walk-decision tape.
        validate: outbox-validation mode for the simulator (see
            :meth:`repro.congest.network.Network.run`; scalar engine
            only).
        engine: ``"vectorized"`` or ``"scalar"``.
    """
    if not graph.is_connected():
        raise ValueError("native G0 requires a connected graph")
    vnode_host = graph.arc_tails
    num_vnodes = int(vnode_host.shape[0])
    starts = np.repeat(vnode_host, walks_per_vnode)
    owners = np.repeat(np.arange(num_vnodes), walks_per_vnode)
    endpoints, path_flat, path_ptr, build_rounds = _forward_pass_with_paths(
        graph, starts, length, seed, validate=validate, engine=engine
    )
    # The reversal (to tell sources their endpoints) costs about the same
    # again; run it through the scheduler on the row-reversed paths.
    reverse = schedule_paths_csr(
        _reverse_rows_csr(path_flat, path_ptr),
        path_ptr,
        rng=derive_rng(seed, 98),
    )
    build_rounds += reverse.rounds

    rng = derive_rng(seed, 99)
    # Map endpoints to uniform virtual nodes of the landing hosts.
    offsets = (
        rng.random(endpoints.shape[0]) * graph.degrees[endpoints]
    ).astype(np.int64)
    target_vnodes = graph.indptr[endpoints] + offsets
    # Select up to `degree` distinct targets per owner, remembering which
    # walk produced each kept edge (for its path).
    edges: list[tuple[int, int]] = []
    edge_paths: list[list[int]] = []
    by_owner: dict[int, dict[int, int]] = {}
    for walk_id in range(owners.shape[0]):
        owner = int(owners[walk_id])
        target = int(target_vnodes[walk_id])
        if target == owner:
            continue
        bucket = by_owner.setdefault(owner, {})
        if target not in bucket and len(bucket) < degree:
            bucket[target] = walk_id
    path_list = path_flat.tolist()
    for owner, bucket in sorted(by_owner.items()):
        for target, walk_id in bucket.items():
            edges.append((owner, target))
            edge_paths.append(
                path_list[int(path_ptr[walk_id]) : int(path_ptr[walk_id + 1])]
            )
    overlay = Graph(num_vnodes, edges)
    # One native overlay round: a message along every edge, both ways.
    both_ways = edge_paths + [list(reversed(p)) for p in edge_paths]
    native_round = schedule_paths(
        [path for path in both_ways if len(path) > 1],
        rng=derive_rng(seed, 100),
    )
    return NativeG0(
        graph=graph,
        overlay=overlay,
        vnode_host=vnode_host,
        edge_paths=edge_paths,
        build_rounds=build_rounds,
        round_rounds=native_round.rounds,
    )


def _oriented_arc_paths(g0: NativeG0) -> list[list[int]]:
    """Per overlay arc, the embedded path oriented tail-host → head-host.

    One pass over the arcs — each arc resolves its undirected edge via
    ``arc_edge`` directly, replacing the old per-edge
    ``np.flatnonzero(arc_edge == eid)`` scan that was
    O(num_arcs · num_edges).
    """
    overlay = g0.overlay
    num_edges = len(g0.edge_paths)
    # arc_tails is a rebuilt-per-access property: hoist it (indexing it
    # inside the loop re-materialized the whole array once per arc).
    arc_tails = overlay.arc_tails
    arc_edge = overlay.arc_edge
    arc_paths: list[list[int] | None] = [None] * overlay.num_arcs
    for arc in range(overlay.num_arcs):
        eid = int(arc_edge[arc])
        if eid >= num_edges:
            continue
        path = g0.edge_paths[eid]
        tail_host = int(g0.vnode_host[arc_tails[arc]])
        if tail_host == path[0]:
            arc_paths[arc] = path
        elif tail_host == path[-1]:
            arc_paths[arc] = path[::-1]
        else:
            raise ValueError(
                f"G0 edge path for overlay arc {arc} starts at "
                f"{path[0]} and ends at {path[-1]}, neither of which is "
                f"the arc's tail host {tail_host}; edge_paths is "
                "inconsistent with the overlay"
            )
    missing = [arc for arc, path in enumerate(arc_paths) if path is None]
    if missing:
        raise ValueError(
            f"overlay arcs {missing[:8]}{'...' if len(missing) > 8 else ''} "
            f"have no embedded G0 path ({num_edges} edge paths for "
            f"{overlay.num_arcs} arcs); the G0 overlay is inconsistent — "
            "e.g. built over a disconnected graph"
        )
    return [path for path in arc_paths if path is not None]


def _assemble_chains(
    g0: NativeG0,
    arc_paths: list[list[int]],
    owners: np.ndarray,
    arcs_taken: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-walk G0 segments, dropping consecutive duplicates.

    ``arcs_taken`` is ``(length, num_walks)``; entry ``-1`` means the
    walk stayed that step.  Returns CSR arrays ``(nodes, offsets)``: walk
    ``w``'s real-node chain is ``nodes[offsets[w]:offsets[w + 1]]``,
    starting at its owner's host.  (Host-local repeats cost no rounds,
    hence the duplicate drop.)
    """
    num_walks = int(owners.shape[0])
    # Flatten every arc segment (the path minus its first node, which is
    # the walk's current host whenever the arc is taken).  Node ids fit
    # int32 by a wide margin; the chain arrays are the largest objects
    # this builder touches, so the narrow dtype halves the memory
    # traffic of every gather below.
    seg_lists = [path[1:] for path in arc_paths]
    seg_len = np.fromiter(
        map(len, seg_lists), dtype=np.int64, count=len(seg_lists)
    )
    seg_offsets = np.zeros(seg_len.shape[0] + 1, dtype=np.int64)
    np.cumsum(seg_len, out=seg_offsets[1:])
    seg_flat = np.fromiter(
        _chain.from_iterable(seg_lists),
        dtype=np.int32,
        count=int(seg_offsets[-1]),
    )
    # Crossing events, ordered walk-major then step-major — the order the
    # scalar loop appended segments in.
    events = arcs_taken.T
    mask = events >= 0
    ev_counts = mask.sum(axis=1)
    ev_arcs = events[mask]
    ev_walks = np.repeat(np.arange(num_walks, dtype=np.int64), ev_counts)
    ev_len = seg_len[ev_arcs]
    ev_cum = np.zeros(ev_len.shape[0] + 1, dtype=np.int64)
    np.cumsum(ev_len, out=ev_cum[1:])
    total_content = int(ev_cum[-1])
    # Gather all segment nodes in event order (CSR expansion): element j
    # of event e sits at seg_offsets[arc_e] + (j - ev_cum[e]), so one
    # fused repeat of the per-event base plus a single iota covers the
    # whole gather.
    iota = np.arange(total_content, dtype=np.int64)
    content = seg_flat[
        np.repeat(seg_offsets[ev_arcs] - ev_cum[:-1], ev_len) + iota
    ]
    # Interleave with the per-walk start hosts: exactly one start node
    # precedes each walk's content, so content element j lands at global
    # position j + (its walk index) + 1.
    ev_ptr = np.zeros(num_walks + 1, dtype=np.int64)
    np.cumsum(ev_counts, out=ev_ptr[1:])
    walk_extra = ev_cum[ev_ptr[1:]] - ev_cum[ev_ptr[:-1]]
    offsets = np.zeros(num_walks + 1, dtype=np.int64)
    np.cumsum(walk_extra + 1, out=offsets[1:])
    nodes = np.empty(int(offsets[-1]), dtype=np.int32)
    starts_at = offsets[:-1]
    nodes[starts_at] = g0.vnode_host[owners]
    if total_content:
        rep_walks = np.repeat(ev_walks, ev_len)
        nodes[iota + rep_walks + 1] = content
    # Compress consecutive duplicates within each walk (walk boundaries
    # always survive).
    keep = np.ones(nodes.shape[0], dtype=bool)
    keep[1:] = nodes[1:] != nodes[:-1]
    keep[starts_at] = True
    walk_of = np.repeat(
        np.arange(num_walks, dtype=np.int64), walk_extra + 1
    )
    kept_counts = np.bincount(walk_of[keep], minlength=num_walks)
    out_offsets = np.zeros(num_walks + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=out_offsets[1:])
    return nodes[keep], out_offsets


@dataclass
class WalkReplay:
    """Outcome of executing a recorded walk batch as real message passing.

    Attributes:
        rounds: executed CONGEST rounds, summed over walk steps with the
            engine's per-step floor of one round (``sum_t max(1, r_t)``),
            so it is directly comparable to
            :meth:`repro.walks.engine.WalkRun.schedule_rounds`.
        per_step: executed rounds of each walk step (no floor).
        messages: total token messages delivered.
    """

    rounds: int
    per_step: list[int]
    messages: int


def replay_walk_run(
    graph: Graph,
    run,
    validate: str = "full",
    faults=None,
    context=None,
    workers: int = 1,
) -> WalkReplay:
    """Execute a recorded walk batch through the CONGEST simulator.

    Replays each walk step's token movements as real messages — every
    node forwards at most one token per directed edge per round, with a
    barrier between steps — under the simulator's validation.  This is
    how a backend *executes* the exact trajectories a vectorized engine
    sampled: the structure built from the walks is bit-identical, while
    the rounds are measured on the wire (Lemma 2.5 guarantees they equal
    the engine's ``schedule_rounds()`` charge; callers assert that).

    Args:
        graph: the base graph the walks ran on.
        run: a :class:`repro.walks.engine.WalkRun` recorded with
            ``record_trajectory=True``.
        validate: outbox-validation mode for
            :meth:`repro.congest.network.Network.run`.
        faults: optional :class:`~repro.congest.faults.FaultPlan`; with
            an active plan each step's tokens travel the reliable ARQ
            path instead — the structure stays identical (retries, not
            resampling) while the executed rounds grow past the engine's
            clean charge; the surplus is the measured fault overhead.
        context: optional :class:`repro.runtime.RunContext` that the
            reliable path charges ``faults/retry-rounds`` to.
        workers: delivery processes per step (see
            :meth:`repro.congest.network.Network.run`); round accounting
            is unchanged.  Ignored under active faults.

    Returns:
        A :class:`WalkReplay` with the executed round/message counts.

    Raises:
        ValueError: if ``run`` has no recorded trajectory.
        RuntimeError: if any step fails to deliver all its tokens on the
            clean wire.
        DeliveryTimeout: if faults defeat the retry budget of any step.
    """
    trajectory = getattr(run, "trajectory", None)
    if trajectory is None:
        raise ValueError(
            "replay_walk_run needs a WalkRun recorded with "
            "record_trajectory=True"
        )
    per_step: list[int] = []
    messages = 0
    for step in range(run.steps):
        before = trajectory[step]
        after = trajectory[step + 1]
        moved = before != after
        if not moved.any():
            per_step.append(0)
            continue
        rounds, sent = forward_demands(
            graph,
            before[moved],
            after[moved],
            validate=validate,
            faults=faults,
            context=context,
            workers=workers,
        )
        per_step.append(rounds)
        messages += sent
    rounds = int(sum(max(1, r) for r in per_step))
    return WalkReplay(rounds=rounds, per_step=per_step, messages=messages)


@dataclass
class NativeLevel:
    """A native level-1 overlay: edges embed *chains* of G0 paths.

    Attributes:
        parts: level-1 part id per virtual node.
        overlay: the level-1 overlay graph.
        edge_paths: per overlay edge, its real-node path (the
            concatenation of the G0-edge paths the sampling walk took).
        build_rounds: measured rounds of the construction walks.
        round_rounds: measured rounds of one native level-1 round.
    """

    parts: np.ndarray
    overlay: Graph
    edge_paths: list[list[int]]
    build_rounds: int
    round_rounds: int


def build_native_level1(
    g0: NativeG0,
    beta: int,
    degree: int,
    length: int,
    seed: int = 0,
) -> NativeLevel:
    """Build a native level-1 overlay on top of a native ``G0``.

    Sampling walks step across ``G0`` overlay edges; every step is
    *executed* as a traversal of the edge's embedded path, so the level-1
    edges end up embedded as chains of ``G0`` paths — exactly the nested
    embedding of Figure 1, with every message physically routed.

    Args:
        g0: a :class:`NativeG0`.
        beta: number of level-1 parts (hash-assigned).
        degree: same-part neighbours kept per virtual node.
        length: overlay walk length.
        seed: randomness seed.
    """
    rng = derive_rng(seed, 0)
    num_vnodes = g0.overlay.num_nodes
    parts = rng.integers(0, beta, size=num_vnodes)
    arc_paths = _oriented_arc_paths(g0)
    walks_per = max(degree * beta, 2 * degree)
    indptr = g0.overlay.indptr
    indices = g0.overlay.indices
    overlay_degrees = g0.overlay.degrees
    # --- Batched lazy walk over the overlay CSR: all walks step together.
    num_walks = num_vnodes * walks_per
    owners = np.repeat(np.arange(num_vnodes, dtype=np.int64), walks_per)
    positions = owners.copy()
    # arcs_taken[step, w] is the overlay arc walk w crossed at `step`, or
    # -1 if it stayed put (lazy step or isolated vnode).
    arcs_taken = np.full((length, num_walks), -1, dtype=np.int64)
    for step in range(length):
        move = rng.random(num_walks) >= 0.5
        move &= overlay_degrees[positions] > 0
        if not move.any():
            continue
        pos = positions[move]
        arcs = indptr[pos] + rng.integers(0, overlay_degrees[pos])
        arcs_taken[step, move] = arcs
        positions[move] = indices[arcs]
    chains, chain_offsets = _assemble_chains(g0, arc_paths, owners, arcs_taken)
    # --- Same-part endpoint selection, in vnode-major walk order.
    edges: list[tuple[int, int]] = []
    edge_path_walks: list[int] = []
    kept: dict[int, set[int]] = {}
    same_part = parts[positions] == parts[owners]
    for walk_id in np.flatnonzero(same_part & (positions != owners)):
        vnode = int(owners[walk_id])
        position = int(positions[walk_id])
        bucket = kept.setdefault(vnode, set())
        if len(bucket) < degree and position not in bucket:
            bucket.add(position)
            edges.append((vnode, position))
            edge_path_walks.append(int(walk_id))
    # Schedule every traversing chain straight from the CSR (row order
    # and the >1-node filter match the old list-of-lists construction,
    # so the permutation draw — and hence the rounds — are unchanged).
    lens = np.diff(chain_offsets)
    traversing = lens > 1
    trav_offsets = np.zeros(int(traversing.sum()) + 1, dtype=np.int64)
    np.cumsum(lens[traversing], out=trav_offsets[1:])
    build = schedule_paths_csr(
        chains[np.repeat(traversing, lens)],
        trav_offsets,
        rng=derive_rng(seed, 1),
    )
    flat = chains.tolist()
    edge_paths: list[list[int]] = [
        flat[int(chain_offsets[w]) : int(chain_offsets[w + 1])]
        for w in edge_path_walks
    ]
    both_ways = edge_paths + [list(reversed(p)) for p in edge_paths]
    native_round = schedule_paths(
        [path for path in both_ways if len(path) > 1],
        rng=derive_rng(seed, 2),
    )
    return NativeLevel(
        parts=parts,
        overlay=Graph(num_vnodes, edges),
        edge_paths=edge_paths,
        build_rounds=build.rounds,
        round_rounds=native_round.rounds,
    )
