"""A CONGEST-native ``G0`` at toy scale: overlay edges as embedded paths.

The fastest paths in this library treat overlay graphs abstractly and
charge measured emulation costs.  This module builds the level-zero
overlay the way the distributed algorithm actually does, end to end:

1. the construction walks run through the message-passing walk protocol
   (per-edge queues, remembered directions, reversal);
2. every overlay edge *keeps the walk path that created it* — the
   embedded route its messages will travel;
3. delivering one message per overlay edge (one native ``G0`` round) is
   executed by store-and-forward scheduling of those embedded paths
   under unit edge capacity.

The native round cost is then compared against the vectorized
calibration of :func:`repro.core.embedding.build_g0` (see
``tests/congest/test_native.py``) — closing the loop between the
accounted and the executed pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.routing_baselines import schedule_paths
from ..graphs.graph import Graph
from .walk_protocol import _ForwardNode, _WalkState
from .network import Network

__all__ = ["NativeG0", "NativeLevel", "build_native_g0", "build_native_level1"]


@dataclass
class NativeG0:
    """A level-zero overlay with embedded paths.

    Attributes:
        graph: the base graph.
        overlay: the overlay graph over virtual-node ids.
        vnode_host: real node of each virtual node.
        edge_paths: per overlay edge, the real-node path embedding it
            (from the tail's host to the head's host).
        build_rounds: CONGEST rounds of the construction (forward +
            reverse walk protocol).
        round_rounds: measured rounds of one native overlay round
            (one message per overlay edge, both directions).
    """

    graph: Graph
    overlay: Graph
    vnode_host: np.ndarray
    edge_paths: list[list[int]]
    build_rounds: int
    round_rounds: int


def _forward_pass_with_paths(
    graph: Graph, starts: np.ndarray, length: int, seed: int
) -> tuple[np.ndarray, list[list[int]], int]:
    """Run the forward walk protocol and reconstruct each token's path.

    Returns ``(endpoints, paths, rounds)``; a path lists the real nodes
    the token moved through (stays omitted), starting at its origin.
    """
    network = Network(graph)
    n = graph.num_nodes
    states = [
        _WalkState(
            rng=np.random.default_rng((seed, v)),
            visit_stack={},
            finished_here={},
        )
        for v in range(n)
    ]
    per_node: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for walk_id, origin in enumerate(starts):
        per_node[int(origin)].append((walk_id, length))
    forward = [
        _ForwardNode(network.context(v), states[v], per_node[v])
        for v in range(n)
    ]
    stats = network.run(forward, max_rounds=10000 * (length + 1))
    endpoints = np.full(starts.shape[0], -1, dtype=np.int64)
    for v, state in enumerate(states):
        for walk_id in state.finished_here:
            endpoints[walk_id] = v
    # Reconstruct paths by replaying the reversal centrally: pop the
    # visit stacks from the endpoint back to the origin.
    stacks = [
        {walk: list(senders) for walk, senders in state.visit_stack.items()}
        for state in states
    ]
    paths: list[list[int]] = []
    for walk_id, origin in enumerate(starts):
        node = int(endpoints[walk_id])
        reverse_path = [node]
        while True:
            stack = stacks[node].get(walk_id)
            if not stack:
                break
            node = stack.pop()
            reverse_path.append(node)
        if reverse_path[-1] != int(origin):
            raise RuntimeError("path reconstruction lost the origin")
        paths.append(list(reversed(reverse_path)))
    return endpoints, paths, stats.rounds


def build_native_g0(
    graph: Graph,
    walks_per_vnode: int,
    degree: int,
    length: int,
    seed: int = 0,
) -> NativeG0:
    """Build a native ``G0`` with embedded paths and measure one round.

    Intended for toy scale (``n <= ~32``): the embedded-path bookkeeping
    is the point, not speed.

    Args:
        graph: connected base graph.
        walks_per_vnode: construction walks per virtual node.
        degree: out-neighbours kept per virtual node.
        length: walk length (use ``~2 tau_mix``).
        seed: base seed for per-node randomness.
    """
    if not graph.is_connected():
        raise ValueError("native G0 requires a connected graph")
    vnode_host = graph.arc_tails
    num_vnodes = int(vnode_host.shape[0])
    starts = np.repeat(vnode_host, walks_per_vnode)
    owners = np.repeat(np.arange(num_vnodes), walks_per_vnode)
    endpoints, walk_paths, build_rounds = _forward_pass_with_paths(
        graph, starts, length, seed
    )
    # The reversal (to tell sources their endpoints) costs about the same
    # again; run it through schedule_paths on the reversed paths.
    reverse = schedule_paths(
        [list(reversed(path)) for path in walk_paths],
        rng=np.random.default_rng((seed, 98)),
    )
    build_rounds += reverse.rounds

    rng = np.random.default_rng((seed, 99))
    # Map endpoints to uniform virtual nodes of the landing hosts.
    offsets = (
        rng.random(endpoints.shape[0]) * graph.degrees[endpoints]
    ).astype(np.int64)
    target_vnodes = graph.indptr[endpoints] + offsets
    # Select up to `degree` distinct targets per owner, remembering which
    # walk produced each kept edge (for its path).
    edges: list[tuple[int, int]] = []
    edge_paths: list[list[int]] = []
    by_owner: dict[int, dict[int, int]] = {}
    for walk_id in range(owners.shape[0]):
        owner = int(owners[walk_id])
        target = int(target_vnodes[walk_id])
        if target == owner:
            continue
        bucket = by_owner.setdefault(owner, {})
        if target not in bucket and len(bucket) < degree:
            bucket[target] = walk_id
    for owner, bucket in sorted(by_owner.items()):
        for target, walk_id in bucket.items():
            edges.append((owner, target))
            edge_paths.append(walk_paths[walk_id])
    overlay = Graph(num_vnodes, edges)
    # One native overlay round: a message along every edge, both ways.
    both_ways = edge_paths + [list(reversed(p)) for p in edge_paths]
    native_round = schedule_paths(
        [path for path in both_ways if len(path) > 1],
        rng=np.random.default_rng((seed, 100)),
    )
    return NativeG0(
        graph=graph,
        overlay=overlay,
        vnode_host=vnode_host,
        edge_paths=edge_paths,
        build_rounds=build_rounds,
        round_rounds=native_round.rounds,
    )


def _compress(path: list[int]) -> list[int]:
    """Drop consecutive duplicates (host-local segments cost no rounds)."""
    out = [path[0]]
    for node in path[1:]:
        if node != out[-1]:
            out.append(node)
    return out


@dataclass
class NativeLevel:
    """A native level-1 overlay: edges embed *chains* of G0 paths.

    Attributes:
        parts: level-1 part id per virtual node.
        overlay: the level-1 overlay graph.
        edge_paths: per overlay edge, its real-node path (the
            concatenation of the G0-edge paths the sampling walk took).
        build_rounds: measured rounds of the construction walks.
        round_rounds: measured rounds of one native level-1 round.
    """

    parts: np.ndarray
    overlay: Graph
    edge_paths: list[list[int]]
    build_rounds: int
    round_rounds: int


def build_native_level1(
    g0: NativeG0,
    beta: int,
    degree: int,
    length: int,
    seed: int = 0,
) -> NativeLevel:
    """Build a native level-1 overlay on top of a native ``G0``.

    Sampling walks step across ``G0`` overlay edges; every step is
    *executed* as a traversal of the edge's embedded path, so the level-1
    edges end up embedded as chains of ``G0`` paths — exactly the nested
    embedding of Figure 1, with every message physically routed.

    Args:
        g0: a :class:`NativeG0`.
        beta: number of level-1 parts (hash-assigned).
        degree: same-part neighbours kept per virtual node.
        length: overlay walk length.
        seed: randomness seed.
    """
    rng = np.random.default_rng((seed, 0))
    num_vnodes = g0.overlay.num_nodes
    parts = rng.integers(0, beta, size=num_vnodes)
    # Adjacency of the G0 overlay with per-arc embedded paths.
    arc_paths: list[list[int]] = [None] * g0.overlay.num_arcs
    for eid, path in enumerate(g0.edge_paths):
        for arc in np.flatnonzero(g0.overlay.arc_edge == eid):
            tail = g0.overlay.arc_tails[arc]
            if g0.vnode_host[tail] == path[0]:
                arc_paths[arc] = path
            else:
                arc_paths[arc] = list(reversed(path))
    walks_per = max(degree * beta, 2 * degree)
    edges: list[tuple[int, int]] = []
    edge_paths: list[list[int]] = []
    all_traversals: list[list[int]] = []
    indptr = g0.overlay.indptr
    indices = g0.overlay.indices
    kept: dict[int, set[int]] = {}
    for vnode in range(num_vnodes):
        for _ in range(walks_per):
            position = vnode
            chain: list[int] = [int(g0.vnode_host[vnode])]
            for _step in range(length):
                if rng.random() < 0.5:
                    continue  # lazy stay
                d = indptr[position + 1] - indptr[position]
                if d == 0:
                    continue
                arc = int(indptr[position] + rng.integers(0, d))
                segment = arc_paths[arc]
                chain.extend(segment[1:])
                position = int(indices[arc])
            chain = _compress(chain)
            all_traversals.append(chain)
            if (
                position != vnode
                and parts[position] == parts[vnode]
                and len(kept.setdefault(vnode, set())) < degree
                and position not in kept[vnode]
            ):
                kept[vnode].add(position)
                edges.append((vnode, position))
                edge_paths.append(chain)
    build = schedule_paths(
        [path for path in all_traversals if len(path) > 1],
        rng=np.random.default_rng((seed, 1)),
    )
    both_ways = edge_paths + [list(reversed(p)) for p in edge_paths]
    native_round = schedule_paths(
        [path for path in both_ways if len(path) > 1],
        rng=np.random.default_rng((seed, 2)),
    )
    return NativeLevel(
        parts=parts,
        overlay=Graph(num_vnodes, edges),
        edge_paths=edge_paths,
        build_rounds=build.rounds,
        round_rounds=native_round.rounds,
    )
