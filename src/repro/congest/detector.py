"""Failure detection for the CONGEST runtime.

This module is the *only* sanctioned reader of crash state.  Recovery
code (router failover, reliable-delivery parking, hierarchy repair)
must consume crashes through a :class:`CrashView` — never by calling
``FaultPlan.crashed`` directly (reprolint rule R008 enforces this
outside ``repro/congest/``).

Two detectors are provided:

* :func:`crash_view` — the analytic detector.  It derives the view
  from the fault plan's crash entropy, which is sampled lazily per
  ``(window, n)`` and never consumes wire-fault draws, so the oracle
  and native backends observe the *same* view seed-for-seed.  The
  detection cost (heartbeat misses plus dissemination) is modeled
  and reported on the view for the caller to charge under
  ``recovery/detection``.
* :func:`run_heartbeat_detector` — a real CONGEST heartbeat protocol
  that runs on the faulty :class:`~repro.congest.network.Network` and
  suspects a neighbour after :data:`MISS_THRESHOLD` silent rounds.
  Tests use it to validate that the analytic view agrees with what
  the wire can actually observe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graphs.graph import Graph
from .faults import FaultPlan
from .network import Network, NodeAlgorithm, RunStats

__all__ = [
    "MISS_THRESHOLD",
    "MAX_WAIT_ROUNDS",
    "CrashView",
    "crash_view",
    "detection_rounds",
    "HeartbeatNode",
    "DetectionReport",
    "run_heartbeat_detector",
]

# A neighbour is suspected after this many consecutive silent rounds.
MISS_THRESHOLD = 3

# Crash windows ending at or before this round are "waitable": the
# recovery layer may park traffic until the window closes.  Windows
# that outlive it are treated as permanent failures and repaired
# (failover / re-election / re-homing) instead of waited out.
MAX_WAIT_ROUNDS = 2048


class CrashView:
    """Round-indexed view of which nodes are down, and until when.

    Built once per ``(plan, num_nodes)`` by a detector; recovery code
    queries it instead of touching :class:`FaultPlan` internals.
    """

    def __init__(
        self,
        num_nodes: int,
        windows: Tuple[Tuple[int, int, FrozenSet[int]], ...],
        detection_rounds: float,
    ) -> None:
        self.num_nodes = num_nodes
        #: ``(start, end, nodes)`` per crash window, construction order.
        self.windows = windows
        #: Modeled cost (rounds) of detecting every window.
        self.detection_rounds = detection_rounds
        self._ever_down = frozenset().union(
            *(nodes for _, _, nodes in windows)
        ) if windows else frozenset()

    # -- basic queries ------------------------------------------------

    @property
    def is_null(self) -> bool:
        return not self.windows

    @property
    def ever_down(self) -> FrozenSet[int]:
        """Nodes that are down during at least one window."""
        return self._ever_down

    def down_at(self, round_number: int) -> FrozenSet[int]:
        down: FrozenSet[int] = frozenset()
        for start, end, nodes in self.windows:
            if start <= round_number <= end:
                down = down | nodes
        return down

    def is_down(self, node: int, round_number: int) -> bool:
        for start, end, nodes in self.windows:
            if start <= round_number <= end and node in nodes:
                return True
        return False

    def down_until(self, node: int, round_number: int) -> int:
        """Last round of the window covering ``node`` at
        ``round_number`` (-1 when the node is up)."""
        best = -1
        for start, end, nodes in self.windows:
            if start <= round_number <= end and node in nodes:
                best = max(best, end)
        return best

    # -- recovery classification --------------------------------------

    def permanently_down(
        self, max_wait: int = MAX_WAIT_ROUNDS
    ) -> FrozenSet[int]:
        """Nodes in a window too long to wait out."""
        dead: FrozenSet[int] = frozenset()
        for _, end, nodes in self.windows:
            if end > max_wait:
                dead = dead | nodes
        return dead

    def waitable_end(self, max_wait: int = MAX_WAIT_ROUNDS) -> int:
        """Largest end round among waitable windows (0 if none)."""
        ends = [end for _, end, _ in self.windows if end <= max_wait]
        return max(ends) if ends else 0


def detection_rounds(num_windows: int, num_nodes: int) -> float:
    """Modeled heartbeat-detection cost for ``num_windows`` windows.

    Each window costs :data:`MISS_THRESHOLD` missed heartbeats before
    suspicion plus an O(log n) dissemination sweep so every node
    shares the suspicion.
    """
    if num_windows <= 0:
        return 0.0
    spread = math.ceil(math.log2(max(2, num_nodes)))
    return float(num_windows * (MISS_THRESHOLD + spread))


def crash_view(plan: Optional[FaultPlan], num_nodes: int) -> CrashView:
    """Analytic failure detector: publish the plan's crash windows.

    Deterministic for a given ``(plan seed, num_nodes)`` because crash
    membership is sampled lazily from entropy split off at plan
    construction — querying it never advances the wire-fault stream,
    which is what keeps the oracle and native backends seed-for-seed
    comparable.
    """
    if plan is None or not plan.spec.crashes:
        return CrashView(num_nodes, (), 0.0)
    windows: List[Tuple[int, int, FrozenSet[int]]] = []
    for index, window in enumerate(plan.spec.crashes):
        # Force lazy sampling of this window's membership, then read
        # the per-window set (this module is the sanctioned accessor).
        plan.crashed(window.start, num_nodes)
        nodes = plan._crash_sets[(index, num_nodes)]
        windows.append((window.start, window.end, frozenset(nodes)))
    cost = detection_rounds(len(windows), num_nodes)
    return CrashView(num_nodes, tuple(windows), cost)


# -- wire heartbeat protocol ------------------------------------------


class HeartbeatNode(NodeAlgorithm):
    """Broadcast a 1-word heartbeat each round; suspect silent
    neighbours after :data:`MISS_THRESHOLD` missed rounds."""

    def __init__(
        self,
        context,
        duration: int,
        miss_threshold: int = MISS_THRESHOLD,
    ) -> None:
        super().__init__(context)
        self.duration = duration
        self.miss_threshold = miss_threshold
        self.last_heard: Dict[int, int] = {
            v: 0 for v in context.neighbors
        }
        self.suspected: Dict[int, int] = {}
        # Heartbeating is a daemon protocol: it stops at `duration` on
        # its own, and a permanently crashed node must not keep the
        # network alive, so the node is "finished" from the start and
        # the run ends when no beats remain in flight.
        self.finished = True

    def _beat(self, round_number: int):
        if round_number >= self.duration:
            return {}
        return {v: ("hb",) for v in self.context.neighbors}

    def initialize(self):
        return self._beat(0)

    def receive(self, round_number: int, inbox):
        for sender in inbox:
            self.last_heard[sender] = round_number
        for v in self.context.neighbors:
            silent = round_number - self.last_heard[v]
            if silent >= self.miss_threshold and v not in self.suspected:
                self.suspected[v] = round_number
        return self._beat(round_number)


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of a wire heartbeat run."""

    #: node -> earliest round at which any neighbour suspected it.
    suspected: Dict[int, int]
    stats: RunStats
    duration: int
    miss_threshold: int = MISS_THRESHOLD
    extra: Dict[str, float] = field(default_factory=dict)


def run_heartbeat_detector(
    graph: Graph,
    *,
    duration: int,
    faults: Optional[FaultPlan] = None,
    miss_threshold: int = MISS_THRESHOLD,
    validate: str = "full",
) -> DetectionReport:
    """Run the heartbeat protocol on the (possibly faulty) wire."""
    network = Network(graph)
    algorithms = [
        HeartbeatNode(network.context(v), duration, miss_threshold)
        for v in range(graph.num_nodes)
    ]
    stats = network.run(
        algorithms,
        max_rounds=duration + 2,
        validate=validate,
        faults=faults,
    )
    suspected: Dict[int, int] = {}
    for algo in algorithms:
        for target, round_number in algo.suspected.items():
            prev = suspected.get(target)
            if prev is None or round_number < prev:
                suspected[target] = round_number
    return DetectionReport(
        suspected=suspected,
        stats=stats,
        duration=duration,
        miss_threshold=miss_threshold,
    )
