"""Reliable one-hop delivery over a faulty CONGEST wire.

:mod:`repro.congest.forwarding` assumes a lossless wire; this module is
its fault-tolerant twin.  Each directed link runs stop-and-wait ARQ:
tokens carry per-link sequence numbers, receivers acknowledge (and
re-acknowledge duplicates), senders retransmit on timeout with
exponential backoff.  The outcome is all-or-nothing by construction —
either every demand is delivered and counted, or a diagnosable
:class:`~repro.congest.faults.DeliveryTimeout` names what was lost.
Silent partial delivery is impossible.

Cost accounting: a fault-free stop-and-wait run of demand multiset ``D``
takes exactly ``2 * max_mult(D)`` rounds (token + ack per token, links
in parallel), so everything beyond that is fault overhead and is charged
to the run ledger as ``faults/retry-rounds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..graphs.graph import Graph
from .detector import MAX_WAIT_ROUNDS, CrashView, crash_view
from .faults import (
    BACKOFF_CAP,
    DEFAULT_MAX_ATTEMPTS,
    DeliveryTimeout,
    FaultPlan,
)
from .network import CongestViolation, Network, NodeAlgorithm, RunStats

__all__ = ["DeliveryReport", "ReliableForwarder", "reliable_forward_demands"]


class ReliableForwarder(NodeAlgorithm):
    """Stop-and-wait ARQ sender/receiver for one-hop demands.

    Per target neighbour, at most one token is un-acknowledged at a
    time.  Payloads are ``("rel", token_seq, ack_seq)`` — 3 words, under
    the :data:`~repro.congest.network.MESSAGE_WORD_LIMIT` — so a token
    and an acknowledgement for the opposite direction piggyback on the
    same edge slot and acks never contend with data.

    Receivers deduplicate on ``(sender, seq)`` and re-ack duplicates
    (the first ack may have been the casualty).  A token that exhausts
    ``max_attempts`` transmissions is abandoned and listed in
    :attr:`failed`; the driver turns a non-empty failed list into a
    :class:`DeliveryTimeout`.
    """

    def __init__(
        self,
        context,
        targets: Iterable[int],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        crash_view: Optional[CrashView] = None,
    ):
        super().__init__(context)
        self.max_attempts = max_attempts
        # Self-heal mode: a failure-detector view lets the sender park
        # tokens to a temporarily-down target instead of burning
        # attempts into a black hole (see _emit).
        self.crash_view = crash_view
        self.parked = 0
        self.remaining: dict[int, int] = {}
        for target in targets:
            target = int(target)
            self.remaining[target] = self.remaining.get(target, 0) + 1
        self.next_seq: dict[int, int] = {}
        # target -> [seq, attempts, earliest retransmit round]
        self.in_flight: dict[int, list[int]] = {}
        self.acks_owed: dict[int, list[int]] = {}
        self.seen: set[tuple[int, int]] = set()
        self.received = 0
        self.sent = 0
        self.retries = 0
        self.failed: list[tuple[int, int]] = []
        self._update_finished()

    def _update_finished(self) -> None:
        self.finished = not (
            self.remaining or self.in_flight or self.acks_owed
        )

    def _emit(self, round_number: int) -> Mapping[int, tuple]:
        # Launch the next queued token on every idle link.
        for target in list(self.remaining):
            if target in self.in_flight:
                continue
            seq = self.next_seq.get(target, 0)
            self.next_seq[target] = seq + 1
            count = self.remaining[target]
            if count == 1:
                del self.remaining[target]
            else:
                self.remaining[target] = count - 1
            self.in_flight[target] = [seq, 0, 0]
        # (Re)transmit whatever is due, with exponential backoff.
        tokens: dict[int, int] = {}
        for target, flight in list(self.in_flight.items()):
            seq, attempts, resend_round = flight
            if round_number < resend_round:
                continue
            if self.crash_view is not None:
                # A copy emitted now is delivered next round; if the
                # detector says the target is down then, hold the token
                # (no transmission, no attempt burned) until the first
                # round whose delivery lands after the window.
                until = self.crash_view.down_until(
                    target, round_number + 1
                )
                if until >= 0:
                    flight[2] = until
                    self.parked += 1
                    continue
            if attempts >= self.max_attempts:
                self.failed.append((target, seq))
                del self.in_flight[target]
                continue
            flight[1] = attempts + 1
            flight[2] = round_number + 1 + min(
                2 ** flight[1], BACKOFF_CAP
            )
            tokens[target] = seq
            self.sent += 1
            if attempts:
                self.retries += 1
        outbox: dict[int, tuple] = {}
        for neighbor in set(tokens) | set(self.acks_owed):
            acks = self.acks_owed.get(neighbor)
            ack_seq = -1
            if acks:
                ack_seq = acks.pop(0)
                if not acks:
                    del self.acks_owed[neighbor]
            outbox[neighbor] = ("rel", tokens.get(neighbor, -1), ack_seq)
        self._update_finished()
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._emit(0)

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            _, token_seq, ack_seq = payload
            if token_seq >= 0:
                key = (sender, token_seq)
                if key not in self.seen:
                    self.seen.add(key)
                    self.received += 1
                # Ack unconditionally: a duplicate token means our
                # previous ack may have been lost.
                self.acks_owed.setdefault(sender, []).append(token_seq)
            if ack_seq >= 0:
                flight = self.in_flight.get(sender)
                if flight is not None and flight[0] == ack_seq:
                    del self.in_flight[sender]
        return self._emit(round_number)

    def undelivered(self) -> list[tuple[int, int]]:
        """``(target, seq)`` tokens this node never got acknowledged."""
        pending = [
            (target, flight[0])
            for target, flight in sorted(self.in_flight.items())
        ]
        queued = [
            (target, -1)
            for target, count in sorted(self.remaining.items())
            for _ in range(count)
        ]
        return list(self.failed) + pending + queued


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of a completed (fully delivered) reliable forwarding run.

    Attributes:
        delivered: unique tokens accepted by receivers (== expected).
        expected: demand count.
        rounds: real rounds the run took.
        messages: wire transmissions, including retries and fault
            copies.
        ideal_rounds: what a fault-free stop-and-wait run of the same
            demands costs (``2 * max link multiplicity``).
        retry_rounds: ``max(0, rounds - ideal_rounds)`` — the fault
            overhead charged to the ledger.
        retransmissions: token re-sends across all senders.
        stats: the underlying :class:`RunStats` (fault counters
            included).
    """

    delivered: int
    expected: int
    rounds: int
    messages: int
    ideal_rounds: int
    retry_rounds: int
    retransmissions: int
    stats: RunStats
    #: Self-heal accounting (all empty/zero under fail-fast): demands
    #: re-addressed to an escrow neighbour because the original target
    #: is permanently down, as ``(origin, target, escrow)``; demands
    #: abandoned because the origin (or every escrow option) is
    #: permanently down, as ``(origin, target)``; tokens parked while a
    #: crash window passed; and the round surplus charged to
    #: ``recovery/wait`` instead of ``faults/retry-rounds``.
    rehomed: tuple = ()
    orphaned: tuple = ()
    parked: int = 0
    recovery_rounds: int = 0


def reliable_forward_demands(
    graph: Graph,
    origins,
    targets,
    *,
    faults: Optional[FaultPlan] = None,
    validate: str = "full",
    max_attempts: Optional[int] = None,
    context=None,
    label: str = "forward",
    recovery: str = "fail-fast",
    view: Optional[CrashView] = None,
    max_wait: int = MAX_WAIT_ROUNDS,
) -> DeliveryReport:
    """Deliver one-hop demands reliably, or raise :class:`DeliveryTimeout`.

    The fault-tolerant counterpart of
    :func:`repro.congest.forwarding.forward_demands`: same demand
    semantics (every ``(origin, target)`` must be an edge; contended
    demands queue), but delivery survives a faulty wire via per-link
    ARQ.

    Args:
        graph: the network.
        origins / targets: demand endpoints (same length).
        faults: :class:`FaultPlan` to run under; ``None`` or a null plan
            runs the clean wire (and then ``retry_rounds`` is 0).
        validate: outbox-validation mode for :meth:`Network.run`.
        max_attempts: per-token transmission budget; defaults to the
            plan's spec (or :data:`DEFAULT_MAX_ATTEMPTS`).
        context: optional :class:`repro.runtime.RunContext`; when given
            and faults are active, the overhead is charged as
            ``faults/retry-rounds``.
        label: stage name used in charges and timeout diagnostics.
        recovery: ``"fail-fast"`` (PR-4 behaviour: crash windows that
            outlive the retry budget raise) or ``"self-heal"`` — the
            failure detector's crash view parks tokens through
            temporary windows, re-homes demands whose target is
            permanently down to the origin's lowest-ID live neighbour,
            and records demands from permanently dead origins as
            ``orphaned`` instead of raising.  The surplus rounds are
            charged to ``recovery/wait``.
        view: pre-built :class:`CrashView` (optional); under self-heal
            one is derived from ``context`` or the plan when absent.
        max_wait: windows ending after this round count as permanent.

    Returns:
        a :class:`DeliveryReport`; ``delivered == expected`` always
        holds on return.

    Raises:
        DeliveryTimeout: if any token exhausted its retry budget or the
            network's round budget ran out (e.g. a crash window outlived
            every retry) — with the undelivered ``(node, target)`` pairs
            attached.
    """
    origins = [int(origin) for origin in origins]
    targets = [int(target) for target in targets]
    if len(origins) != len(targets):
        raise ValueError("origins and targets must have the same length")
    if recovery not in ("fail-fast", "self-heal"):
        raise ValueError(
            f"recovery must be 'fail-fast' or 'self-heal', "
            f"got {recovery!r}"
        )
    if faults is not None and faults.spec.is_null:
        faults = None
    if max_attempts is None:
        max_attempts = (
            faults.spec.max_attempts if faults is not None
            else DEFAULT_MAX_ATTEMPTS
        )
    self_heal = (
        recovery == "self-heal"
        and faults is not None
        and bool(faults.spec.crashes)
    )
    rehomed: list[tuple[int, int, int]] = []
    orphaned: list[tuple[int, int]] = []
    if self_heal:
        if view is None:
            getter = getattr(context, "crash_view_for", None)
            if getter is not None:
                view = getter(graph.num_nodes)
            else:
                view = crash_view(faults, graph.num_nodes)
        dead = view.permanently_down(max_wait)
        if dead:
            kept_origins: list[int] = []
            kept_targets: list[int] = []
            for origin, target in zip(origins, targets):
                if origin in dead:
                    orphaned.append((origin, target))
                    continue
                if target in dead:
                    escrow = next(
                        (
                            int(w)
                            for w in sorted(graph.neighbors(origin))
                            if int(w) not in dead
                        ),
                        None,
                    )
                    if escrow is None:
                        orphaned.append((origin, target))
                        continue
                    rehomed.append((origin, target, escrow))
                    target = escrow
                kept_origins.append(origin)
                kept_targets.append(target)
            origins, targets = kept_origins, kept_targets
    else:
        view = None
    network = Network(graph)
    per_node: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    link_load: dict[tuple[int, int], int] = {}
    for origin, target in zip(origins, targets):
        per_node[origin].append(target)
        link_load[(origin, target)] = link_load.get((origin, target), 0) + 1
    max_mult = max(link_load.values(), default=0)
    ideal_rounds = 2 * max_mult
    algorithms = [
        ReliableForwarder(
            network.context(v),
            per_node[v],
            max_attempts=max_attempts,
            crash_view=view,
        )
        for v in range(graph.num_nodes)
    ]
    # Bounded budget: a token retires (delivered or abandoned) within
    # max_attempts backoff periods, links run in parallel, so the run
    # either terminates within this budget or something is wedged
    # (e.g. a crash window outliving every retry) — which must surface
    # as a diagnosable timeout, never as an unbounded spin.
    budget = 100 + max(1, max_mult) * max_attempts * (BACKOFF_CAP + 2)
    if view is not None:
        # Parked tokens legitimately wait out waitable crash windows.
        budget += view.waitable_end(max_wait)
    try:
        stats = network.run(
            algorithms,
            max_rounds=budget,
            validate=validate,
            faults=faults,
        )
    except CongestViolation:
        raise
    except RuntimeError as error:
        undelivered = [
            (v, target)
            for v, algorithm in enumerate(algorithms)
            for target, _seq in algorithm.undelivered()
        ]
        culprits = _culprits(algorithms, max_attempts)
        raise DeliveryTimeout(
            f"{label}: network round budget ({budget}) exhausted with "
            f"{len(undelivered)} demand(s) undelivered: "
            f"{undelivered[:8]}{'...' if len(undelivered) > 8 else ''}"
            f"{_worst_link(culprits)}",
            undelivered=undelivered,
            stage=label,
            culprits=culprits,
        ) from error
    failed = [
        (v, target)
        for v, algorithm in enumerate(algorithms)
        for target, _seq in algorithm.failed
    ]
    delivered = sum(algorithm.received for algorithm in algorithms)
    expected = len(origins)
    if failed or delivered != expected:
        culprits = tuple(
            (v, target, max_attempts) for v, target in failed
        )
        raise DeliveryTimeout(
            f"{label}: delivered {delivered}/{expected} demands; "
            f"{len(failed)} token(s) exhausted the {max_attempts}-attempt "
            f"retry budget: {failed[:8]}"
            f"{'...' if len(failed) > 8 else ''}"
            f"{_worst_link(culprits)}",
            undelivered=failed,
            stage=label,
            culprits=culprits,
        )
    retry_rounds = max(0, stats.rounds - ideal_rounds)
    retransmissions = sum(algorithm.retries for algorithm in algorithms)
    parked = sum(algorithm.parked for algorithm in algorithms)
    recovery_rounds = retry_rounds if self_heal else 0
    if context is not None and faults is not None:
        if self_heal:
            # Under self-heal the surplus is dominated by waiting out
            # crash windows, so it books to recovery/* (the fail-fast
            # category stays comparable to PR-4 figures).
            context.charge(
                "recovery/wait",
                float(recovery_rounds),
                stage=label,
                rounds_total=stats.rounds,
                ideal_rounds=ideal_rounds,
                parked=parked,
                rehomed=len(rehomed),
                orphaned=len(orphaned),
                retransmissions=retransmissions,
                crash_dropped=stats.crash_dropped,
            )
        else:
            context.charge(
                "faults/retry-rounds",
                float(retry_rounds),
                stage=label,
                rounds_total=stats.rounds,
                ideal_rounds=ideal_rounds,
                retransmissions=retransmissions,
                dropped=stats.dropped,
                duplicated=stats.duplicated,
                delayed=stats.delayed,
                crash_dropped=stats.crash_dropped,
            )
    return DeliveryReport(
        delivered=delivered,
        expected=expected,
        rounds=stats.rounds,
        messages=stats.messages,
        ideal_rounds=ideal_rounds,
        retry_rounds=0 if self_heal else retry_rounds,
        retransmissions=retransmissions,
        stats=stats,
        rehomed=tuple(rehomed),
        orphaned=tuple(orphaned),
        parked=parked,
        recovery_rounds=recovery_rounds,
    )


def _culprits(algorithms, max_attempts: int) -> tuple:
    """``(node, target, attempts)`` for every link still holding or
    having abandoned a token."""
    out = []
    for v, algorithm in enumerate(algorithms):
        for target, _seq in algorithm.failed:
            out.append((v, target, max_attempts))
        for target, flight in sorted(algorithm.in_flight.items()):
            out.append((v, target, flight[1]))
    out.sort(key=lambda item: (-item[2], item[0], item[1]))
    return tuple(out)


def _worst_link(culprits: tuple) -> str:
    if not culprits:
        return ""
    v, target, attempts = culprits[0]
    return (
        f"; worst link {v}->{target} after {attempts} "
        f"attempt(s)"
    )
