"""Reliable one-hop delivery over a faulty CONGEST wire.

:mod:`repro.congest.forwarding` assumes a lossless wire; this module is
its fault-tolerant twin.  Each directed link runs stop-and-wait ARQ:
tokens carry per-link sequence numbers, receivers acknowledge (and
re-acknowledge duplicates), senders retransmit on timeout with
exponential backoff.  The outcome is all-or-nothing by construction —
either every demand is delivered and counted, or a diagnosable
:class:`~repro.congest.faults.DeliveryTimeout` names what was lost.
Silent partial delivery is impossible.

Cost accounting: a fault-free stop-and-wait run of demand multiset ``D``
takes exactly ``2 * max_mult(D)`` rounds (token + ack per token, links
in parallel), so everything beyond that is fault overhead and is charged
to the run ledger as ``faults/retry-rounds``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..graphs.graph import Graph
from .faults import (
    BACKOFF_CAP,
    DEFAULT_MAX_ATTEMPTS,
    DeliveryTimeout,
    FaultPlan,
)
from .network import CongestViolation, Network, NodeAlgorithm, RunStats

__all__ = ["DeliveryReport", "ReliableForwarder", "reliable_forward_demands"]


class ReliableForwarder(NodeAlgorithm):
    """Stop-and-wait ARQ sender/receiver for one-hop demands.

    Per target neighbour, at most one token is un-acknowledged at a
    time.  Payloads are ``("rel", token_seq, ack_seq)`` — 3 words, under
    the :data:`~repro.congest.network.MESSAGE_WORD_LIMIT` — so a token
    and an acknowledgement for the opposite direction piggyback on the
    same edge slot and acks never contend with data.

    Receivers deduplicate on ``(sender, seq)`` and re-ack duplicates
    (the first ack may have been the casualty).  A token that exhausts
    ``max_attempts`` transmissions is abandoned and listed in
    :attr:`failed`; the driver turns a non-empty failed list into a
    :class:`DeliveryTimeout`.
    """

    def __init__(
        self,
        context,
        targets: Iterable[int],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        super().__init__(context)
        self.max_attempts = max_attempts
        self.remaining: dict[int, int] = {}
        for target in targets:
            target = int(target)
            self.remaining[target] = self.remaining.get(target, 0) + 1
        self.next_seq: dict[int, int] = {}
        # target -> [seq, attempts, earliest retransmit round]
        self.in_flight: dict[int, list[int]] = {}
        self.acks_owed: dict[int, list[int]] = {}
        self.seen: set[tuple[int, int]] = set()
        self.received = 0
        self.sent = 0
        self.retries = 0
        self.failed: list[tuple[int, int]] = []
        self._update_finished()

    def _update_finished(self) -> None:
        self.finished = not (
            self.remaining or self.in_flight or self.acks_owed
        )

    def _emit(self, round_number: int) -> Mapping[int, tuple]:
        # Launch the next queued token on every idle link.
        for target in list(self.remaining):
            if target in self.in_flight:
                continue
            seq = self.next_seq.get(target, 0)
            self.next_seq[target] = seq + 1
            count = self.remaining[target]
            if count == 1:
                del self.remaining[target]
            else:
                self.remaining[target] = count - 1
            self.in_flight[target] = [seq, 0, 0]
        # (Re)transmit whatever is due, with exponential backoff.
        tokens: dict[int, int] = {}
        for target, flight in list(self.in_flight.items()):
            seq, attempts, resend_round = flight
            if round_number < resend_round:
                continue
            if attempts >= self.max_attempts:
                self.failed.append((target, seq))
                del self.in_flight[target]
                continue
            flight[1] = attempts + 1
            flight[2] = round_number + 1 + min(
                2 ** flight[1], BACKOFF_CAP
            )
            tokens[target] = seq
            self.sent += 1
            if attempts:
                self.retries += 1
        outbox: dict[int, tuple] = {}
        for neighbor in set(tokens) | set(self.acks_owed):
            acks = self.acks_owed.get(neighbor)
            ack_seq = -1
            if acks:
                ack_seq = acks.pop(0)
                if not acks:
                    del self.acks_owed[neighbor]
            outbox[neighbor] = ("rel", tokens.get(neighbor, -1), ack_seq)
        self._update_finished()
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._emit(0)

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            _, token_seq, ack_seq = payload
            if token_seq >= 0:
                key = (sender, token_seq)
                if key not in self.seen:
                    self.seen.add(key)
                    self.received += 1
                # Ack unconditionally: a duplicate token means our
                # previous ack may have been lost.
                self.acks_owed.setdefault(sender, []).append(token_seq)
            if ack_seq >= 0:
                flight = self.in_flight.get(sender)
                if flight is not None and flight[0] == ack_seq:
                    del self.in_flight[sender]
        return self._emit(round_number)

    def undelivered(self) -> list[tuple[int, int]]:
        """``(target, seq)`` tokens this node never got acknowledged."""
        pending = [
            (target, flight[0])
            for target, flight in sorted(self.in_flight.items())
        ]
        queued = [
            (target, -1)
            for target, count in sorted(self.remaining.items())
            for _ in range(count)
        ]
        return list(self.failed) + pending + queued


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of a completed (fully delivered) reliable forwarding run.

    Attributes:
        delivered: unique tokens accepted by receivers (== expected).
        expected: demand count.
        rounds: real rounds the run took.
        messages: wire transmissions, including retries and fault
            copies.
        ideal_rounds: what a fault-free stop-and-wait run of the same
            demands costs (``2 * max link multiplicity``).
        retry_rounds: ``max(0, rounds - ideal_rounds)`` — the fault
            overhead charged to the ledger.
        retransmissions: token re-sends across all senders.
        stats: the underlying :class:`RunStats` (fault counters
            included).
    """

    delivered: int
    expected: int
    rounds: int
    messages: int
    ideal_rounds: int
    retry_rounds: int
    retransmissions: int
    stats: RunStats


def reliable_forward_demands(
    graph: Graph,
    origins,
    targets,
    *,
    faults: Optional[FaultPlan] = None,
    validate: str = "full",
    max_attempts: Optional[int] = None,
    context=None,
    label: str = "forward",
) -> DeliveryReport:
    """Deliver one-hop demands reliably, or raise :class:`DeliveryTimeout`.

    The fault-tolerant counterpart of
    :func:`repro.congest.forwarding.forward_demands`: same demand
    semantics (every ``(origin, target)`` must be an edge; contended
    demands queue), but delivery survives a faulty wire via per-link
    ARQ.

    Args:
        graph: the network.
        origins / targets: demand endpoints (same length).
        faults: :class:`FaultPlan` to run under; ``None`` or a null plan
            runs the clean wire (and then ``retry_rounds`` is 0).
        validate: outbox-validation mode for :meth:`Network.run`.
        max_attempts: per-token transmission budget; defaults to the
            plan's spec (or :data:`DEFAULT_MAX_ATTEMPTS`).
        context: optional :class:`repro.runtime.RunContext`; when given
            and faults are active, the overhead is charged as
            ``faults/retry-rounds``.
        label: stage name used in charges and timeout diagnostics.

    Returns:
        a :class:`DeliveryReport`; ``delivered == expected`` always
        holds on return.

    Raises:
        DeliveryTimeout: if any token exhausted its retry budget or the
            network's round budget ran out (e.g. a crash window outlived
            every retry) — with the undelivered ``(node, target)`` pairs
            attached.
    """
    origins = [int(origin) for origin in origins]
    targets = [int(target) for target in targets]
    if len(origins) != len(targets):
        raise ValueError("origins and targets must have the same length")
    if faults is not None and faults.spec.is_null:
        faults = None
    if max_attempts is None:
        max_attempts = (
            faults.spec.max_attempts if faults is not None
            else DEFAULT_MAX_ATTEMPTS
        )
    network = Network(graph)
    per_node: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    link_load: dict[tuple[int, int], int] = {}
    for origin, target in zip(origins, targets):
        per_node[origin].append(target)
        link_load[(origin, target)] = link_load.get((origin, target), 0) + 1
    max_mult = max(link_load.values(), default=0)
    ideal_rounds = 2 * max_mult
    algorithms = [
        ReliableForwarder(
            network.context(v), per_node[v], max_attempts=max_attempts
        )
        for v in range(graph.num_nodes)
    ]
    # Bounded budget: a token retires (delivered or abandoned) within
    # max_attempts backoff periods, links run in parallel, so the run
    # either terminates within this budget or something is wedged
    # (e.g. a crash window outliving every retry) — which must surface
    # as a diagnosable timeout, never as an unbounded spin.
    budget = 100 + max(1, max_mult) * max_attempts * (BACKOFF_CAP + 2)
    try:
        stats = network.run(
            algorithms,
            max_rounds=budget,
            validate=validate,
            faults=faults,
        )
    except CongestViolation:
        raise
    except RuntimeError as error:
        undelivered = [
            (v, target)
            for v, algorithm in enumerate(algorithms)
            for target, _seq in algorithm.undelivered()
        ]
        raise DeliveryTimeout(
            f"{label}: network round budget ({budget}) exhausted with "
            f"{len(undelivered)} demand(s) undelivered: "
            f"{undelivered[:8]}{'...' if len(undelivered) > 8 else ''}",
            undelivered=undelivered,
            stage=label,
        ) from error
    failed = [
        (v, target)
        for v, algorithm in enumerate(algorithms)
        for target, _seq in algorithm.failed
    ]
    delivered = sum(algorithm.received for algorithm in algorithms)
    expected = len(origins)
    if failed or delivered != expected:
        raise DeliveryTimeout(
            f"{label}: delivered {delivered}/{expected} demands; "
            f"{len(failed)} token(s) exhausted the {max_attempts}-attempt "
            f"retry budget: {failed[:8]}"
            f"{'...' if len(failed) > 8 else ''}",
            undelivered=failed,
            stage=label,
        )
    retry_rounds = max(0, stats.rounds - ideal_rounds)
    retransmissions = sum(algorithm.retries for algorithm in algorithms)
    if context is not None and faults is not None:
        context.charge(
            "faults/retry-rounds",
            float(retry_rounds),
            stage=label,
            rounds_total=stats.rounds,
            ideal_rounds=ideal_rounds,
            retransmissions=retransmissions,
            dropped=stats.dropped,
            duplicated=stats.duplicated,
            delayed=stats.delayed,
            crash_dropped=stats.crash_dropped,
        )
    return DeliveryReport(
        delivered=delivered,
        expected=expected,
        rounds=stats.rounds,
        messages=stats.messages,
        ideal_rounds=ideal_rounds,
        retry_rounds=retry_rounds,
        retransmissions=retransmissions,
        stats=stats,
    )
