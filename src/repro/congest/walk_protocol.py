"""Distributed random walks with reversal, as real message passing.

The paper's constructions all rest on one mechanic (Section 3.1.1): run
many walk tokens forward for ``~tau_mix`` steps — queuing on edges, one
token per edge per direction per round — while *every node remembers in
which direction it forwarded each token*; then run the tokens backwards
along the remembered directions to tell the sources where their walks
ended.  The vectorized engines simulate this implicitly; this module
executes it, message by message, on the CONGEST simulator:

* **Forward pass**: a token ``(walk_id, ttl)`` performs lazy steps; a
  stay consumes a step immediately, a move enqueues the token on the
  chosen edge (FIFO, one token per edge-direction per round) and the step
  completes when it crosses.  Each crossing is recorded by the receiving
  node (a visit stack per walk, since walks may revisit nodes).
* **Reverse pass**: endpoints launch the tokens back; every node pops
  its visit stack for the walk and forwards the token to where it came
  from, under the same edge-capacity queueing.

The test suite checks that every token returns exactly to its origin —
the property the overlay construction depends on — and that endpoints
are near-stationary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..graphs.graph import Graph
from ..rng import derive_rng
from .detector import MAX_WAIT_ROUNDS, CrashView, crash_view
from .faults import DeliveryTimeout, FaultPlan
from .network import CongestViolation, Network, NodeAlgorithm

__all__ = ["WalkProtocolOutcome", "run_walk_protocol"]


@dataclass
class WalkProtocolOutcome:
    """Result of one forward + reverse walk execution.

    Attributes:
        starts: origin node per walk.
        endpoints: node where each walk's forward pass ended.
        returned_to: node where each walk's reverse pass ended (must equal
            ``starts``).
        forward_rounds: CONGEST rounds of the forward pass.
        reverse_rounds: CONGEST rounds of the reverse pass.
        messages: total messages across both passes.
        orphaned: walk ids abandoned under ``recovery="self-heal"``
            because their origin is permanently crashed (their
            ``endpoints``/``returned_to`` entries stay -1); always empty
            under fail-fast.
    """

    starts: np.ndarray
    endpoints: np.ndarray
    returned_to: np.ndarray
    forward_rounds: int
    reverse_rounds: int
    messages: int
    orphaned: tuple = ()


@dataclass
class _WalkState:
    """Per-node protocol state shared between the two passes."""

    rng: np.random.Generator
    visit_stack: dict[int, list[int]]  # walk_id -> senders, in visit order
    finished_here: dict[int, int]  # walk_id -> remaining ttl (== 0)


class _SelfHealMixin:
    """Crash-aware emission shared by the two walk-pass nodes.

    With a failure-detector ``view``, a node holds a departure while the
    *delivery* round (emission round + 1) falls inside a crash window of
    either endpoint: a copy sent into a window is lost on the unreliable
    walk wire, and the walk protocol (unlike the ARQ layer) never
    retransmits.  Without a view every check is a no-op, so the
    fail-fast path is untouched, decision for decision.
    """

    view: Optional[CrashView] = None
    parked = 0

    def _blocked(self, target: int, round_number: int) -> bool:
        if self.view is None:
            return False
        delivery = round_number + 1
        if self.view.down_until(self.context.node_id, delivery) >= 0:
            return True
        return self.view.down_until(target, delivery) >= 0


class _ForwardNode(_SelfHealMixin, NodeAlgorithm):
    """Forward pass: lazy-step tokens with per-edge FIFO queues."""

    def __init__(
        self,
        context,
        state: _WalkState,
        initial_tokens,
        view: Optional[CrashView] = None,
        avoid: frozenset = frozenset(),
    ):
        super().__init__(context)
        self.state = state
        self.view = view
        # Permanently crashed neighbours: walks step around them (the
        # walk continues on the live subgraph instead of vanishing).
        self.live_neighbors = tuple(
            v for v in context.neighbors if int(v) not in avoid
        )
        self.queues: dict[int, deque] = {}
        for walk_id, ttl in initial_tokens:
            self._admit(walk_id, ttl)

    def _admit(self, walk_id: int, ttl: int) -> None:
        """Perform stays locally; enqueue the token once it must move."""
        neighbors = self.live_neighbors
        degree = len(neighbors)
        while ttl > 0:
            if degree == 0 or self.state.rng.random() < 0.5:
                ttl -= 1  # lazy stay
                continue
            target = int(
                neighbors[self.state.rng.integers(0, degree)]
            )
            self.queues.setdefault(target, deque()).append((walk_id, ttl))
            return
        self.state.finished_here[walk_id] = 0

    def _outbox(self, round_number: int) -> Mapping[int, tuple]:
        outbox = {}
        for target in list(self.queues):
            queue = self.queues[target]
            if queue and not self._blocked(target, round_number):
                walk_id, ttl = queue.popleft()
                outbox[target] = ("walk", walk_id, ttl)
            elif queue:
                self.parked += 1
            if not queue:
                del self.queues[target]
        self.finished = not self.queues
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._outbox(0)

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            __, walk_id, ttl = payload
            self.state.visit_stack.setdefault(walk_id, []).append(sender)
            self._admit(walk_id, ttl - 1)
        return self._outbox(round_number)


class _ReverseNode(_SelfHealMixin, NodeAlgorithm):
    """Reverse pass: pop the visit stack and send the token back."""

    def __init__(
        self,
        context,
        state: _WalkState,
        view: Optional[CrashView] = None,
    ):
        super().__init__(context)
        self.state = state
        self.view = view
        self.queues: dict[int, deque] = {}
        self.home_tokens: list[int] = []
        for walk_id in state.finished_here:
            self._bounce(walk_id)

    def _bounce(self, walk_id: int) -> None:
        stack = self.state.visit_stack.get(walk_id)
        if stack:
            sender = stack.pop()
            self.queues.setdefault(sender, deque()).append(walk_id)
        else:
            self.home_tokens.append(walk_id)  # back at the origin

    def _outbox(self, round_number: int) -> Mapping[int, tuple]:
        outbox = {}
        for target in list(self.queues):
            queue = self.queues[target]
            if queue and not self._blocked(target, round_number):
                outbox[target] = ("back", queue.popleft())
            elif queue:
                self.parked += 1
            if not queue:
                del self.queues[target]
        self.finished = not self.queues
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._outbox(0)

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for __, payload in inbox.items():
            self._bounce(int(payload[1]))
        return self._outbox(round_number)


def _run_pass(
    network: Network,
    algorithms,
    length: int,
    validate: str,
    faults: Optional[FaultPlan],
    stage: str,
    extra_rounds: int = 0,
):
    """One protocol pass; round-budget exhaustion under faults becomes a
    diagnosable :class:`DeliveryTimeout` (a crash window can wedge an
    unfinished node forever, which must not surface as a bare
    ``RuntimeError``)."""
    max_rounds = 10000 * (length + 1) + extra_rounds
    try:
        return network.run(
            algorithms,
            max_rounds=max_rounds,
            validate=validate,
            faults=faults,
        )
    except CongestViolation:
        raise
    except RuntimeError as error:
        if faults is None:
            raise
        raise DeliveryTimeout(
            f"{stage}: round budget ({max_rounds}) exhausted under "
            f"faults — a crash window likely outlived the protocol",
            stage=stage,
        ) from error


def run_walk_protocol(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    seed: int = 0,
    validate: str = "full",
    faults: Optional[FaultPlan] = None,
    recovery: str = "fail-fast",
    view: Optional[CrashView] = None,
    context=None,
    max_wait: int = MAX_WAIT_ROUNDS,
) -> WalkProtocolOutcome:
    """Execute the forward+reverse walk protocol on ``graph``.

    Args:
        graph: the network.
        starts: origin node per walk token.
        length: lazy steps per walk.
        seed: base seed for the per-node randomness.
        validate: outbox-validation mode passed to
            :meth:`repro.congest.network.Network.run`.
        faults: optional :class:`~repro.congest.faults.FaultPlan`.  The
            walk tokens themselves are *not* retransmitted (the protocol
            is the paper's, verbatim); instead any walk the faulty wire
            loses or misdelivers is detected after each pass and raised
            as a :class:`~repro.congest.faults.DeliveryTimeout` — the
            outcome is never silently partial.
        recovery: ``"fail-fast"`` (crash windows that swallow a token
            raise) or ``"self-heal"`` — nodes read the failure
            detector's crash view, park departures whose delivery round
            falls inside a window of either endpoint, step walks around
            permanently crashed neighbours, and report walks from
            permanently crashed origins as ``orphaned`` instead of
            raising.
        view: pre-built :class:`~repro.congest.detector.CrashView`;
            under self-heal one is derived from ``context`` or the plan
            when absent.
        context: optional :class:`repro.runtime.RunContext`; under
            self-heal the parked-token rounds are charged to
            ``recovery/wait``.
        max_wait: crash windows ending after this round count as
            permanent (their nodes are avoided, not waited for).

    Returns:
        A :class:`WalkProtocolOutcome`; ``returned_to`` equals ``starts``
        by construction of the reversal (asserted by tests, not here).
    """
    starts = np.asarray(starts, dtype=np.int64)
    if faults is not None and faults.spec.is_null:
        faults = None
    if recovery not in ("fail-fast", "self-heal"):
        raise ValueError(
            f"recovery must be 'fail-fast' or 'self-heal', "
            f"got {recovery!r}"
        )
    n = graph.num_nodes
    self_heal = (
        recovery == "self-heal"
        and faults is not None
        and bool(faults.spec.crashes)
    )
    dead: frozenset = frozenset()
    orphaned: list[int] = []
    extra_rounds = 0
    if self_heal:
        if view is None:
            getter = getattr(context, "crash_view_for", None)
            if getter is not None:
                view = getter(n)
            else:
                view = crash_view(faults, n)
        dead = frozenset(view.permanently_down(max_wait))
        extra_rounds = view.waitable_end(max_wait)
        orphaned = [
            walk_id
            for walk_id, origin in enumerate(starts)
            if int(origin) in dead
        ]
    else:
        view = None
    network = Network(graph)
    states = [
        _WalkState(
            rng=derive_rng(seed, v),
            visit_stack={},
            finished_here={},
        )
        for v in range(n)
    ]
    orphan_set = set(orphaned)
    per_node_tokens: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for walk_id, origin in enumerate(starts):
        if walk_id in orphan_set:
            continue
        per_node_tokens[int(origin)].append((walk_id, length))
    forward = [
        _ForwardNode(
            network.context(v), states[v], per_node_tokens[v],
            view=view, avoid=dead,
        )
        for v in range(n)
    ]
    forward_stats = _run_pass(
        network, forward, length, validate, faults,
        stage="walk-forward", extra_rounds=extra_rounds,
    )
    endpoints = np.full(starts.shape[0], -1, dtype=np.int64)
    for v, state in enumerate(states):
        for walk_id in state.finished_here:
            endpoints[walk_id] = v
    if faults is not None:
        lost = np.flatnonzero(endpoints < 0)
        lost = np.asarray(
            [w for w in lost.tolist() if w not in orphan_set],
            dtype=np.int64,
        )
        if lost.size:
            raise DeliveryTimeout(
                f"walk-forward: the faulty wire lost {lost.size}/"
                f"{starts.shape[0]} walk token(s): walks "
                f"{lost[:8].tolist()}{'...' if lost.size > 8 else ''}",
                undelivered=[
                    (int(starts[w]), -1) for w in lost[:64]
                ],
                stage="walk-forward",
            )
    reverse = [
        _ReverseNode(network.context(v), states[v], view=view)
        for v in range(n)
    ]
    reverse_stats = _run_pass(
        network, reverse, length, validate, faults,
        stage="walk-reverse", extra_rounds=extra_rounds,
    )
    returned = np.full(starts.shape[0], -1, dtype=np.int64)
    for v, algorithm in enumerate(reverse):
        for walk_id in algorithm.home_tokens:
            returned[walk_id] = v
    if faults is not None:
        astray = np.flatnonzero(returned != starts)
        astray = np.asarray(
            [w for w in astray.tolist() if w not in orphan_set],
            dtype=np.int64,
        )
        if astray.size:
            raise DeliveryTimeout(
                f"walk-reverse: {astray.size}/{starts.shape[0]} walk "
                f"token(s) failed to return to their origin under "
                f"faults: walks {astray[:8].tolist()}"
                f"{'...' if astray.size > 8 else ''}",
                undelivered=[
                    (int(returned[w]), int(starts[w])) for w in astray[:64]
                ],
                stage="walk-reverse",
            )
    if self_heal and context is not None:
        parked = sum(a.parked for a in forward) + sum(
            a.parked for a in reverse
        )
        context.charge(
            "recovery/wait",
            float(parked),
            stage="walk-protocol",
            parked=parked,
            orphaned=len(orphaned),
            avoided=len(dead),
        )
    return WalkProtocolOutcome(
        starts=starts,
        endpoints=endpoints,
        returned_to=returned,
        forward_rounds=forward_stats.rounds,
        reverse_rounds=reverse_stats.rounds,
        messages=forward_stats.messages + reverse_stats.messages,
        orphaned=tuple(orphaned),
    )
