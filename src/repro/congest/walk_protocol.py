"""Distributed random walks with reversal, as real message passing.

The paper's constructions all rest on one mechanic (Section 3.1.1): run
many walk tokens forward for ``~tau_mix`` steps — queuing on edges, one
token per edge per direction per round — while *every node remembers in
which direction it forwarded each token*; then run the tokens backwards
along the remembered directions to tell the sources where their walks
ended.

Two engines execute that mechanic:

* the **scalar oracle** — one :class:`~repro.congest.walk_state.
  ForwardWalkNode`/:class:`~repro.congest.walk_state.ReverseWalkNode`
  per node, message by message, on the CONGEST simulator; and
* the **vectorized engine** (:mod:`repro.congest.walk_engine_vec`) —
  the same execution as flat-array gather/scatter, seed-for-seed and
  round-for-round identical.

Both read every lazy-step decision off one shared
:class:`~repro.congest.walk_state.WalkTape`, which is what makes the
equivalence exact rather than merely distributional.  The dispatch
lives in :func:`run_walk_protocol` (``engine="auto"`` picks the
vectorized engine whenever the fault mode allows it); the test suite
checks both that every token returns exactly to its origin — the
property the overlay construction depends on — and that the two
engines' outcomes are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from .detector import MAX_WAIT_ROUNDS, CrashView, crash_view
from .faults import DeliveryTimeout, FaultPlan
from .network import CongestViolation, Network
from .walk_engine_vec import run_walk_protocol_vec
from .walk_state import ForwardWalkNode, ReverseWalkNode, WalkState, WalkTape

__all__ = ["WalkProtocolOutcome", "run_walk_protocol"]

_ENGINES = ("auto", "scalar", "vectorized")


@dataclass
class WalkProtocolOutcome:
    """Result of one forward + reverse walk execution.

    Attributes:
        starts: origin node per walk.
        endpoints: node where each walk's forward pass ended.
        returned_to: node where each walk's reverse pass ended (must equal
            ``starts``).
        forward_rounds: CONGEST rounds of the forward pass.
        reverse_rounds: CONGEST rounds of the reverse pass.
        messages: total messages across both passes.
        orphaned: walk ids abandoned under ``recovery="self-heal"``
            because their origin is permanently crashed (their
            ``endpoints``/``returned_to`` entries stay -1); always empty
            under fail-fast.
    """

    starts: np.ndarray
    endpoints: np.ndarray
    returned_to: np.ndarray
    forward_rounds: int
    reverse_rounds: int
    messages: int
    orphaned: tuple = ()


def _run_pass(
    network: Network,
    algorithms,
    length: int,
    validate: str,
    faults: Optional[FaultPlan],
    stage: str,
    extra_rounds: int = 0,
    workers: int = 1,
):
    """One protocol pass; round-budget exhaustion under faults becomes a
    diagnosable :class:`DeliveryTimeout` (a crash window can wedge an
    unfinished node forever, which must not surface as a bare
    ``RuntimeError``)."""
    max_rounds = 10000 * (length + 1) + extra_rounds
    try:
        return network.run(
            algorithms,
            max_rounds=max_rounds,
            validate=validate,
            faults=faults,
            workers=workers,
        )
    except CongestViolation:
        raise
    except RuntimeError as error:
        if faults is None:
            raise
        raise DeliveryTimeout(
            f"{stage}: round budget ({max_rounds}) exhausted under "
            f"faults — a crash window likely outlived the protocol",
            stage=stage,
        ) from error


def _check_lost(
    endpoints: np.ndarray,
    starts: np.ndarray,
    orphan_set: set,
    faults: Optional[FaultPlan],
) -> None:
    """Raise if the faulty wire swallowed any non-orphan forward token."""
    if faults is None:
        return
    lost = np.flatnonzero(endpoints < 0)
    lost = np.asarray(
        [w for w in lost.tolist() if w not in orphan_set],
        dtype=np.int64,
    )
    if lost.size:
        raise DeliveryTimeout(
            f"walk-forward: the faulty wire lost {lost.size}/"
            f"{starts.shape[0]} walk token(s): walks "
            f"{lost[:8].tolist()}{'...' if lost.size > 8 else ''}",
            undelivered=[(int(starts[w]), -1) for w in lost[:64]],
            stage="walk-forward",
        )


def _check_astray(
    returned: np.ndarray,
    starts: np.ndarray,
    orphan_set: set,
    faults: Optional[FaultPlan],
) -> None:
    """Raise if any non-orphan token failed to return to its origin."""
    if faults is None:
        return
    astray = np.flatnonzero(returned != starts)
    astray = np.asarray(
        [w for w in astray.tolist() if w not in orphan_set],
        dtype=np.int64,
    )
    if astray.size:
        raise DeliveryTimeout(
            f"walk-reverse: {astray.size}/{starts.shape[0]} walk "
            f"token(s) failed to return to their origin under "
            f"faults: walks {astray[:8].tolist()}"
            f"{'...' if astray.size > 8 else ''}",
            undelivered=[
                (int(returned[w]), int(starts[w])) for w in astray[:64]
            ],
            stage="walk-reverse",
        )


def _vec_handles(faults: Optional[FaultPlan], self_heal: bool) -> bool:
    """Whether the array engine covers this fault mode exactly.

    Fault-free runs always qualify.  Crash-only plans qualify under
    self-heal: they draw nothing from the sequential per-message link
    stream (``link_copies`` short-circuits at rate 0) and the blocking
    crash view makes every emission deliverable, so the array engine
    sees the identical execution.  Wire-level rates (drop/dup/delay)
    and fail-fast crash runs need the per-message RNG — scalar only.
    """
    if faults is None:
        return True
    spec = faults.spec
    if spec.drop or spec.duplicate or spec.delay:
        return False
    return self_heal


def run_walk_protocol(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    seed: int = 0,
    validate: str = "full",
    faults: Optional[FaultPlan] = None,
    recovery: str = "fail-fast",
    view: Optional[CrashView] = None,
    context=None,
    max_wait: int = MAX_WAIT_ROUNDS,
    engine: str = "auto",
    workers: int = 1,
) -> WalkProtocolOutcome:
    """Execute the forward+reverse walk protocol on ``graph``.

    Args:
        graph: the network.
        starts: origin node per walk token.
        length: lazy steps per walk.
        seed: seed of the shared decision tape (one stream for the whole
            batch; both engines index it identically).
        validate: outbox-validation mode passed to
            :meth:`repro.congest.network.Network.run` (scalar engine
            only — the array engine sends along graph edges by
            construction).
        faults: optional :class:`~repro.congest.faults.FaultPlan`.  The
            walk tokens themselves are *not* retransmitted (the protocol
            is the paper's, verbatim); instead any walk the faulty wire
            loses or misdelivers is detected after each pass and raised
            as a :class:`~repro.congest.faults.DeliveryTimeout` — the
            outcome is never silently partial.
        recovery: ``"fail-fast"`` (crash windows that swallow a token
            raise) or ``"self-heal"`` — nodes read the failure
            detector's crash view, park departures whose delivery round
            falls inside a window of either endpoint, step walks around
            permanently crashed neighbours, and report walks from
            permanently crashed origins as ``orphaned`` instead of
            raising.
        view: pre-built :class:`~repro.congest.detector.CrashView`;
            under self-heal one is derived from ``context`` or the plan
            when absent.
        context: optional :class:`repro.runtime.RunContext`; under
            self-heal the parked-token rounds are charged to
            ``recovery/wait``.
        max_wait: crash windows ending after this round count as
            permanent (their nodes are avoided, not waited for).
        engine: ``"auto"`` (vectorized whenever the fault mode allows,
            else scalar), ``"scalar"`` (the per-node oracle), or
            ``"vectorized"`` (raises if the fault mode needs the scalar
            path).
        workers: delivery shards for the scalar engine's
            :meth:`Network.run` (ignored by the vectorized engine,
            which has no per-node message loop to shard).

    Returns:
        A :class:`WalkProtocolOutcome`; ``returned_to`` equals ``starts``
        by construction of the reversal (asserted by tests, not here).
    """
    starts = np.asarray(starts, dtype=np.int64)
    if faults is not None and faults.spec.is_null:
        faults = None
    if recovery not in ("fail-fast", "self-heal"):
        raise ValueError(
            f"recovery must be 'fail-fast' or 'self-heal', "
            f"got {recovery!r}"
        )
    if engine not in _ENGINES:
        raise ValueError(
            f"engine must be one of {_ENGINES}, got {engine!r}"
        )
    n = graph.num_nodes
    num_walks = int(starts.shape[0])
    self_heal = (
        recovery == "self-heal"
        and faults is not None
        and bool(faults.spec.crashes)
    )
    dead: frozenset = frozenset()
    orphaned: list[int] = []
    extra_rounds = 0
    if self_heal:
        if view is None:
            getter = getattr(context, "crash_view_for", None)
            if getter is not None:
                view = getter(n)
            else:
                view = crash_view(faults, n)
        dead = frozenset(view.permanently_down(max_wait))
        extra_rounds = view.waitable_end(max_wait)
        orphaned = [
            walk_id
            for walk_id, origin in enumerate(starts)
            if int(origin) in dead
        ]
    else:
        view = None
    vec_ok = _vec_handles(faults, self_heal)
    if engine == "vectorized" and not vec_ok:
        raise ValueError(
            "engine='vectorized' covers fault-free runs and crash-only "
            "plans under recovery='self-heal'; wire-level fault rates "
            "and fail-fast crash runs need engine='scalar' (or 'auto')"
        )
    use_vec = engine == "vectorized" or (engine == "auto" and vec_ok)
    tape = WalkTape.sample(seed, num_walks, length)
    orphan_set = set(orphaned)
    max_rounds = 10000 * (length + 1) + extra_rounds

    if use_vec:
        active = np.ones(num_walks, dtype=bool)
        if orphaned:
            active[np.asarray(orphaned, dtype=np.int64)] = False
        try:
            vec = run_walk_protocol_vec(
                graph, starts, tape,
                view=view, dead=dead, active=active,
                max_rounds=max_rounds,
            )
        except RuntimeError as error:
            if faults is None:
                raise
            raise DeliveryTimeout(
                f"walk-protocol: round budget ({max_rounds}) exhausted "
                f"under faults — a crash window likely outlived the "
                f"protocol",
                stage="walk-protocol",
            ) from error
        endpoints = vec.endpoints
        returned = vec.returned_to
        forward_rounds = vec.forward_rounds
        reverse_rounds = vec.reverse_rounds
        messages = vec.messages
        parked = vec.parked
    else:
        network = Network(graph)
        states = [WalkState() for _ in range(n)]
        per_node_tokens: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for walk_id, origin in enumerate(starts):
            if walk_id in orphan_set:
                continue
            per_node_tokens[int(origin)].append((walk_id, length))
        forward = [
            ForwardWalkNode(
                network.context(v), states[v], tape, per_node_tokens[v],
                view=view, avoid=dead,
            )
            for v in range(n)
        ]
        forward_stats = _run_pass(
            network, forward, length, validate, faults,
            stage="walk-forward", extra_rounds=extra_rounds,
            workers=workers,
        )
        endpoints = np.full(num_walks, -1, dtype=np.int64)
        for v, state in enumerate(states):
            for walk_id in state.finished_here:
                endpoints[walk_id] = v
        # A swallowed forward token surfaces before the reversal starts,
        # exactly as the scalar protocol always has.
        _check_lost(endpoints, starts, orphan_set, faults)
        reverse = [
            ReverseWalkNode(network.context(v), states[v], view=view)
            for v in range(n)
        ]
        reverse_stats = _run_pass(
            network, reverse, length, validate, faults,
            stage="walk-reverse", extra_rounds=extra_rounds,
            workers=workers,
        )
        returned = np.full(num_walks, -1, dtype=np.int64)
        for v, algorithm in enumerate(reverse):
            for walk_id in algorithm.home_tokens:
                returned[walk_id] = v
        forward_rounds = forward_stats.rounds
        reverse_rounds = reverse_stats.rounds
        messages = forward_stats.messages + reverse_stats.messages
        parked = sum(a.parked for a in forward) + sum(
            a.parked for a in reverse
        )

    if use_vec:
        _check_lost(endpoints, starts, orphan_set, faults)
    _check_astray(returned, starts, orphan_set, faults)
    if self_heal and context is not None:
        context.charge(
            "recovery/wait",
            float(parked),
            stage="walk-protocol",
            parked=parked,
            orphaned=len(orphaned),
            avoided=len(dead),
        )
    return WalkProtocolOutcome(
        starts=starts,
        endpoints=endpoints,
        returned_to=returned,
        forward_rounds=forward_rounds,
        reverse_rounds=reverse_rounds,
        messages=messages,
        orphaned=tuple(orphaned),
    )
