"""Distributed random walks with reversal, as real message passing.

The paper's constructions all rest on one mechanic (Section 3.1.1): run
many walk tokens forward for ``~tau_mix`` steps — queuing on edges, one
token per edge per direction per round — while *every node remembers in
which direction it forwarded each token*; then run the tokens backwards
along the remembered directions to tell the sources where their walks
ended.  The vectorized engines simulate this implicitly; this module
executes it, message by message, on the CONGEST simulator:

* **Forward pass**: a token ``(walk_id, ttl)`` performs lazy steps; a
  stay consumes a step immediately, a move enqueues the token on the
  chosen edge (FIFO, one token per edge-direction per round) and the step
  completes when it crosses.  Each crossing is recorded by the receiving
  node (a visit stack per walk, since walks may revisit nodes).
* **Reverse pass**: endpoints launch the tokens back; every node pops
  its visit stack for the walk and forwards the token to where it came
  from, under the same edge-capacity queueing.

The test suite checks that every token returns exactly to its origin —
the property the overlay construction depends on — and that endpoints
are near-stationary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..graphs.graph import Graph
from ..rng import derive_rng
from .faults import DeliveryTimeout, FaultPlan
from .network import CongestViolation, Network, NodeAlgorithm

__all__ = ["WalkProtocolOutcome", "run_walk_protocol"]


@dataclass
class WalkProtocolOutcome:
    """Result of one forward + reverse walk execution.

    Attributes:
        starts: origin node per walk.
        endpoints: node where each walk's forward pass ended.
        returned_to: node where each walk's reverse pass ended (must equal
            ``starts``).
        forward_rounds: CONGEST rounds of the forward pass.
        reverse_rounds: CONGEST rounds of the reverse pass.
        messages: total messages across both passes.
    """

    starts: np.ndarray
    endpoints: np.ndarray
    returned_to: np.ndarray
    forward_rounds: int
    reverse_rounds: int
    messages: int


@dataclass
class _WalkState:
    """Per-node protocol state shared between the two passes."""

    rng: np.random.Generator
    visit_stack: dict[int, list[int]]  # walk_id -> senders, in visit order
    finished_here: dict[int, int]  # walk_id -> remaining ttl (== 0)


class _ForwardNode(NodeAlgorithm):
    """Forward pass: lazy-step tokens with per-edge FIFO queues."""

    def __init__(self, context, state: _WalkState, initial_tokens):
        super().__init__(context)
        self.state = state
        self.queues: dict[int, deque] = {}
        for walk_id, ttl in initial_tokens:
            self._admit(walk_id, ttl)

    def _admit(self, walk_id: int, ttl: int) -> None:
        """Perform stays locally; enqueue the token once it must move."""
        degree = self.context.degree
        while ttl > 0:
            if degree == 0 or self.state.rng.random() < 0.5:
                ttl -= 1  # lazy stay
                continue
            target = int(
                self.context.neighbors[
                    self.state.rng.integers(0, degree)
                ]
            )
            self.queues.setdefault(target, deque()).append((walk_id, ttl))
            return
        self.state.finished_here[walk_id] = 0

    def _outbox(self) -> Mapping[int, tuple]:
        outbox = {}
        for target in list(self.queues):
            queue = self.queues[target]
            if queue:
                walk_id, ttl = queue.popleft()
                outbox[target] = ("walk", walk_id, ttl)
            if not queue:
                del self.queues[target]
        self.finished = not self.queues
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._outbox()

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            __, walk_id, ttl = payload
            self.state.visit_stack.setdefault(walk_id, []).append(sender)
            self._admit(walk_id, ttl - 1)
        return self._outbox()


class _ReverseNode(NodeAlgorithm):
    """Reverse pass: pop the visit stack and send the token back."""

    def __init__(self, context, state: _WalkState):
        super().__init__(context)
        self.state = state
        self.queues: dict[int, deque] = {}
        self.home_tokens: list[int] = []
        for walk_id in state.finished_here:
            self._bounce(walk_id)

    def _bounce(self, walk_id: int) -> None:
        stack = self.state.visit_stack.get(walk_id)
        if stack:
            sender = stack.pop()
            self.queues.setdefault(sender, deque()).append(walk_id)
        else:
            self.home_tokens.append(walk_id)  # back at the origin

    def _outbox(self) -> Mapping[int, tuple]:
        outbox = {}
        for target in list(self.queues):
            queue = self.queues[target]
            if queue:
                outbox[target] = ("back", queue.popleft())
            if not queue:
                del self.queues[target]
        self.finished = not self.queues
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._outbox()

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for __, payload in inbox.items():
            self._bounce(int(payload[1]))
        return self._outbox()


def _run_pass(
    network: Network,
    algorithms,
    length: int,
    validate: str,
    faults: Optional[FaultPlan],
    stage: str,
):
    """One protocol pass; round-budget exhaustion under faults becomes a
    diagnosable :class:`DeliveryTimeout` (a crash window can wedge an
    unfinished node forever, which must not surface as a bare
    ``RuntimeError``)."""
    max_rounds = 10000 * (length + 1)
    try:
        return network.run(
            algorithms,
            max_rounds=max_rounds,
            validate=validate,
            faults=faults,
        )
    except CongestViolation:
        raise
    except RuntimeError as error:
        if faults is None:
            raise
        raise DeliveryTimeout(
            f"{stage}: round budget ({max_rounds}) exhausted under "
            f"faults — a crash window likely outlived the protocol",
            stage=stage,
        ) from error


def run_walk_protocol(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    seed: int = 0,
    validate: str = "full",
    faults: Optional[FaultPlan] = None,
) -> WalkProtocolOutcome:
    """Execute the forward+reverse walk protocol on ``graph``.

    Args:
        graph: the network.
        starts: origin node per walk token.
        length: lazy steps per walk.
        seed: base seed for the per-node randomness.
        validate: outbox-validation mode passed to
            :meth:`repro.congest.network.Network.run`.
        faults: optional :class:`~repro.congest.faults.FaultPlan`.  The
            walk tokens themselves are *not* retransmitted (the protocol
            is the paper's, verbatim); instead any walk the faulty wire
            loses or misdelivers is detected after each pass and raised
            as a :class:`~repro.congest.faults.DeliveryTimeout` — the
            outcome is never silently partial.

    Returns:
        A :class:`WalkProtocolOutcome`; ``returned_to`` equals ``starts``
        by construction of the reversal (asserted by tests, not here).
    """
    starts = np.asarray(starts, dtype=np.int64)
    if faults is not None and faults.spec.is_null:
        faults = None
    network = Network(graph)
    n = graph.num_nodes
    states = [
        _WalkState(
            rng=derive_rng(seed, v),
            visit_stack={},
            finished_here={},
        )
        for v in range(n)
    ]
    per_node_tokens: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for walk_id, origin in enumerate(starts):
        per_node_tokens[int(origin)].append((walk_id, length))
    forward = [
        _ForwardNode(network.context(v), states[v], per_node_tokens[v])
        for v in range(n)
    ]
    forward_stats = _run_pass(
        network, forward, length, validate, faults, stage="walk-forward"
    )
    endpoints = np.full(starts.shape[0], -1, dtype=np.int64)
    for v, state in enumerate(states):
        for walk_id in state.finished_here:
            endpoints[walk_id] = v
    if faults is not None:
        lost = np.flatnonzero(endpoints < 0)
        if lost.size:
            raise DeliveryTimeout(
                f"walk-forward: the faulty wire lost {lost.size}/"
                f"{starts.shape[0]} walk token(s): walks "
                f"{lost[:8].tolist()}{'...' if lost.size > 8 else ''}",
                undelivered=[
                    (int(starts[w]), -1) for w in lost[:64]
                ],
                stage="walk-forward",
            )
    reverse = [
        _ReverseNode(network.context(v), states[v]) for v in range(n)
    ]
    reverse_stats = _run_pass(
        network, reverse, length, validate, faults, stage="walk-reverse"
    )
    returned = np.full(starts.shape[0], -1, dtype=np.int64)
    for v, algorithm in enumerate(reverse):
        for walk_id in algorithm.home_tokens:
            returned[walk_id] = v
    if faults is not None:
        astray = np.flatnonzero(returned != starts)
        if astray.size:
            raise DeliveryTimeout(
                f"walk-reverse: {astray.size}/{starts.shape[0]} walk "
                f"token(s) failed to return to their origin under "
                f"faults: walks {astray[:8].tolist()}"
                f"{'...' if astray.size > 8 else ''}",
                undelivered=[
                    (int(returned[w]), int(starts[w])) for w in astray[:64]
                ],
                stage="walk-reverse",
            )
    return WalkProtocolOutcome(
        starts=starts,
        endpoints=endpoints,
        returned_to=returned,
        forward_rounds=forward_stats.rounds,
        reverse_rounds=reverse_stats.rounds,
        messages=forward_stats.messages + reverse_stats.messages,
    )
