"""A faithful synchronous CONGEST-model simulator.

The model of the paper's Section 1: the network is a graph; computation
proceeds in synchronous rounds; per round, each node may send one
``O(log n)``-bit message over each incident edge.  The simulator enforces
the one-message-per-edge-per-round constraint and the word budget, and
counts rounds and messages.  It is used to run the baselines and to
cross-validate the ledger-based round accounting of the walk machinery on
small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from ..graphs.graph import Graph, WeightedGraph
from .faults import FaultPlan, FaultRecord

__all__ = ["CongestViolation", "NodeContext", "NodeAlgorithm", "Network"]

#: Shared immutable inbox for nodes that received nothing this round —
#: avoids allocating ``n`` dicts per round when traffic is sparse.
_EMPTY_INBOX: Mapping[int, tuple] = MappingProxyType({})

#: How many O(log n)-bit words a single message may carry.  The model
#: allows O(log n) bits; we allow a small constant number of words
#: (IDs/weights), the standard reading used by all cited algorithms.
MESSAGE_WORD_LIMIT = 4


class CongestViolation(RuntimeError):
    """An algorithm broke a CONGEST constraint (bandwidth or addressing)."""


def _validate_payloads(
    sender: int,
    outbox: Mapping[int, tuple],
    round_number: int,
    neighbors: frozenset,
) -> None:
    """The CONGEST contract checks, shared by master and shard workers."""
    for target, payload in outbox.items():
        if target not in neighbors:
            raise CongestViolation(
                f"round {round_number}: node {sender} sent to "
                f"non-neighbor {target} (payload {payload!r}); CONGEST "
                "messages travel only along edges of the graph"
            )
        if not isinstance(payload, tuple):
            raise CongestViolation(
                f"round {round_number}: node {sender} sent a non-tuple "
                f"payload {payload!r} to {target}; payloads must be "
                "tuples of words"
            )
        if len(payload) > MESSAGE_WORD_LIMIT:
            raise CongestViolation(
                f"round {round_number}: node {sender} exceeded the "
                f"{MESSAGE_WORD_LIMIT}-word message budget to {target}: "
                f"{len(payload)} words in {payload!r}"
            )


def _fork_available() -> bool:
    """Sharded delivery needs copy-on-write process images (``fork``)."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _shard_worker(
    conn,
    algorithms: Sequence["NodeAlgorithm"],
    lo: int,
    hi: int,
    indptr_name: str,
    indices_name: str,
    num_nodes: int,
    num_arcs: int,
) -> None:
    """Per-shard process body: run ``receive`` for nodes ``[lo, hi)``.

    The algorithm objects arrive via fork (copy-on-write); the CSR used
    for outbox validation is attached from ``multiprocessing.shared_
    memory`` so all shards read one physical copy of the graph instead
    of faulting private pages of it.  Protocol on the pipe:

    * ``("round", r, mail, do_validate)`` → ``("ok", outboxes, finished)``
      with per-node lists for the shard's range, in node order;
    * ``("export",)`` → ``("state", {node: export_state()})`` and exit;
    * any exception → ``("raise", error)`` and exit (the master
      re-raises it, so a CongestViolation in a shard surfaces exactly
      like a single-process one).
    """
    from multiprocessing import shared_memory

    shm_indptr = shared_memory.SharedMemory(name=indptr_name)
    shm_indices = shared_memory.SharedMemory(name=indices_name)
    indptr = np.frombuffer(shm_indptr.buf, dtype=np.int64, count=num_nodes + 1)
    indices = np.frombuffer(shm_indices.buf, dtype=np.int64, count=num_arcs)
    neighbor_sets: dict[int, frozenset] = {}

    def sets_for(v: int) -> frozenset:
        cached = neighbor_sets.get(v)
        if cached is None:
            cached = neighbor_sets[v] = frozenset(
                int(w) for w in indices[indptr[v] : indptr[v + 1]]
            )
        return cached

    try:
        while True:
            message = conn.recv()
            if message[0] == "round":
                _, round_number, mail, do_validate = message
                outs: list[dict[int, tuple]] = []
                fins: list[bool] = []
                for v in range(lo, hi):
                    algorithm = algorithms[v]
                    outbox = dict(
                        algorithm.receive(
                            round_number, mail.get(v, _EMPTY_INBOX)
                        )
                        or {}
                    )
                    if do_validate:
                        _validate_payloads(
                            v, outbox, round_number + 1, sets_for(v)
                        )
                    outs.append(outbox)
                    fins.append(algorithm.finished)
                conn.send(("ok", outs, fins))
            else:  # "export"
                conn.send(
                    (
                        "state",
                        {
                            v: algorithms[v].export_state()
                            for v in range(lo, hi)
                        },
                    )
                )
                return
    except BaseException as error:  # propagated to the master verbatim
        try:
            conn.send(("raise", error))
        except (OSError, ValueError, TypeError):
            # The master is gone or the error is unpicklable; dying
            # nonzero is the only signal left (the master surfaces the
            # closed pipe as EOFError).
            raise error
    finally:
        del indptr, indices
        shm_indptr.close()
        shm_indices.close()


@dataclass
class NodeContext:
    """What a node knows initially (the KT1 variant: neighbour IDs).

    Attributes:
        node_id: this node's ID.
        num_nodes: ``n`` (standard assumption: nodes know ``n``).
        neighbors: IDs of adjacent nodes.
        edge_weights: weight per neighbour (same order), if the graph is
            weighted.
    """

    node_id: int
    num_nodes: int
    neighbors: tuple[int, ...]
    edge_weights: Optional[tuple[float, ...]] = None

    @property
    def degree(self) -> int:
        """Degree of this node."""
        return len(self.neighbors)


class NodeAlgorithm:
    """Base class for per-node CONGEST algorithms.

    Subclasses implement :meth:`initialize` and :meth:`receive`; both
    return the messages to send in the *next* round as a mapping
    ``neighbor_id -> payload``.  A payload is a tuple of at most
    :data:`MESSAGE_WORD_LIMIT` words (ints/floats/short strings).  Set
    :attr:`finished` once the node has terminated; the network stops when
    every node is finished and no message is in flight.
    """

    def __init__(self, context: NodeContext):
        self.context = context
        self.finished = False

    def initialize(self) -> Mapping[int, tuple]:
        """Messages to send in round 1."""
        return {}

    def receive(
        self, round_number: int, inbox: Mapping[int, tuple]
    ) -> Mapping[int, tuple]:
        """Handle this round's inbox; return next round's outbox."""
        raise NotImplementedError

    def result(self) -> Any:
        """Algorithm-specific output, read after the run completes."""
        return None

    def export_state(self) -> Mapping[str, Any]:
        """Serializable state for sharded runs (``Network.run(workers>1)``).

        Workers execute ``receive`` on forked copies of the algorithm
        objects; at the end of the run each worker exports its nodes'
        state and the master absorbs it into the original objects so
        callers observe exactly the single-process outcome.  The default
        ships the whole instance dict minus the (reconstructable)
        context; override to drop bulky shared read-only members.
        """
        return {k: v for k, v in self.__dict__.items() if k != "context"}

    def absorb_remote(self, payload: Mapping[str, Any]) -> None:
        """Adopt a worker's exported state into this (stale) instance.

        Override together with :meth:`export_state` when callers hold
        aliases into mutable members — merge in place instead of
        rebinding so those aliases stay valid.
        """
        self.__dict__.update(payload)


@dataclass
class RunStats:
    """Round and message accounting of a completed run.

    The four fault counters stay 0 on fault-free runs; under a
    :class:`~repro.congest.faults.FaultPlan` they tally what the wire
    actually injected during *this* run (the plan's own ``stats``
    aggregate across runs).
    """

    rounds: int = 0
    messages: int = 0
    max_messages_per_round: int = 0
    per_round_messages: list[int] = field(default_factory=list)
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    crash_dropped: int = 0


class Network:
    """Synchronous executor for a set of :class:`NodeAlgorithm` instances."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._neighbor_lists = [
            tuple(int(w) for w in graph.neighbors(v))
            for v in range(graph.num_nodes)
        ]
        # O(1) membership for outbox validation (the lists stay around
        # for NodeContext, which promises a stable neighbour order).
        self._neighbor_sets = [
            frozenset(neighbors) for neighbors in self._neighbor_lists
        ]
        # neighbour id -> arc index, per node: lets delivery and weight
        # lookups resolve a target to its arc without scanning.
        self._neighbor_arcs: list[dict[int, int]] = [
            {
                int(graph.indices[a]): int(a)
                for a in range(graph.indptr[v], graph.indptr[v + 1])
            }
            for v in range(graph.num_nodes)
        ]
        weighted = isinstance(graph, WeightedGraph)
        self._weight_lists: list[Optional[tuple[float, ...]]] = []
        for v in range(graph.num_nodes):
            if weighted:
                arcs = graph.arcs_of(v)
                self._weight_lists.append(
                    tuple(
                        float(graph.weights[graph.arc_edge[a]]) for a in arcs
                    )
                )
            else:
                self._weight_lists.append(None)

    def context(self, v: int) -> NodeContext:
        """Initial knowledge of node ``v``."""
        return NodeContext(
            node_id=v,
            num_nodes=self.graph.num_nodes,
            neighbors=self._neighbor_lists[v],
            edge_weights=self._weight_lists[v],
        )

    def arc_of(self, v: int, neighbor: int) -> int:
        """Arc index of the directed edge ``v -> neighbor``.

        Raises:
            KeyError: if ``neighbor`` is not adjacent to ``v``.
        """
        return self._neighbor_arcs[v][neighbor]

    def _validate_outbox(
        self, sender: int, outbox: Mapping[int, tuple], round_number: int
    ) -> None:
        _validate_payloads(
            sender, outbox, round_number, self._neighbor_sets[sender]
        )

    def run(
        self,
        algorithms: Sequence[NodeAlgorithm],
        max_rounds: int = 1_000_000,
        validate: str = "full",
        faults: Optional[FaultPlan] = None,
        workers: int = 1,
    ) -> RunStats:
        """Run all nodes to completion (or ``max_rounds``).

        Args:
            algorithms: one :class:`NodeAlgorithm` per node.
            max_rounds: hard round budget.
            validate: outbox-validation mode.  ``"full"`` (default)
                checks every outbox every round — the CONGEST contract
                stays machine-enforced.  ``"first_round"`` checks only
                the outboxes of rounds 1 and 2 (cheap smoke check of the
                message format); ``"off"`` skips validation entirely.
                Benchmarks opt into the cheaper modes; results
                (:class:`RunStats` and algorithm outputs) are identical
                across modes on contract-abiding algorithms.
            faults: optional :class:`~repro.congest.faults.FaultPlan`
                injecting wire-level faults.  ``None`` — and any plan
                whose spec is null — runs the exact fault-free code
                path, so a rate-0 plan is byte-identical to no plan.
            workers: shard ``receive`` execution across this many forked
                processes (virtual-node partitioning: nodes are
                independent within a round, so any partition is sound).
                Delivery, validation-mode selection, round/message
                accounting and termination stay on the master at the
                round barrier, so :class:`RunStats` and all node results
                are identical to a single-process run.  Faulty runs
                ignore ``workers`` — the per-message fault stream is
                sequential — as do platforms without ``fork``.

        Returns round/message statistics.  Raises
        :class:`CongestViolation` on any bandwidth/addressing violation
        and ``RuntimeError`` if ``max_rounds`` is exhausted.
        """
        if validate not in ("full", "first_round", "off"):
            raise ValueError(
                f"validate must be 'full', 'first_round' or 'off', "
                f"got {validate!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if len(algorithms) != self.graph.num_nodes:
            raise ValueError("need exactly one algorithm per node")
        if faults is not None and faults.spec.is_null:
            faults = None
        if faults is not None:
            return self._run_faulty(algorithms, max_rounds, validate, faults)
        if workers > 1 and self.graph.num_nodes > 1 and _fork_available():
            return self._run_sharded(algorithms, max_rounds, validate, workers)
        check_all = validate == "full"
        check_first = validate == "first_round"
        stats = RunStats()
        outboxes: list[Mapping[int, tuple]] = []
        for v, algorithm in enumerate(algorithms):
            outbox = dict(algorithm.initialize())
            if check_all or check_first:
                self._validate_outbox(v, outbox, round_number=1)
            outboxes.append(outbox)
        while True:
            in_flight = sum(len(outbox) for outbox in outboxes)
            all_done = all(algorithm.finished for algorithm in algorithms)
            if in_flight == 0 and all_done:
                return stats
            if stats.rounds >= max_rounds:
                raise RuntimeError(
                    f"network did not terminate within {max_rounds} rounds"
                )
            stats.rounds += 1
            stats.messages += in_flight
            stats.max_messages_per_round = max(
                stats.max_messages_per_round, in_flight
            )
            stats.per_round_messages.append(in_flight)
            # Inboxes only for nodes that receive something this round;
            # everyone else shares the one immutable empty mapping.
            inboxes: dict[int, dict[int, tuple]] = {}
            for sender, outbox in enumerate(outboxes):
                for target, payload in outbox.items():
                    box = inboxes.get(target)
                    if box is None:
                        box = inboxes[target] = {}
                    box[sender] = payload
            do_validate = check_all or (check_first and stats.rounds <= 1)
            next_outboxes: list[Mapping[int, tuple]] = []
            for v, algorithm in enumerate(algorithms):
                outbox = dict(
                    algorithm.receive(
                        stats.rounds, inboxes.get(v, _EMPTY_INBOX)
                    )
                    or {}
                )
                if do_validate:
                    self._validate_outbox(
                        v, outbox, round_number=stats.rounds + 1
                    )
                next_outboxes.append(outbox)
            outboxes = next_outboxes

    def _run_sharded(
        self,
        algorithms: Sequence[NodeAlgorithm],
        max_rounds: int,
        validate: str,
        workers: int,
    ) -> RunStats:
        """The multi-process twin of the clean loop in :meth:`run`.

        Nodes are partitioned into ``workers`` contiguous shards; each
        forked worker runs ``receive`` (and outbox validation) for its
        shard while the master keeps everything order-sensitive:
        initialization, inbox assembly in ascending sender order,
        round/message accounting and termination — all at the round
        barrier of the pipe exchange.  RunStats and node results are
        therefore identical to ``workers=1``; the final states flow
        back through :meth:`NodeAlgorithm.export_state` /
        :meth:`~NodeAlgorithm.absorb_remote`.
        """
        import multiprocessing
        from multiprocessing import shared_memory

        n = self.graph.num_nodes
        workers = min(workers, n)
        check_all = validate == "full"
        check_first = validate == "first_round"
        stats = RunStats()
        outboxes: list[Mapping[int, tuple]] = []
        for v, algorithm in enumerate(algorithms):
            outbox = dict(algorithm.initialize())
            if check_all or check_first:
                self._validate_outbox(v, outbox, round_number=1)
            outboxes.append(outbox)
        finished = [algorithm.finished for algorithm in algorithms]
        bounds = [(n * s) // workers for s in range(workers + 1)]
        indptr = np.ascontiguousarray(self.graph.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.graph.indices, dtype=np.int64)
        shm_indptr = shared_memory.SharedMemory(
            create=True, size=max(1, indptr.nbytes)
        )
        shm_indices = shared_memory.SharedMemory(
            create=True, size=max(1, indices.nbytes)
        )
        shm_indptr.buf[: indptr.nbytes] = indptr.tobytes()
        shm_indices.buf[: indices.nbytes] = indices.tobytes()
        context = multiprocessing.get_context("fork")
        conns = []
        procs = []
        try:
            for s in range(workers):
                parent, child = context.Pipe()
                proc = context.Process(
                    target=_shard_worker,
                    args=(
                        child, algorithms, bounds[s], bounds[s + 1],
                        shm_indptr.name, shm_indices.name,
                        n, int(indices.shape[0]),
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
            while True:
                in_flight = sum(len(outbox) for outbox in outboxes)
                if in_flight == 0 and all(finished):
                    for conn in conns:
                        conn.send(("export",))
                    for conn in conns:
                        reply = conn.recv()
                        if reply[0] == "raise":
                            raise reply[1]
                        for v, payload in reply[1].items():
                            algorithms[v].absorb_remote(payload)
                    return stats
                if stats.rounds >= max_rounds:
                    raise RuntimeError(
                        f"network did not terminate within "
                        f"{max_rounds} rounds"
                    )
                stats.rounds += 1
                stats.messages += in_flight
                stats.max_messages_per_round = max(
                    stats.max_messages_per_round, in_flight
                )
                stats.per_round_messages.append(in_flight)
                inboxes: dict[int, dict[int, tuple]] = {}
                for sender, outbox in enumerate(outboxes):
                    for target, payload in outbox.items():
                        box = inboxes.get(target)
                        if box is None:
                            box = inboxes[target] = {}
                        box[sender] = payload
                do_validate = check_all or (check_first and stats.rounds <= 1)
                for s, conn in enumerate(conns):
                    mail = {
                        v: inboxes[v]
                        for v in range(bounds[s], bounds[s + 1])
                        if v in inboxes
                    }
                    conn.send(("round", stats.rounds, mail, do_validate))
                next_outboxes: list[Mapping[int, tuple]] = [{}] * n
                for s, conn in enumerate(conns):
                    reply = conn.recv()
                    if reply[0] == "raise":
                        raise reply[1]
                    _, outs, fins = reply
                    lo = bounds[s]
                    for offset, outbox in enumerate(outs):
                        next_outboxes[lo + offset] = outbox
                        finished[lo + offset] = fins[offset]
                outboxes = next_outboxes
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=10)
            shm_indptr.close()
            shm_indptr.unlink()
            shm_indices.close()
            shm_indices.unlink()

    def _run_faulty(
        self,
        algorithms: Sequence[NodeAlgorithm],
        max_rounds: int,
        validate: str,
        faults: FaultPlan,
    ) -> RunStats:
        """The fault-injecting twin of the main loop in :meth:`run`.

        Differences from the clean path, in delivery order:

        * a sender that is crashed this round loses its whole outbox;
        * each surviving fresh message passes through
          :meth:`FaultPlan.link_copies` — dropped, duplicated (extra
          copy one round later), or delayed copies land in ``pending``
          keyed by their delivery round;
        * a copy arriving at a crashed receiver is lost;
        * two copies from the same sender contending for the same
          ``(sender, target)`` wire slot in one round: the second is
          pushed to the next round (the slot carries one message);
        * crashed nodes are frozen — ``receive`` is not called and they
          emit nothing — and resume untouched when their window closes.

        Termination additionally requires ``pending`` to be empty, so
        a delayed copy can never be silently discarded at shutdown.
        """
        check_all = validate == "full"
        check_first = validate == "first_round"
        stats = RunStats()
        num_nodes = self.graph.num_nodes
        outboxes: list[Mapping[int, tuple]] = []
        for v, algorithm in enumerate(algorithms):
            outbox = dict(algorithm.initialize())
            if check_all or check_first:
                self._validate_outbox(v, outbox, round_number=1)
            outboxes.append(outbox)
        # Fault-scheduled copies: delivery round -> [(sender, target,
        # payload)].  Fresh outbox messages with offset 0 never pass
        # through here.
        pending: dict[int, list[tuple[int, int, tuple]]] = {}
        while True:
            in_flight = sum(len(outbox) for outbox in outboxes) + sum(
                len(copies) for copies in pending.values()
            )
            all_done = all(algorithm.finished for algorithm in algorithms)
            if in_flight == 0 and all_done:
                return stats
            if stats.rounds >= max_rounds:
                raise RuntimeError(
                    f"network did not terminate within {max_rounds} rounds"
                )
            stats.rounds += 1
            round_number = stats.rounds
            down = faults.crashed(round_number, num_nodes)
            deliveries: list[tuple[int, int, tuple]] = []
            transmitted = 0
            for sender, outbox in enumerate(outboxes):
                if sender in down:
                    for target, payload in outbox.items():
                        stats.crash_dropped += 1
                        faults.record(
                            FaultRecord(
                                "crash_drop", round_number, sender, target,
                                detail={"side": "sender"},
                            )
                        )
                    continue
                for target, payload in outbox.items():
                    transmitted += 1
                    offsets = faults.link_copies(round_number, sender, target)
                    if not offsets:
                        stats.dropped += 1
                        continue
                    if len(offsets) > 1:
                        stats.duplicated += 1
                    if offsets[0] > 0:
                        stats.delayed += 1
                    for offset in offsets:
                        if offset == 0:
                            deliveries.append((sender, target, payload))
                        else:
                            pending.setdefault(
                                round_number + offset, []
                            ).append((sender, target, payload))
            due = pending.pop(round_number, ())
            transmitted += len(due)
            deliveries.extend(due)
            stats.messages += transmitted
            stats.max_messages_per_round = max(
                stats.max_messages_per_round, transmitted
            )
            stats.per_round_messages.append(transmitted)
            inboxes: dict[int, dict[int, tuple]] = {}
            for sender, target, payload in deliveries:
                if target in down:
                    stats.crash_dropped += 1
                    faults.record(
                        FaultRecord(
                            "crash_drop", round_number, sender, target,
                            detail={"side": "receiver"},
                        )
                    )
                    continue
                box = inboxes.get(target)
                if box is None:
                    box = inboxes[target] = {}
                if sender in box:
                    # The (sender, target) slot already carried a
                    # message this round; the extra copy waits.
                    pending.setdefault(round_number + 1, []).append(
                        (sender, target, payload)
                    )
                else:
                    box[sender] = payload
            do_validate = check_all or (check_first and stats.rounds <= 1)
            next_outboxes: list[Mapping[int, tuple]] = []
            for v, algorithm in enumerate(algorithms):
                if v in down:
                    next_outboxes.append({})
                    continue
                outbox = dict(
                    algorithm.receive(
                        stats.rounds, inboxes.get(v, _EMPTY_INBOX)
                    )
                    or {}
                )
                if do_validate:
                    self._validate_outbox(
                        v, outbox, round_number=stats.rounds + 1
                    )
                next_outboxes.append(outbox)
            outboxes = next_outboxes
