"""A faithful synchronous CONGEST-model simulator.

The model of the paper's Section 1: the network is a graph; computation
proceeds in synchronous rounds; per round, each node may send one
``O(log n)``-bit message over each incident edge.  The simulator enforces
the one-message-per-edge-per-round constraint and the word budget, and
counts rounds and messages.  It is used to run the baselines and to
cross-validate the ledger-based round accounting of the walk machinery on
small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping, Optional, Sequence

from ..graphs.graph import Graph, WeightedGraph

__all__ = ["CongestViolation", "NodeContext", "NodeAlgorithm", "Network"]

#: Shared immutable inbox for nodes that received nothing this round —
#: avoids allocating ``n`` dicts per round when traffic is sparse.
_EMPTY_INBOX: Mapping[int, tuple] = MappingProxyType({})

#: How many O(log n)-bit words a single message may carry.  The model
#: allows O(log n) bits; we allow a small constant number of words
#: (IDs/weights), the standard reading used by all cited algorithms.
MESSAGE_WORD_LIMIT = 4


class CongestViolation(RuntimeError):
    """An algorithm broke a CONGEST constraint (bandwidth or addressing)."""


@dataclass
class NodeContext:
    """What a node knows initially (the KT1 variant: neighbour IDs).

    Attributes:
        node_id: this node's ID.
        num_nodes: ``n`` (standard assumption: nodes know ``n``).
        neighbors: IDs of adjacent nodes.
        edge_weights: weight per neighbour (same order), if the graph is
            weighted.
    """

    node_id: int
    num_nodes: int
    neighbors: tuple[int, ...]
    edge_weights: Optional[tuple[float, ...]] = None

    @property
    def degree(self) -> int:
        """Degree of this node."""
        return len(self.neighbors)


class NodeAlgorithm:
    """Base class for per-node CONGEST algorithms.

    Subclasses implement :meth:`initialize` and :meth:`receive`; both
    return the messages to send in the *next* round as a mapping
    ``neighbor_id -> payload``.  A payload is a tuple of at most
    :data:`MESSAGE_WORD_LIMIT` words (ints/floats/short strings).  Set
    :attr:`finished` once the node has terminated; the network stops when
    every node is finished and no message is in flight.
    """

    def __init__(self, context: NodeContext):
        self.context = context
        self.finished = False

    def initialize(self) -> Mapping[int, tuple]:
        """Messages to send in round 1."""
        return {}

    def receive(
        self, round_number: int, inbox: Mapping[int, tuple]
    ) -> Mapping[int, tuple]:
        """Handle this round's inbox; return next round's outbox."""
        raise NotImplementedError

    def result(self) -> Any:
        """Algorithm-specific output, read after the run completes."""
        return None


@dataclass
class RunStats:
    """Round and message accounting of a completed run."""

    rounds: int = 0
    messages: int = 0
    max_messages_per_round: int = 0
    per_round_messages: list[int] = field(default_factory=list)


class Network:
    """Synchronous executor for a set of :class:`NodeAlgorithm` instances."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._neighbor_lists = [
            tuple(int(w) for w in graph.neighbors(v))
            for v in range(graph.num_nodes)
        ]
        # O(1) membership for outbox validation (the lists stay around
        # for NodeContext, which promises a stable neighbour order).
        self._neighbor_sets = [
            frozenset(neighbors) for neighbors in self._neighbor_lists
        ]
        # neighbour id -> arc index, per node: lets delivery and weight
        # lookups resolve a target to its arc without scanning.
        self._neighbor_arcs: list[dict[int, int]] = [
            {
                int(graph.indices[a]): int(a)
                for a in range(graph.indptr[v], graph.indptr[v + 1])
            }
            for v in range(graph.num_nodes)
        ]
        weighted = isinstance(graph, WeightedGraph)
        self._weight_lists: list[Optional[tuple[float, ...]]] = []
        for v in range(graph.num_nodes):
            if weighted:
                arcs = graph.arcs_of(v)
                self._weight_lists.append(
                    tuple(
                        float(graph.weights[graph.arc_edge[a]]) for a in arcs
                    )
                )
            else:
                self._weight_lists.append(None)

    def context(self, v: int) -> NodeContext:
        """Initial knowledge of node ``v``."""
        return NodeContext(
            node_id=v,
            num_nodes=self.graph.num_nodes,
            neighbors=self._neighbor_lists[v],
            edge_weights=self._weight_lists[v],
        )

    def arc_of(self, v: int, neighbor: int) -> int:
        """Arc index of the directed edge ``v -> neighbor``.

        Raises:
            KeyError: if ``neighbor`` is not adjacent to ``v``.
        """
        return self._neighbor_arcs[v][neighbor]

    def _validate_outbox(
        self, sender: int, outbox: Mapping[int, tuple], round_number: int
    ) -> None:
        neighbors = self._neighbor_sets[sender]
        for target, payload in outbox.items():
            if target not in neighbors:
                raise CongestViolation(
                    f"round {round_number}: node {sender} sent to "
                    f"non-neighbor {target} (payload {payload!r}); CONGEST "
                    "messages travel only along edges of the graph"
                )
            if not isinstance(payload, tuple):
                raise CongestViolation(
                    f"round {round_number}: node {sender} sent a non-tuple "
                    f"payload {payload!r} to {target}; payloads must be "
                    "tuples of words"
                )
            if len(payload) > MESSAGE_WORD_LIMIT:
                raise CongestViolation(
                    f"round {round_number}: node {sender} exceeded the "
                    f"{MESSAGE_WORD_LIMIT}-word message budget to {target}: "
                    f"{len(payload)} words in {payload!r}"
                )

    def run(
        self,
        algorithms: Sequence[NodeAlgorithm],
        max_rounds: int = 1_000_000,
        validate: str = "full",
    ) -> RunStats:
        """Run all nodes to completion (or ``max_rounds``).

        Args:
            algorithms: one :class:`NodeAlgorithm` per node.
            max_rounds: hard round budget.
            validate: outbox-validation mode.  ``"full"`` (default)
                checks every outbox every round — the CONGEST contract
                stays machine-enforced.  ``"first_round"`` checks only
                the outboxes of rounds 1 and 2 (cheap smoke check of the
                message format); ``"off"`` skips validation entirely.
                Benchmarks opt into the cheaper modes; results
                (:class:`RunStats` and algorithm outputs) are identical
                across modes on contract-abiding algorithms.

        Returns round/message statistics.  Raises
        :class:`CongestViolation` on any bandwidth/addressing violation
        and ``RuntimeError`` if ``max_rounds`` is exhausted.
        """
        if validate not in ("full", "first_round", "off"):
            raise ValueError(
                f"validate must be 'full', 'first_round' or 'off', "
                f"got {validate!r}"
            )
        if len(algorithms) != self.graph.num_nodes:
            raise ValueError("need exactly one algorithm per node")
        check_all = validate == "full"
        check_first = validate == "first_round"
        stats = RunStats()
        outboxes: list[Mapping[int, tuple]] = []
        for v, algorithm in enumerate(algorithms):
            outbox = dict(algorithm.initialize())
            if check_all or check_first:
                self._validate_outbox(v, outbox, round_number=1)
            outboxes.append(outbox)
        while True:
            in_flight = sum(len(outbox) for outbox in outboxes)
            all_done = all(algorithm.finished for algorithm in algorithms)
            if in_flight == 0 and all_done:
                return stats
            if stats.rounds >= max_rounds:
                raise RuntimeError(
                    f"network did not terminate within {max_rounds} rounds"
                )
            stats.rounds += 1
            stats.messages += in_flight
            stats.max_messages_per_round = max(
                stats.max_messages_per_round, in_flight
            )
            stats.per_round_messages.append(in_flight)
            # Inboxes only for nodes that receive something this round;
            # everyone else shares the one immutable empty mapping.
            inboxes: dict[int, dict[int, tuple]] = {}
            for sender, outbox in enumerate(outboxes):
                for target, payload in outbox.items():
                    box = inboxes.get(target)
                    if box is None:
                        box = inboxes[target] = {}
                    box[sender] = payload
            do_validate = check_all or (check_first and stats.rounds <= 1)
            next_outboxes: list[Mapping[int, tuple]] = []
            for v, algorithm in enumerate(algorithms):
                outbox = dict(
                    algorithm.receive(
                        stats.rounds, inboxes.get(v, _EMPTY_INBOX)
                    )
                    or {}
                )
                if do_validate:
                    self._validate_outbox(
                        v, outbox, round_number=stats.rounds + 1
                    )
                next_outboxes.append(outbox)
            outboxes = next_outboxes
