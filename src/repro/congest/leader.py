"""Leader election by min-ID flooding, and the shared-seed setup.

Section 3.1.2 has "the leader of the network pick ``Theta(log^2 n)``
random bits" for the partition hash and deliver them to all nodes in
``O(D log n)`` rounds.  This module provides that step as real message
passing: a flooding leader election (every node floods the smallest ID it
has seen; ``O(D)`` rounds), followed by a broadcast of the seed words
from the winner.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .network import Network, NodeAlgorithm
from .primitives import broadcast_value

__all__ = ["elect_leader", "disseminate_seed"]


class _MinIdFlood(NodeAlgorithm):
    """Floods the minimum ID seen so far; stabilizes in D rounds."""

    def __init__(self, context):
        super().__init__(context)
        self.best = context.node_id
        self.finished = False
        self._last_sent = None

    def _announce(self) -> Mapping[int, tuple]:
        if self.best == self._last_sent:
            self.finished = True
            return {}
        self._last_sent = self.best
        self.finished = False
        return {w: ("lead", self.best) for w in self.context.neighbors}

    def initialize(self) -> Mapping[int, tuple]:
        return self._announce()

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        improved = False
        for __, payload in inbox.items():
            if payload[1] < self.best:
                self.best = payload[1]
                improved = True
        if improved:
            return self._announce()
        self.finished = True
        return {}


def elect_leader(network: Network) -> tuple[int, int]:
    """Elect the minimum-ID node by flooding.

    Returns:
        ``(leader id, rounds)``; every node agrees on the leader.
    """
    algorithms = [
        _MinIdFlood(network.context(v))
        for v in range(network.graph.num_nodes)
    ]
    stats = network.run(algorithms)
    leaders = {algorithm.best for algorithm in algorithms}
    if len(leaders) != 1:
        raise RuntimeError(f"leader election did not converge: {leaders}")
    return leaders.pop(), stats.rounds


def disseminate_seed(
    network: Network, rng: np.random.Generator, words: int = 4
) -> tuple[tuple[int, ...], int]:
    """Elect a leader, draw seed words there, broadcast them to everyone.

    The modelled step of Section 3.1.2: the seed is ``words`` 31-bit
    values (``Theta(log^2 n)`` bits at simulable sizes fit a handful of
    words; larger seeds would pipeline over ``O(log n)`` broadcasts).

    Returns:
        ``(seed words, total rounds)``.
    """
    leader, election_rounds = elect_leader(network)
    seed = tuple(int(x) for x in rng.integers(0, 2**31 - 1, size=words))
    total = election_rounds
    # One broadcast per word keeps each message within the word budget.
    for word in seed:
        values, rounds = broadcast_value(network, leader, word)
        total += rounds
        if any(value != word for value in values):
            raise RuntimeError("seed broadcast corrupted a word")
    return seed, total
