"""One-hop demand forwarding with per-edge queues, as message passing.

The elementary scheduling unit everything else reduces to: a set of
``(origin, neighbour)`` demands is delivered with each directed edge
carrying one message per round; contended demands queue.  The completion
time equals the max per-arc demand count — the quantity the vectorized
engines charge — and this module executes it for real, so cross-checks
can compare the two (see ``tests/congest/test_walk_crosscheck.py`` and
``tests/congest/test_hop_crosscheck.py``).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..graphs.graph import Graph
from .faults import FaultPlan
from .network import Network, NodeAlgorithm

__all__ = ["TokenForwarder", "forward_demands"]


class TokenForwarder(NodeAlgorithm):
    """Sends queued single-hop demands, one per directed edge per round."""

    def __init__(self, context, targets: Iterable[int]):
        super().__init__(context)
        self.queues: dict[int, list[int]] = {}
        for target in targets:
            self.queues.setdefault(int(target), []).append(int(target))
        self.received = 0

    def _emit(self) -> Mapping[int, tuple]:
        outbox = {}
        for target in list(self.queues):
            queue = self.queues[target]
            if queue:
                queue.pop()
                outbox[target] = ("tok",)
            if not queue:
                del self.queues[target]
        self.finished = not self.queues
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._emit()

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        self.received += len(inbox)
        return self._emit()


def forward_demands(
    graph: Graph,
    origins,
    targets,
    validate: str = "full",
    faults: Optional[FaultPlan] = None,
    context=None,
    workers: int = 1,
) -> tuple[int, int]:
    """Deliver one-hop demands ``origin -> target`` under edge capacity 1.

    Args:
        graph: the network; every (origin, target) must be an edge.
        origins: demand origins.
        targets: demand targets (same length).
        validate: outbox-validation mode passed to
            :meth:`repro.congest.network.Network.run`.
        faults: optional :class:`~repro.congest.faults.FaultPlan`.  With
            an active (non-null) plan the unreliable queue protocol
            would lose tokens, so delivery is delegated to the ARQ path
            in :func:`repro.congest.reliable.reliable_forward_demands`
            — everything still arrives, at measured extra round cost, or
            a :class:`~repro.congest.faults.DeliveryTimeout` is raised.
        context: optional :class:`repro.runtime.RunContext`; with active
            faults the retry overhead is charged to it under
            ``faults/retry-rounds``.
        workers: delivery processes for
            :meth:`repro.congest.network.Network.run`; round accounting
            is unchanged, only wall-clock delivery is sharded.  Ignored
            under active faults (the ARQ path is sequential).

    Returns:
        ``(rounds, messages)`` of the real execution; on a clean wire
        ``rounds`` equals the max number of demands sharing one directed
        edge.
    """
    if faults is not None and not faults.spec.is_null:
        from .reliable import reliable_forward_demands

        report = reliable_forward_demands(
            graph,
            origins,
            targets,
            faults=faults,
            validate=validate,
            context=context,
            recovery=getattr(context, "recovery", None) or "fail-fast",
        )
        return report.rounds, report.messages
    network = Network(graph)
    per_node: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    for origin, target in zip(origins, targets):
        per_node[int(origin)].append(int(target))
    algorithms = [
        TokenForwarder(network.context(v), per_node[v])
        for v in range(graph.num_nodes)
    ]
    stats = network.run(
        algorithms,
        max_rounds=10 * len(list(origins)) + 100,
        validate=validate,
        workers=workers,
    )
    delivered = sum(algorithm.received for algorithm in algorithms)
    expected = sum(len(demands) for demands in per_node)
    if delivered != expected:
        raise RuntimeError(
            f"forwarding lost messages: {delivered} != {expected}"
        )
    return stats.rounds, stats.messages
