"""Standard CONGEST building blocks: BFS, broadcast, convergecast.

These are the classic ``O(D)`` primitives every distributed MST paper
assumes; the GKP baseline and the shared-randomness dissemination step of
the partition hash (Section 3.1.2) are built from them.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .network import Network, NodeAlgorithm, NodeContext

__all__ = ["BfsNode", "build_bfs_tree", "broadcast_value"]


class BfsNode(NodeAlgorithm):
    """Flooding BFS from a root; each node learns its parent and depth."""

    def __init__(self, context: NodeContext, root: int):
        super().__init__(context)
        self.root = root
        self.parent: Optional[int] = None
        self.depth: Optional[int] = None

    def initialize(self) -> Mapping[int, tuple]:
        if self.context.node_id == self.root:
            self.parent = self.context.node_id
            self.depth = 0
            self.finished = True
            return {w: ("bfs", 0) for w in self.context.neighbors}
        return {}

    def receive(
        self, round_number: int, inbox: Mapping[int, tuple]
    ) -> Mapping[int, tuple]:
        if self.depth is not None:
            return {}
        offers = [
            (payload[1], sender)
            for sender, payload in inbox.items()
            if payload[0] == "bfs"
        ]
        if not offers:
            return {}
        depth, parent = min(offers)
        self.parent = parent
        self.depth = depth + 1
        self.finished = True
        return {
            w: ("bfs", self.depth)
            for w in self.context.neighbors
            if w != parent
        }

    def result(self) -> tuple[Optional[int], Optional[int]]:
        return self.parent, self.depth


def build_bfs_tree(
    network: Network, root: int
) -> tuple[list[Optional[int]], list[Optional[int]], int]:
    """Build a BFS tree from ``root``.

    Returns:
        ``(parents, depths, rounds)`` — parent and depth per node (the
        root is its own parent), and the round count of the run.
    """
    algorithms = [
        BfsNode(network.context(v), root)
        for v in range(network.graph.num_nodes)
    ]
    stats = network.run(algorithms)
    parents = [algorithm.parent for algorithm in algorithms]
    depths = [algorithm.depth for algorithm in algorithms]
    return parents, depths, stats.rounds


class _BroadcastNode(NodeAlgorithm):
    """Flood a single value from a source to every node."""

    def __init__(self, context: NodeContext, source: int, value):
        super().__init__(context)
        self.source = source
        self.value = value if context.node_id == source else None

    def initialize(self) -> Mapping[int, tuple]:
        if self.context.node_id == self.source:
            self.finished = True
            return {w: ("val", self.value) for w in self.context.neighbors}
        return {}

    def receive(
        self, round_number: int, inbox: Mapping[int, tuple]
    ) -> Mapping[int, tuple]:
        if self.value is not None or not inbox:
            return {}
        sender, payload = next(iter(inbox.items()))
        self.value = payload[1]
        self.finished = True
        return {
            w: ("val", self.value)
            for w in self.context.neighbors
            if w != sender
        }

    def result(self):
        return self.value


def broadcast_value(network: Network, source: int, value) -> tuple[list, int]:
    """Flood ``value`` from ``source``; returns (values per node, rounds).

    This is how the ``Theta(log^2 n)`` shared hash-seed bits reach every
    node in ``O(D log n)`` rounds (a constant number of words per round
    here, since the seed fits a few words at simulable sizes).
    """
    algorithms = [
        _BroadcastNode(network.context(v), source, value)
        for v in range(network.graph.num_nodes)
    ]
    stats = network.run(algorithms)
    return [algorithm.value for algorithm in algorithms], stats.rounds
