"""Public walk-protocol state: the tape, per-node state, and the nodes.

The walk protocol (Section 3.1.1) has two interchangeable executions in
this library: the scalar per-node simulation (the semantic oracle, one
:class:`NodeAlgorithm` per node through
:meth:`repro.congest.network.Network.run`) and the array-native engine
(:mod:`repro.congest.walk_engine_vec`).  Both must be seed-for-seed,
round-for-round identical, so everything they share lives here as a
*public, typed* interface — ``congest.native`` and the vectorized engine
import these names instead of reaching into ``walk_protocol`` privates.

The key shared object is the :class:`WalkTape`: every lazy-step decision
of every walk, presampled as two uniform matrices indexed by
``(step, walk_id)``.  A walk consumes exactly one decision per remaining
step — a *stay* consumes it on the spot, a *move* consumes it when the
token is (re-)admitted — so the decision index of a token carrying
``ttl`` remaining steps is always ``length - ttl``, independent of the
queueing delays the token suffered on the wire.  Reading decisions from
the tape therefore removes the timing/randomness entanglement of a
per-node draw order: the scalar nodes and the vectorized engine index
the *same* arrays and produce the same trajectories by construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from ..rng import derive_rng, stream_entropy
from .detector import CrashView
from .network import NodeAlgorithm

__all__ = [
    "ForwardWalkNode",
    "ReverseWalkNode",
    "WalkState",
    "WalkTape",
]


class WalkTape:
    """Presampled lazy-step decisions for a batch of walks.

    Attributes:
        length: lazy steps per walk.
        num_walks: number of walks in the batch.
        stay_u: shape ``(length, num_walks)`` uniforms — decision
            ``(step, walk)`` is a stay iff the walk's current live
            degree is 0 or ``stay_u[step, walk] < 0.5``.
        choice_u: shape ``(length, num_walks)`` uniforms — on a move,
            the walk takes live-neighbour index
            ``floor(choice_u[step, walk] * live_degree)``.

    Both matrices come from one derived stream
    (``derive_rng(seed, stream_entropy("walk-tape"))``), drawn in full
    at construction; consumers only *index*, never draw, so the scalar
    and vectorized engines cannot diverge on randomness.
    """

    def __init__(
        self, length: int, stay_u: np.ndarray, choice_u: np.ndarray
    ) -> None:
        self.length = int(length)
        self.stay_u = stay_u
        self.choice_u = choice_u
        self.num_walks = int(stay_u.shape[1]) if stay_u.ndim == 2 else 0

    @classmethod
    def sample(cls, seed: int, num_walks: int, length: int) -> "WalkTape":
        """Draw the full decision tape for ``num_walks`` walks."""
        rng = derive_rng(seed, stream_entropy("walk-tape"))
        stay_u = rng.random((length, num_walks))
        choice_u = rng.random((length, num_walks))
        return cls(length, stay_u, choice_u)

    def decision(self, walk_id: int, step: int, live_degree: int) -> int:
        """Scalar read of one decision: ``-1`` = stay, else the index of
        the chosen live neighbour."""
        if live_degree == 0 or self.stay_u[step, walk_id] < 0.5:
            return -1
        return int(self.choice_u[step, walk_id] * live_degree)


@dataclass
class WalkState:
    """Per-node protocol state shared between the two passes.

    Attributes:
        visit_stack: ``walk_id -> senders`` in visit order (walks may
            revisit a node, hence a stack, popped by the reverse pass).
        finished_here: ``walk_id -> remaining ttl`` (always 0) for walks
            whose forward pass ended at this node, in finish order.
    """

    visit_stack: dict[int, list[int]] = field(default_factory=dict)
    finished_here: dict[int, int] = field(default_factory=dict)

    def merge_from(self, other: "WalkState") -> None:
        """Adopt ``other``'s contents *in place* (sharded-run absorb:
        callers hold aliases to this object, so identity must survive).
        """
        self.visit_stack.clear()
        self.visit_stack.update(other.visit_stack)
        self.finished_here.clear()
        self.finished_here.update(other.finished_here)


class _SelfHealMixin:
    """Crash-aware emission shared by the two walk-pass nodes.

    With a failure-detector ``view``, a node holds a departure while the
    *delivery* round (emission round + 1) falls inside a crash window of
    either endpoint: a copy sent into a window is lost on the unreliable
    walk wire, and the walk protocol (unlike the ARQ layer) never
    retransmits.  Without a view every check is a no-op, so the
    fail-fast path is untouched, decision for decision.
    """

    view: Optional[CrashView] = None
    parked = 0

    def _blocked(self, target: int, round_number: int) -> bool:
        if self.view is None:
            return False
        delivery = round_number + 1
        if self.view.down_until(self.context.node_id, delivery) >= 0:
            return True
        return self.view.down_until(target, delivery) >= 0


class ForwardWalkNode(_SelfHealMixin, NodeAlgorithm):
    """Forward pass: lazy-step tokens with per-edge FIFO queues.

    Decisions come off the shared :class:`WalkTape`; the node only
    executes queueing and message passing.
    """

    def __init__(
        self,
        context,
        state: WalkState,
        tape: WalkTape,
        initial_tokens,
        view: Optional[CrashView] = None,
        avoid: frozenset = frozenset(),
    ):
        super().__init__(context)
        self.state = state
        self.tape = tape
        self.view = view
        # Permanently crashed neighbours: walks step around them (the
        # walk continues on the live subgraph instead of vanishing).
        self.live_neighbors = tuple(
            v for v in context.neighbors if int(v) not in avoid
        )
        self.queues: dict[int, deque] = {}
        for walk_id, ttl in initial_tokens:
            self._admit(walk_id, ttl)

    def _admit(self, walk_id: int, ttl: int) -> None:
        """Perform stays locally; enqueue the token once it must move."""
        neighbors = self.live_neighbors
        degree = len(neighbors)
        tape = self.tape
        while ttl > 0:
            choice = tape.decision(walk_id, tape.length - ttl, degree)
            if choice < 0:
                ttl -= 1  # lazy stay
                continue
            target = int(neighbors[choice])
            self.queues.setdefault(target, deque()).append((walk_id, ttl))
            return
        self.state.finished_here[walk_id] = 0

    def _outbox(self, round_number: int) -> Mapping[int, tuple]:
        outbox = {}
        for target in list(self.queues):
            queue = self.queues[target]
            if queue and not self._blocked(target, round_number):
                walk_id, ttl = queue.popleft()
                outbox[target] = ("walk", walk_id, ttl)
            elif queue:
                self.parked += 1
            if not queue:
                del self.queues[target]
        self.finished = not self.queues
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._outbox(0)

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            __, walk_id, ttl = payload
            self.state.visit_stack.setdefault(walk_id, []).append(sender)
            self._admit(walk_id, ttl - 1)
        return self._outbox(round_number)

    # -- sharded-run state transfer (Network.run workers > 1) ----------------

    def export_state(self) -> dict[str, Any]:
        # The tape is shared, read-only, and potentially huge: never
        # ship it back over the worker pipe.
        return {
            "queues": self.queues,
            "finished": self.finished,
            "parked": self.parked,
            "walk_state": self.state,
        }

    def absorb_remote(self, payload: Mapping[str, Any]) -> None:
        self.queues = payload["queues"]
        self.finished = payload["finished"]
        self.parked = payload["parked"]
        # Merge in place: callers alias self.state.
        self.state.merge_from(payload["walk_state"])


class ReverseWalkNode(_SelfHealMixin, NodeAlgorithm):
    """Reverse pass: pop the visit stack and send the token back."""

    def __init__(
        self,
        context,
        state: WalkState,
        view: Optional[CrashView] = None,
    ):
        super().__init__(context)
        self.state = state
        self.view = view
        self.queues: dict[int, deque] = {}
        self.home_tokens: list[int] = []
        for walk_id in state.finished_here:
            self._bounce(walk_id)

    def _bounce(self, walk_id: int) -> None:
        stack = self.state.visit_stack.get(walk_id)
        if stack:
            sender = stack.pop()
            self.queues.setdefault(sender, deque()).append(walk_id)
        else:
            self.home_tokens.append(walk_id)  # back at the origin

    def _outbox(self, round_number: int) -> Mapping[int, tuple]:
        outbox = {}
        for target in list(self.queues):
            queue = self.queues[target]
            if queue and not self._blocked(target, round_number):
                outbox[target] = ("back", queue.popleft())
            elif queue:
                self.parked += 1
            if not queue:
                del self.queues[target]
        self.finished = not self.queues
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        return self._outbox(0)

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for __, payload in inbox.items():
            self._bounce(int(payload[1]))
        return self._outbox(round_number)

    # -- sharded-run state transfer (Network.run workers > 1) ----------------

    def export_state(self) -> dict[str, Any]:
        return {
            "queues": self.queues,
            "finished": self.finished,
            "parked": self.parked,
            "home_tokens": self.home_tokens,
            "walk_state": self.state,
        }

    def absorb_remote(self, payload: Mapping[str, Any]) -> None:
        self.queues = payload["queues"]
        self.finished = payload["finished"]
        self.parked = payload["parked"]
        self.home_tokens[:] = payload["home_tokens"]
        self.state.merge_from(payload["walk_state"])
