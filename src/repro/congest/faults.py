"""Seeded fault injection for the CONGEST layer.

Real overlays lose, duplicate, and delay messages, and nodes crash and
come back.  This module models exactly those four fault classes on top
of the synchronous simulator, *deterministically*: a :class:`FaultPlan`
binds an immutable :class:`FaultSpec` (the rates and crash windows) to a
seeded RNG stream, so the same seed injects the same faults in the same
rounds — a faulty run is as replayable as a clean one.

Contracts the rest of the library relies on:

* **Isolation.**  Fault sampling draws only from the plan's own RNG
  (the context's ``"faults"`` named stream, or a ``derive_rng`` stream
  in standalone use), so enabling faults never perturbs hierarchy
  construction, workload sampling, or any other seeded decision.
  ``reprolint`` rule R007 enforces the construction discipline.
* **Null transparency.**  A plan whose spec :attr:`~FaultSpec.is_null`
  injects nothing and consumes nothing; callers treat it exactly like
  ``faults=None``, so a rate-0 plan is byte-identical to no plan.
* **Observability.**  Every injected fault produces a
  :class:`FaultRecord`; when the plan is attached to a
  :class:`~repro.runtime.RunContext` each record is mirrored as a
  ``"fault"`` trace event, and retry/timeout costs are charged to the
  ledger under the ``faults/`` category.

The spec grammar (the CLI's ``--faults``) is comma-separated
``key=value`` items::

    drop=0.01,dup=0.001,delay=0.05,max_delay=3,attempts=12,
    crash=3@rounds:10-20

``crash`` may repeat; each occurrence crashes ``count`` uniformly
sampled nodes for the (1-based, inclusive) round window.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Optional

import numpy as np

from ..rng import derive_rng

__all__ = [
    "CrashWindow",
    "DeliveryTimeout",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
]

#: Retry budget used when a spec does not override ``attempts``.
DEFAULT_MAX_ATTEMPTS = 12

#: Exponential-backoff ceiling (rounds) for the reliable layer.
BACKOFF_CAP = 64


class DeliveryTimeout(RuntimeError):
    """Reliable delivery gave up on one or more packets.

    Raised instead of silently returning partial results: the message
    names the stage and the undelivered ``(origin, target)`` demands, so
    a faulty run is diagnosable from the exception alone.

    Attributes:
        undelivered: the ``(origin, target)`` pairs that were never
            acknowledged.
        stage: pipeline stage that timed out (e.g. ``"forward"``).
        culprits: ``(node, target, attempts)`` triples naming which
            sender/link exhausted its retransmission budget (node or
            target is ``-1`` when the failure is not link-scoped, e.g.
            the oracle's modeled retry path).
    """

    def __init__(
        self,
        message: str,
        undelivered: tuple = (),
        stage: Optional[str] = None,
        culprits: tuple = (),
    ):
        super().__init__(message)
        self.undelivered = tuple(undelivered)
        self.stage = stage
        self.culprits = tuple(culprits)


@dataclass(frozen=True)
class CrashWindow:
    """``count`` nodes are down for rounds ``start..end`` (inclusive)."""

    count: int
    start: int
    end: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"crash count must be >= 1, got {self.count}")
        if self.start < 1 or self.end < self.start:
            raise ValueError(
                f"crash window must satisfy 1 <= start <= end, got "
                f"rounds:{self.start}-{self.end}"
            )

    def covers(self, round_number: int) -> bool:
        """Whether ``round_number`` falls inside the window."""
        return self.start <= round_number <= self.end


# One-line reference grammar, quoted by every parse error so a typo'd
# --faults string is fixable from the message alone.
GRAMMAR = (
    "drop=R,dup=R,delay=R,max_delay=N,attempts=N,"
    "crash=N@rounds:S-E (R in [0,1), integers N,S,E >= 1)"
)


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"--faults: {key}={value!r} is not an integer "
            f"(grammar: {GRAMMAR})"
        ) from None


def _parse_rate(key: str, value: str) -> float:
    try:
        rate = float(value)
    except ValueError:
        raise ValueError(
            f"--faults: {key}={value!r} is not a number "
            f"(grammar: {GRAMMAR})"
        ) from None
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"--faults: {key} must be in [0, 1), got {rate}")
    return rate


def _parse_crash(value: str) -> CrashWindow:
    # crash=<count>@rounds:<start>-<end>
    head, sep, window = value.partition("@")
    if not sep or not window.startswith("rounds:"):
        raise ValueError(
            f"--faults: crash={value!r} must look like "
            "crash=<count>@rounds:<start>-<end>"
        )
    lo, sep, hi = window[len("rounds:"):].partition("-")
    if not sep:
        raise ValueError(
            f"--faults: crash window {window!r} needs rounds:<start>-<end>"
        )
    try:
        return CrashWindow(count=int(head), start=int(lo), end=int(hi))
    except ValueError as error:
        raise ValueError(f"--faults: bad crash spec {value!r}: {error}") from None


@dataclass(frozen=True)
class FaultSpec:
    """Immutable description of what to inject (no randomness here).

    Attributes:
        drop: per-message probability the message is lost on the wire.
        duplicate: per-message probability a second copy arrives one
            round later.
        delay: per-message probability delivery is postponed by
            ``1..max_delay`` rounds.
        max_delay: largest injected delay, in rounds.
        crashes: scheduled node-down windows.
        max_attempts: transmissions the reliable layer spends per packet
            before raising :class:`DeliveryTimeout`.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    max_delay: int = 3
    crashes: tuple[CrashWindow, ...] = ()
    max_attempts: int = DEFAULT_MAX_ATTEMPTS

    def __post_init__(self):
        for key in ("drop", "duplicate", "delay"):
            rate = getattr(self, key)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{key} must be in [0, 1), got {rate}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    @property
    def is_null(self) -> bool:
        """True when the spec injects nothing at all."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.delay == 0.0
            and not self.crashes
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the ``--faults`` grammar (see the module docstring)."""
        drop = duplicate = delay = 0.0
        max_delay = 3
        max_attempts = DEFAULT_MAX_ATTEMPTS
        crashes: list[CrashWindow] = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"--faults: {item!r} is not a key=value item "
                    f"(grammar: {GRAMMAR})"
                )
            key = key.strip()
            value = value.strip()
            if key == "drop":
                drop = _parse_rate(key, value)
            elif key in ("dup", "duplicate"):
                duplicate = _parse_rate(key, value)
            elif key == "delay":
                delay = _parse_rate(key, value)
            elif key == "max_delay":
                max_delay = _parse_int(key, value)
            elif key == "attempts":
                max_attempts = _parse_int(key, value)
            elif key == "crash":
                crashes.append(_parse_crash(value))
            else:
                raise ValueError(
                    f"--faults: unknown key {key!r} in {item!r} "
                    f"(grammar: {GRAMMAR})"
                )
        return cls(
            drop=drop,
            duplicate=duplicate,
            delay=delay,
            max_delay=max_delay,
            crashes=tuple(crashes),
            max_attempts=max_attempts,
        )

    def describe(self) -> str:
        """Round-trippable summary in the ``--faults`` grammar."""
        parts = []
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.duplicate:
            parts.append(f"dup={self.duplicate:g}")
        if self.delay:
            parts.append(f"delay={self.delay:g},max_delay={self.max_delay}")
        for window in self.crashes:
            parts.append(
                f"crash={window.count}@rounds:{window.start}-{window.end}"
            )
        parts.append(f"attempts={self.max_attempts}")
        return ",".join(parts) if not self.is_null else "none"


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault / retry / timeout observation.

    Attributes:
        kind: ``"drop"``, ``"duplicate"``, ``"delay"``, ``"crash"``,
            ``"crash_drop"``, ``"retry"``, ``"timeout"``, or
            ``"model-skip"`` (a fault class the vectorized model does
            not simulate; see :class:`repro.core.router.Router`).
        round: simulator round the fault applied to (``-1`` for modeled
            faults that have no wire round).
        sender / target: endpoints of the affected message (``-1`` when
            not message-scoped, e.g. a crash window opening).
        detail: kind-specific extras (delay length, retry counts, ...).
    """

    kind: str
    round: int = -1
    sender: int = -1
    target: int = -1
    detail: dict = field(default_factory=dict)


_NO_NODES: frozenset[int] = frozenset()


class FaultPlan:
    """A :class:`FaultSpec` bound to a seeded RNG: concrete decisions.

    Construction is disciplined (reprolint R007): the ``rng`` argument
    must come *directly* from :func:`repro.rng.derive_rng` or a
    ``RunContext.stream(...)``/``fresh_stream(...)`` call, so fault
    randomness always lives in its own named stream and can never bleed
    into (or starve) another component's stream.

    The plan exposes two independent fault surfaces:

    * **wire-level** (used by :meth:`repro.congest.network.Network.run`):
      :meth:`crashed` and :meth:`link_copies` decide, per round and per
      message, who is down and which copies of a message arrive when;
    * **modeled** (used by :class:`repro.core.router.Router` on the
      vectorized oracle path, which has no wire): :meth:`retry_cost`
      samples per-message geometric retransmission counts under the
      drop rate and converts them into extra rounds.

    Both surfaces draw from generators derived once at construction, so
    their consumption never interleaves: wire decisions are identical
    whether or not the modeled path also ran, and vice versa.
    """

    def __init__(
        self,
        spec: FaultSpec,
        rng: np.random.Generator,
        on_fault: Optional[Callable[[FaultRecord], None]] = None,
    ):
        self.spec = spec
        # Split the stream once: link decisions, crash-set sampling, and
        # the modeled retry path each get an independent substream so
        # their draw orders cannot perturb each other.
        entropy = rng.integers(0, 2**62, size=3)
        self._link_rng = derive_rng(int(entropy[0]))
        self._crash_entropy = int(entropy[1])
        self._model_rng = derive_rng(int(entropy[2]))
        self._on_fault = on_fault
        self._crash_sets: dict[tuple[int, int], frozenset[int]] = {}
        self.stats: dict[str, int] = {}
        self.records: list[FaultRecord] = []

    # -- observation ---------------------------------------------------------

    def record(self, record: FaultRecord) -> None:
        """Log one fault observation (and mirror it to ``on_fault``)."""
        self.stats[record.kind] = self.stats.get(record.kind, 0) + 1
        self.records.append(record)
        if self._on_fault is not None:
            self._on_fault(record)

    def count(self, kind: str) -> int:
        """How many faults of ``kind`` were injected/observed so far."""
        return self.stats.get(kind, 0)

    # -- session support -----------------------------------------------------

    def warm_state(self) -> dict:
        """Snapshot the plan's mutable state (RNG positions + fault log).

        The crash-set cache is *not* captured: it is a pure function of
        the crash entropy, so replays repopulate it identically.
        """
        return {
            "link_rng": copy.deepcopy(self._link_rng.bit_generator.state),
            "model_rng": copy.deepcopy(self._model_rng.bit_generator.state),
            "stats": dict(self.stats),
            "records_len": len(self.records),
        }

    def restore_warm_state(self, state: dict) -> None:
        """Rewind the plan to a :meth:`warm_state` snapshot, so each
        session request samples faults from the same positions a cold
        run would."""
        self._link_rng.bit_generator.state = copy.deepcopy(
            state["link_rng"]
        )
        self._model_rng.bit_generator.state = copy.deepcopy(
            state["model_rng"]
        )
        self.stats = dict(state["stats"])
        del self.records[state["records_len"]:]

    # -- wire-level faults (Network.run) -------------------------------------

    def crashed(self, round_number: int, num_nodes: int) -> frozenset[int]:
        """Nodes that are down during ``round_number``.

        The node set of each crash window is sampled lazily, once per
        ``(window, num_nodes)``, from a substream derived at
        construction — so *when* the first faulty round happens does not
        change *who* crashes.
        """
        if not self.spec.crashes:
            return _NO_NODES
        down: set[int] = set()
        for index, window in enumerate(self.spec.crashes):
            if not window.covers(round_number):
                continue
            key = (index, num_nodes)
            nodes = self._crash_sets.get(key)
            if nodes is None:
                rng = derive_rng(self._crash_entropy, index, num_nodes)
                count = min(window.count, num_nodes)
                nodes = frozenset(
                    int(v)
                    for v in rng.choice(num_nodes, size=count, replace=False)
                )
                self._crash_sets[key] = nodes
                for v in sorted(nodes):
                    self.record(
                        FaultRecord(
                            kind="crash",
                            round=window.start,
                            target=v,
                            detail={"until_round": window.end},
                        )
                    )
            down.update(nodes)
        return frozenset(down) if down else _NO_NODES

    def link_copies(
        self, round_number: int, sender: int, target: int
    ) -> tuple[int, ...]:
        """Delivery-round offsets for each surviving copy of a message.

        ``()`` means the message was dropped; ``(0,)`` is a clean
        delivery; a duplicate adds a second copy one round later; a
        delay shifts every copy by ``1..max_delay`` rounds.
        """
        spec = self.spec
        offsets = [0]
        if spec.drop and self._link_rng.random() < spec.drop:
            self.record(
                FaultRecord("drop", round_number, sender, target)
            )
            return ()
        if spec.duplicate and self._link_rng.random() < spec.duplicate:
            self.record(
                FaultRecord("duplicate", round_number, sender, target)
            )
            offsets.append(1)
        if spec.delay and self._link_rng.random() < spec.delay:
            shift = int(self._link_rng.integers(1, spec.max_delay + 1))
            self.record(
                FaultRecord(
                    "delay", round_number, sender, target,
                    detail={"rounds": shift},
                )
            )
            offsets = [offset + shift for offset in offsets]
        return tuple(offsets)

    # -- modeled faults (the vectorized oracle path) --------------------------

    def retry_cost(
        self, num_messages: int, base_rounds: float, stage: str
    ) -> float:
        """Extra rounds a delivery stage pays for retransmissions.

        Models the reliable layer on a stage that delivered
        ``num_messages`` messages in ``base_rounds`` rounds: each
        message independently needs ``Geometric(1 - drop)``
        transmissions; retransmission wave ``k`` resends the ``m_k``
        still-unacked messages at a pro-rated cost of
        ``ceil(base_rounds * m_k / num_messages)`` rounds (acks ride
        the reverse edge direction in parallel and are free).  Raises
        :class:`DeliveryTimeout` if any message would exceed the spec's
        ``max_attempts`` budget.
        """
        drop = self.spec.drop
        if drop <= 0.0 or num_messages == 0 or base_rounds <= 0.0:
            return 0.0
        attempts = self._model_rng.geometric(1.0 - drop, size=num_messages)
        over = attempts > self.spec.max_attempts
        if over.any():
            failed = int(over.sum())
            self.record(
                FaultRecord(
                    "timeout",
                    detail={"stage": stage, "messages": failed},
                )
            )
            raise DeliveryTimeout(
                f"{stage}: {failed}/{num_messages} messages exceeded the "
                f"{self.spec.max_attempts}-attempt retry budget at "
                f"drop={drop:g}",
                stage=stage,
                # The model has no per-link identity; one aggregate
                # culprit records the exhausted budget.
                culprits=((-1, -1, int(attempts.max())),),
            )
        retries = int(attempts.sum()) - num_messages
        if retries == 0:
            return 0.0
        extra = 0.0
        wave = 1
        while True:
            resent = int((attempts > wave).sum())
            if resent == 0:
                break
            extra += max(1.0, ceil(base_rounds * resent / num_messages))
            wave += 1
        self.record(
            FaultRecord(
                "retry",
                detail={
                    "stage": stage,
                    "retransmissions": retries,
                    "extra_rounds": extra,
                    "messages": num_messages,
                },
            )
        )
        return extra

    def __repr__(self) -> str:
        return (
            f"FaultPlan({self.spec.describe()}, "
            f"observed={dict(sorted(self.stats.items()))})"
        )
