"""Balliu-et-al.-style clique emulation baseline for dense graphs.

Balliu, Fraigniaud, Lotker, Olivetti (SIROCCO 2016) emulate the clique on
``G(n, p)`` in ``O(min{1/p^2, np})`` rounds.  The ``1/p^2`` branch is the
natural *two-hop relay*: the message for pair ``(u, v)`` travels over a
uniformly random common neighbour ``w`` (or directly over the edge
``{u, v}`` when it exists); the schedule length is the max number of
messages assigned to a single directed edge.  We implement that relay
with measured congestion, which is what the E3 benchmark compares the
hierarchical emulation against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..rng import resolve_rng

__all__ = ["TwoHopRelayResult", "two_hop_relay_emulation"]


@dataclass
class TwoHopRelayResult:
    """Outcome of the two-hop relay emulation.

    Attributes:
        rounds: measured schedule length (two sequential hop phases, each
            as long as its max directed-edge load).
        delivered: whether every pair had an edge or a common neighbour.
        direct_pairs: pairs that used a direct edge.
        relayed_pairs: pairs that used a common-neighbour relay.
        max_edge_load: worst per-directed-edge message count.
    """

    rounds: int
    delivered: bool
    direct_pairs: int
    relayed_pairs: int
    max_edge_load: int


def two_hop_relay_emulation(
    graph: Graph,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> TwoHopRelayResult:
    """Emulate one clique round by two-hop relays, measuring congestion.

    Returns:
        A :class:`TwoHopRelayResult`; ``delivered`` is False if some node
        pair has neither an edge nor a common neighbour (possible below
        the ``G(n, p)`` density the baseline assumes).
    """
    rng = resolve_rng(rng, seed)
    n = graph.num_nodes
    adjacency = np.zeros((n, n), dtype=bool)
    for u, v in graph.edges():
        adjacency[u, v] = True
        adjacency[v, u] = True
    first_load = np.zeros((n, n), dtype=np.int64)  # load on directed (u, w)
    second_load = np.zeros((n, n), dtype=np.int64)  # load on directed (w, v)
    direct = 0
    relayed = 0
    delivered = True
    neighbors = [np.flatnonzero(adjacency[u]) for u in range(n)]
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            if adjacency[u, v]:
                first_load[u, v] += 1
                direct += 1
                continue
            common = neighbors[u][adjacency[v, neighbors[u]]]
            if common.size == 0:
                delivered = False
                continue
            w = int(common[rng.integers(0, common.size)])
            first_load[u, w] += 1
            second_load[w, v] += 1
            relayed += 1
    phase1 = int(first_load.max()) if n else 0
    phase2 = int(second_load.max()) if n else 0
    return TwoHopRelayResult(
        rounds=phase1 + phase2,
        delivered=delivered,
        direct_pairs=direct,
        relayed_pairs=relayed,
        max_edge_load=max(phase1, phase2),
    )
