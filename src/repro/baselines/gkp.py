"""Garay–Kutten–Peleg-style ``O(D + sqrt(n))`` MST baseline.

The "optimal-for-general-graphs" algorithm the paper's ``tilde O(D +
sqrt(n))`` discussion refers to.  Two phases, with exact round accounting
of the standard schedule:

* **Phase 1 — controlled Boruvka**: merge fragments as usual but stop a
  fragment from participating once it has at least ``sqrt(n)`` nodes.
  Each iteration costs ``O(current fragment diameter)`` rounds (the
  diameter cap keeps this ``O(sqrt(n))``), and ``O(log n)`` iterations
  leave at most ``sqrt(n)`` fragments.
* **Phase 2 — pipelined upcast**: a global BFS tree aggregates the
  remaining fragments' candidate edges; with pipelining, each of the
  remaining ``O(log n)`` Boruvka iterations costs ``O(D + #fragments)``
  rounds.

The output is cross-checked against Kruskal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import WeightedGraph
from .centralized_mst import kruskal

__all__ = ["GkpResult", "gkp_mst"]


@dataclass
class GkpResult:
    """Output of the GKP-style baseline.

    Attributes:
        edge_ids: the MST edge ids (identical to Kruskal's).
        rounds: total synchronous rounds.
        phase1_rounds: rounds in the controlled-Boruvka phase.
        phase2_rounds: rounds in the pipelined phase.
        fragments_after_phase1: fragment count entering phase 2.
        diameter: BFS-tree depth used for the pipelined phase.
    """

    edge_ids: list[int]
    rounds: int
    phase1_rounds: int
    phase2_rounds: int
    fragments_after_phase1: int
    diameter: int
    per_iteration_rounds: list[int] = field(default_factory=list)


def gkp_mst(graph: WeightedGraph) -> GkpResult:
    """Run the two-phase GKP-style baseline with round accounting."""
    n = graph.num_nodes
    threshold = max(2, int(math.ceil(math.sqrt(n))))
    component = np.arange(n, dtype=np.int64)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    edge_ids: list[int] = []
    edges = graph.edge_array
    weights = graph.weights
    per_iteration: list[int] = []
    phase1_rounds = 0

    def component_sizes() -> dict[int, int]:
        unique, counts = np.unique(component, return_counts=True)
        return dict(zip(unique.tolist(), counts.tolist()))

    def merge(eid: int, size_cap: int | None = None) -> bool:
        u, v = int(edges[eid, 0]), int(edges[eid, 1])
        if component[u] == component[v]:
            return False
        if size_cap is not None:
            combined = int(
                np.sum(component == component[u])
                + np.sum(component == component[v])
            )
            if combined > size_cap:
                return False  # the controlled part: fragments stop growing
        edge_ids.append(eid)
        adjacency[u].append(v)
        adjacency[v].append(u)
        old, new = int(component[u]), int(component[v])
        component[component == old] = new
        return True

    # -- Phase 1: controlled Boruvka ------------------------------------
    while True:
        sizes = component_sizes()
        if all(size >= threshold for size in sizes.values()):
            break
        comp_u = component[edges[:, 0]]
        comp_v = component[edges[:, 1]]
        outgoing = np.flatnonzero(comp_u != comp_v)
        if outgoing.size == 0:
            break
        best: dict[int, tuple[float, int]] = {}
        for eid in outgoing:
            key = (float(weights[eid]), int(eid))
            for comp in (int(comp_u[eid]), int(comp_v[eid])):
                if sizes[comp] >= threshold:
                    continue  # grown fragments sit phase 1 out
                if comp not in best or key < best[comp]:
                    best[comp] = key
        if not best:
            break
        # Convergecast inside small fragments plus the post-merge leader
        # broadcast: the size cap keeps both O(sqrt n) per iteration.
        iteration_rounds = 3 * min(2 * threshold, max(sizes.values()) + threshold) + 1
        phase1_rounds += iteration_rounds
        per_iteration.append(iteration_rounds)
        progressed = False
        for comp, (_w, eid) in sorted(best.items()):
            progressed |= merge(eid, size_cap=2 * threshold)
        if not progressed:
            break  # every candidate merge would exceed the cap

    fragments_after_phase1 = len(np.unique(component))
    # -- Phase 2: pipelined upcast over a BFS tree -----------------------
    diameter = _bfs_depth(graph)
    phase2_rounds = 0
    while True:
        comp_u = component[edges[:, 0]]
        comp_v = component[edges[:, 1]]
        outgoing = np.flatnonzero(comp_u != comp_v)
        if outgoing.size == 0:
            break
        best: dict[int, tuple[float, int]] = {}
        for eid in outgoing:
            key = (float(weights[eid]), int(eid))
            for comp in (int(comp_u[eid]), int(comp_v[eid])):
                if comp not in best or key < best[comp]:
                    best[comp] = key
        num_fragments = len(np.unique(component))
        iteration_rounds = 2 * (diameter + num_fragments)
        phase2_rounds += iteration_rounds
        per_iteration.append(iteration_rounds)
        for comp, (_w, eid) in sorted(best.items()):
            merge(eid)
    result_ids = sorted(edge_ids)
    if result_ids != kruskal(graph):
        raise AssertionError("GKP baseline diverged from Kruskal")
    return GkpResult(
        edge_ids=result_ids,
        rounds=phase1_rounds + phase2_rounds,
        phase1_rounds=phase1_rounds,
        phase2_rounds=phase2_rounds,
        fragments_after_phase1=fragments_after_phase1,
        diameter=diameter,
        per_iteration_rounds=per_iteration,
    )


def _bfs_depth(graph: WeightedGraph) -> int:
    """Depth of a BFS tree from node 0 (the pipelining backbone)."""
    dist = graph.bfs_distances(0)
    if np.any(dist < 0):
        raise ValueError("graph is disconnected")
    return int(dist.max())
