"""GHS-style flooding Boruvka baseline (Gallager–Humblet–Spira lineage).

The classic distributed MST approach the paper departs from: per Boruvka
iteration, each fragment computes its minimum-weight outgoing edge by a
convergecast over its own fragment-tree edges and broadcasts the result
back.  With no shortcut structure, every iteration costs ``Theta(fragment
diameter)`` rounds, for ``O(n log n)`` worst case (and ``Omega(sqrt(n))``
even on low-diameter graphs — the Das Sarma et al. barrier).

Round accounting is exact for the convergecast schedule: each iteration
charges ``2 * max fragment-tree eccentricity + O(1)`` rounds; messages
are counted per tree edge traversal.  The result is cross-checked against
Kruskal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import WeightedGraph
from .centralized_mst import kruskal

__all__ = ["GhsResult", "ghs_mst"]


@dataclass
class GhsResult:
    """Output of the flooding-Boruvka baseline.

    Attributes:
        edge_ids: the MST edge ids (identical to Kruskal's).
        rounds: total synchronous rounds.
        messages: total messages over tree edges.
        iterations: Boruvka iterations used.
        per_iteration_rounds: round cost per iteration.
    """

    edge_ids: list[int]
    rounds: int
    messages: int
    iterations: int
    per_iteration_rounds: list[int] = field(default_factory=list)


def ghs_mst(graph: WeightedGraph) -> GhsResult:
    """Run the flooding-Boruvka baseline with exact round accounting."""
    n = graph.num_nodes
    component = np.arange(n, dtype=np.int64)
    adjacency: list[list[int]] = [[] for _ in range(n)]  # tree neighbours
    edge_ids: list[int] = []
    rounds = 0
    messages = 0
    per_iteration: list[int] = []
    edges = graph.edge_array
    weights = graph.weights
    while True:
        comp_u = component[edges[:, 0]]
        comp_v = component[edges[:, 1]]
        outgoing = np.flatnonzero(comp_u != comp_v)
        if outgoing.size == 0:
            break
        # Min-weight outgoing edge per component.
        best: dict[int, tuple[float, int]] = {}
        for eid in outgoing:
            key = (float(weights[eid]), int(eid))
            for comp in (int(comp_u[eid]), int(comp_v[eid])):
                if comp not in best or key < best[comp]:
                    best[comp] = key
        # Convergecast + broadcast cost: 2 * max fragment eccentricity
        # from the fragment leader, plus one round of neighbour exchange.
        iteration_rounds = 2 * _max_leader_eccentricity(n, component, adjacency) + 1
        messages += 2 * len(edge_ids) + 2 * n  # tree traffic + neighbour ids
        # Apply all merges (classic Boruvka merges everything at once).
        added = set()
        for comp, (_w, eid) in best.items():
            added.add(eid)
        for eid in sorted(added):
            u, v = int(edges[eid, 0]), int(edges[eid, 1])
            if component[u] == component[v]:
                continue  # an earlier merge in this batch united them
            edge_ids.append(eid)
            adjacency[u].append(v)
            adjacency[v].append(u)
            old, new = int(component[u]), int(component[v])
            component[component == old] = new
        # The merged fragments must agree on their new leader/fragment id:
        # one broadcast over each new fragment tree.  Chain merges make
        # this Theta(new fragment diameter) — the cost that dooms GHS on
        # long-MST instances.
        iteration_rounds += _max_leader_eccentricity(n, component, adjacency)
        rounds += iteration_rounds
        per_iteration.append(iteration_rounds)
        if len(per_iteration) > 4 * max(1, int(np.log2(max(2, n)))) + 8:
            raise RuntimeError("flooding Boruvka failed to converge")
    expected = kruskal(graph)
    result_ids = sorted(edge_ids)
    if result_ids != expected:
        raise AssertionError("GHS baseline diverged from Kruskal")
    return GhsResult(
        edge_ids=result_ids,
        rounds=rounds,
        messages=messages,
        iterations=len(per_iteration),
        per_iteration_rounds=per_iteration,
    )


def _max_leader_eccentricity(
    n: int, component: np.ndarray, adjacency: list[list[int]]
) -> int:
    """Max over fragments of BFS eccentricity from the fragment leader.

    The leader is the minimum-id member; the convergecast travels up the
    fragment tree to it and back.
    """
    seen = np.zeros(n, dtype=bool)
    worst = 0
    for comp in np.unique(component):
        members = np.flatnonzero(component == comp)
        leader = int(members.min())
        if seen[leader]:
            continue
        depth = 0
        seen_local = {leader}
        frontier = [leader]
        while frontier:
            nxt = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor not in seen_local:
                        seen_local.add(neighbor)
                        nxt.append(neighbor)
            if nxt:
                depth += 1
            frontier = nxt
        worst = max(worst, depth)
    return worst
