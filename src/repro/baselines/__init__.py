"""Baseline algorithms: centralized oracles and classic distributed MST."""

from .centralized_mst import is_spanning_tree, kruskal, mst_weight, prim
from .clique_baseline import TwoHopRelayResult, two_hop_relay_emulation
from .ghs import GhsResult, ghs_mst
from .ghs_congest import CongestGhsResult, congest_ghs_mst
from .gkp import GkpResult, gkp_mst
from .mincut_oracle import exact_min_cut, karger_min_cut
from .mst_verify import MstCertificate, verify_mst
from .routing_baselines import (
    RandomWalkDeliveryResult,
    StoreAndForwardResult,
    bfs_store_and_forward,
    random_walk_delivery,
    schedule_paths,
    schedule_paths_csr,
)
from .routing_baselines_ref import schedule_paths_ref

__all__ = [
    "is_spanning_tree",
    "kruskal",
    "mst_weight",
    "prim",
    "TwoHopRelayResult",
    "two_hop_relay_emulation",
    "GhsResult",
    "ghs_mst",
    "CongestGhsResult",
    "congest_ghs_mst",
    "GkpResult",
    "gkp_mst",
    "exact_min_cut",
    "karger_min_cut",
    "MstCertificate",
    "verify_mst",
    "RandomWalkDeliveryResult",
    "StoreAndForwardResult",
    "bfs_store_and_forward",
    "random_walk_delivery",
    "schedule_paths",
    "schedule_paths_csr",
    "schedule_paths_ref",
]
