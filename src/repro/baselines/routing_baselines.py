"""Naive routing baselines for the E1 comparison.

Two contrast points for the hierarchical router:

* **BFS store-and-forward**: each packet follows a shortest path; edges
  carry one packet per direction per round (FIFO with random priorities).
  Simple and good when congestion is low, but hot edges serialize —
  no load-balancing structure.
* **Blind random-walk delivery**: each packet walks until it happens to
  hit its destination.  Demonstrates why raw walks do not route (the
  paper's opening observation): expected hitting time ``Theta(m / d(t))``
  per packet.

The scheduler here is the *vectorized* implementation (packets as CSR
arrays, per-round winner selection with numpy); the original scalar
dict-and-deque implementation lives on as the semantic oracle in
:mod:`repro.baselines.routing_baselines_ref` and the equivalence suite
proves the two produce identical results seed for seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain

import numpy as np

from ..graphs.graph import Graph
from ..rng import resolve_rng
from ..walks.engine import run_lazy_walks

__all__ = [
    "StoreAndForwardResult",
    "bfs_store_and_forward",
    "schedule_paths",
    "schedule_paths_csr",
    "RandomWalkDeliveryResult",
    "random_walk_delivery",
]


@dataclass
class StoreAndForwardResult:
    """Outcome of the store-and-forward schedule.

    Attributes:
        rounds: rounds until the last packet arrived.
        delivered: whether every packet arrived (always True on success).
        max_queue: worst per-edge queue length observed.
        total_hops: sum of path lengths.
    """

    rounds: int
    delivered: bool
    max_queue: int
    total_hops: int


def bfs_store_and_forward(
    graph: Graph,
    sources: np.ndarray,
    destinations: np.ndarray,
    rng: np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
    seed: int | None = None,
) -> StoreAndForwardResult:
    """Route packets along BFS shortest paths with unit edge capacity.

    Each directed edge forwards at most one packet per round; contended
    packets queue FIFO (arrival order randomized by ``rng``).
    """
    rng = resolve_rng(rng, seed)
    sources = np.asarray(sources, dtype=np.int64)
    destinations = np.asarray(destinations, dtype=np.int64)
    paths = _shortest_paths(graph, sources, destinations)
    return schedule_paths(paths, rng=rng, max_rounds=max_rounds)


def schedule_paths(
    paths: list[list[int]],
    rng: np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
    seed: int | None = None,
) -> StoreAndForwardResult:
    """Store-and-forward scheduling of *explicit* packet paths.

    Each directed edge (consecutive path pair) forwards one packet per
    round; contended packets queue FIFO in randomized arrival order.
    Used both for shortest-path routing and for delivering overlay
    messages along their embedded walk paths (``repro.congest.native``).

    This is the vectorized scheduler: paths live in CSR arrays and every
    directed-edge queue is an array-backed linked list, so one round
    costs a handful of numpy ops over the *busy queues* (no per-packet
    Python).  It replicates the reference discipline of
    :func:`..routing_baselines_ref.schedule_paths_ref`
    packet-for-packet — including the dict-insertion drain order — so
    ``rounds``/``delivered``/``max_queue``/``total_hops`` are identical
    on the same seed (one ``rng.permutation`` is the entire randomness
    of both implementations).
    """
    rng = resolve_rng(rng, seed)
    num_packets = len(paths)
    lengths = np.fromiter(map(len, paths), dtype=np.int64, count=num_packets)
    offsets = np.zeros(num_packets + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    nodes = np.fromiter(
        chain.from_iterable(paths), dtype=np.int64, count=int(offsets[-1])
    )
    return schedule_paths_csr(
        nodes, offsets, rng=rng, max_rounds=max_rounds
    )


def schedule_paths_csr(
    nodes: np.ndarray,
    offsets: np.ndarray,
    rng: np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
    seed: int | None = None,
) -> StoreAndForwardResult:
    """:func:`schedule_paths` on paths already in CSR form.

    Packet ``i``'s path is ``nodes[offsets[i]:offsets[i + 1]]``.  The
    native pipeline assembles its embedded-path systems as flat arrays
    (:mod:`repro.congest.native`); this entry point schedules them
    without a list-of-lists round trip.  Semantics are *identical* to
    :func:`schedule_paths` on the inflated lists — including the single
    ``rng.permutation(num_packets)`` draw — so both entries produce the
    same result on the same packet set and seed.
    """
    rng = resolve_rng(rng, seed)
    nodes = np.asarray(nodes)
    offsets = np.asarray(offsets, dtype=np.int64)
    num_packets = int(offsets.shape[0]) - 1
    lengths = np.diff(offsets)
    total_hops = int((lengths - 1).sum()) if num_packets else 0
    order = rng.permutation(num_packets)
    entered = lengths > 1
    if not entered.any():
        return StoreAndForwardResult(
            rounds=0, delivered=True, max_queue=0, total_hops=total_hops
        )
    # A hop starts at every node that is not the last of its path.
    starts_hop = np.ones(nodes.shape[0], dtype=bool)
    starts_hop[offsets[1:] - 1] = False
    hop_positions = np.flatnonzero(starts_hop)
    # Dense directed-edge ids for the (src, dst) hop keys — dense so
    # the per-edge queue arrays stay small and cache-resident.
    low = int(nodes.min())
    span = int(nodes.max()) - low + 1
    # int64 keys regardless of the caller's node dtype: span**2 can
    # overflow int32 for large node-id ranges.
    keys = (nodes[hop_positions].astype(np.int64) - low) * span + (
        nodes[hop_positions + 1] - low
    )
    if span * span <= 4_194_304:
        # Presence table + scatter: same dense ids as
        # np.unique(return_inverse=True) without sorting every hop.
        seen = np.zeros(span * span, dtype=bool)
        seen[keys] = True
        uniq = np.flatnonzero(seen)
        num_edges = int(uniq.shape[0])
        lut = np.empty(span * span, dtype=np.int64)
        lut[uniq] = np.arange(num_edges, dtype=np.int64)
        hop_edge = lut[keys]
    else:
        uniq_keys, hop_edge = np.unique(keys, return_inverse=True)
        num_edges = int(uniq_keys.shape[0])
    if num_edges * num_packets < 2**31:
        # int32 sort keys in append() are measurably faster; safe since
        # every combined key fits (edge * k + position < edges * packets).
        hop_edge = hop_edge.astype(np.int32)

    state = _SchedulerState(num_packets, num_edges, hop_edge.dtype)
    # Per-packet pointer into hop_edge; a packet is delivered once its
    # pointer reaches the start of the next packet's hop range.
    hop_offsets = np.zeros(num_packets + 1, dtype=np.int64)
    np.cumsum(np.maximum(lengths - 1, 0), out=hop_offsets[1:])
    ptr = hop_offsets[:-1].copy()
    end_ptr = hop_offsets[1:]
    initial = order[entered[order]]  # packets entering, permutation order
    max_queue = state.append(initial, hop_edge[ptr[initial]])
    state.end_round()
    pending = int(initial.shape[0])
    rounds = 0
    while pending:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("store-and-forward exceeded the round budget")
        movers = state.pop_heads()  # dict-insertion (drain) order
        moved_to = ptr[movers] + 1
        ptr[movers] = moved_to
        alive = moved_to != end_ptr[movers]
        cont = movers[alive]  # still in drain order
        pending -= movers.shape[0] - cont.shape[0]
        if cont.shape[0]:
            peak = state.append(cont, hop_edge[moved_to[alive]])
            if peak > max_queue:
                max_queue = peak
        # End-of-round cleanup: queues that emptied lose their key.
        state.end_round()
    return StoreAndForwardResult(
        rounds=rounds,
        delivered=True,
        max_queue=max_queue,
        total_hops=total_hops,
    )


class _SchedulerState:
    """Array-backed FIFO queues for the vectorized scheduler.

    One queue per directed edge, as a linked list over packet ids
    (``next_packet``); ``queue_head``/``queue_tail``/``counts`` index it
    per edge.  ``busy`` holds the nonempty queues' keys as an explicit
    array in *dict insertion order*, replaying the reference
    implementation's dict semantics structurally: at the end of a round
    survivors keep their relative order and queues keyed for the first
    time are appended in first-append order — exactly the reference's
    ``dict.setdefault`` plus end-of-round rebuild.  ``live`` marks which
    edges currently hold a key.
    """

    def __init__(self, num_packets: int, num_edges: int, edge_dtype):
        self.next_packet = np.full(num_packets, -1, dtype=np.int64)
        self._iota = np.arange(num_packets, dtype=edge_dtype)
        self.queue_head = np.full(num_edges, -1, dtype=np.int64)
        self.queue_tail = np.full(num_edges, -1, dtype=np.int64)
        self.counts = np.zeros(num_edges, dtype=np.int64)
        self.live = np.zeros(num_edges, dtype=bool)
        self.busy = np.empty(0, dtype=np.int64)
        self._fresh: np.ndarray | None = None
        self._mark = np.zeros(num_packets, dtype=bool)  # scratch

    def pop_heads(self) -> np.ndarray:
        """Dequeue the FIFO head of every busy queue, in drain order."""
        busy = self.busy
        movers = self.queue_head[busy]
        self.queue_head[busy] = self.next_packet[movers]
        self.counts[busy] -= 1
        return movers

    def append(self, packets: np.ndarray, edges: np.ndarray) -> int:
        """Enqueue ``packets`` onto ``edges`` (parallel arrays, append
        order = drain order), returning the peak queue length touched."""
        k = edges.shape[0]
        # Group by edge while preserving append order within each group:
        # the combined key (edge, position) is unique, so an *unstable*
        # quicksort argsort yields the stable-grouped order at a
        # fraction of a stable sort's cost.
        grouped = np.argsort(edges * k + self._iota[:k])
        run = packets[grouped]
        run_edge = edges[grouped]
        boundary = np.empty(k, dtype=bool)
        boundary[0] = True
        np.not_equal(run_edge[1:], run_edge[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        firsts = run[starts]
        first_edges = run_edge[starts]
        last_at = np.empty(starts.shape[0], dtype=np.int64)
        last_at[:-1] = starts[1:] - 1
        last_at[-1] = k - 1
        # One scatter wires every link: each packet points at the next
        # of its group, and each group's last packet gets the -1 tail.
        link = np.empty(k, dtype=np.int64)
        link[: k - 1] = run[1:]
        link[last_at] = -1
        self.next_packet[run] = link
        lasts = run[last_at]
        was_empty = self.counts[first_edges] == 0
        self.queue_head[first_edges[was_empty]] = firsts[was_empty]
        self.next_packet[self.queue_tail[first_edges[~was_empty]]] = firsts[
            ~was_empty
        ]
        self.queue_tail[first_edges] = lasts
        sizes = np.empty(starts.shape[0], dtype=np.int64)
        sizes[:-1] = starts[1:] - starts[:-1]
        sizes[-1] = k - starts[-1]
        new_counts = self.counts[first_edges] + sizes
        self.counts[first_edges] = new_counts
        # Queues keyed for the first time, in first-append order (the
        # dict key-insertion order): a group's first append happens at
        # its earliest *original* position.
        fresh = ~self.live[first_edges]
        if fresh.any():
            pos = grouped[starts[fresh]]
            mark = self._mark
            mark[pos] = True
            new_edges = edges[np.flatnonzero(mark[:k])]
            mark[pos] = False
            self.live[new_edges] = True
            self._fresh = new_edges
        else:
            self._fresh = None
        return int(new_counts.max())

    def end_round(self) -> None:
        """End-of-round dict rebuild: emptied queues lose their key and
        queues keyed during the round join at the end, in order."""
        busy = self.busy
        keep = self.counts[busy] > 0
        self.live[busy] = keep
        survivors = busy[keep]
        if self._fresh is None:
            self.busy = survivors
        else:
            self.busy = np.concatenate([survivors, self._fresh])
            self._fresh = None


def _shortest_paths(
    graph: Graph, sources: np.ndarray, destinations: np.ndarray
) -> list[list[int]]:
    """One shortest path per packet, via BFS parents from each source."""
    parents_cache: dict[int, np.ndarray] = {}
    paths: list[list[int]] = []
    for src, dst in zip(sources, destinations):
        src, dst = int(src), int(dst)
        if src not in parents_cache:
            parents_cache[src] = _bfs_parents(graph, src)
        parents = parents_cache[src]
        if parents[dst] < 0 and dst != src:
            raise ValueError(f"{dst} unreachable from {src}")
        path = [dst]
        while path[-1] != src:
            path.append(int(parents[path[-1]]))
        path.reverse()
        paths.append(path)
    return paths


def _bfs_parents(graph: Graph, source: int) -> np.ndarray:
    parents = np.full(graph.num_nodes, -1, dtype=np.int64)
    parents[source] = source
    frontier = [source]
    while frontier:
        nxt = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                neighbor = int(neighbor)
                if parents[neighbor] < 0:
                    parents[neighbor] = node
                    nxt.append(neighbor)
        frontier = nxt
    parents[source] = source
    return parents


@dataclass
class RandomWalkDeliveryResult:
    """Outcome of blind random-walk delivery.

    Attributes:
        rounds: walk steps until the last packet was absorbed (or cap).
        delivered: fraction of packets that reached their destination.
        mean_hitting_time: average absorption step over delivered packets.
    """

    rounds: int
    delivered: float
    mean_hitting_time: float


def random_walk_delivery(
    graph: Graph,
    sources: np.ndarray,
    destinations: np.ndarray,
    rng: np.random.Generator | None = None,
    max_steps: int = 100_000,
    seed: int | None = None,
) -> RandomWalkDeliveryResult:
    """Let each packet walk blindly until it hits its destination."""
    rng = resolve_rng(rng, seed)
    sources = np.asarray(sources, dtype=np.int64)
    destinations = np.asarray(destinations, dtype=np.int64)
    positions = sources.copy()
    absorbed = positions == destinations
    hit_time = np.zeros(sources.shape[0], dtype=np.int64)
    step = 0
    while not absorbed.all() and step < max_steps:
        step += 1
        active = ~absorbed
        batch = run_lazy_walks(graph, positions[active], 1, rng)
        positions[active] = batch.positions
        newly = active & (positions == destinations)
        hit_time[newly] = step
        absorbed |= newly
    delivered = float(absorbed.mean()) if absorbed.size else 1.0
    mean_hit = float(hit_time[absorbed].mean()) if absorbed.any() else 0.0
    return RandomWalkDeliveryResult(
        rounds=step, delivered=delivered, mean_hitting_time=mean_hit
    )
