"""Naive routing baselines for the E1 comparison.

Two contrast points for the hierarchical router:

* **BFS store-and-forward**: each packet follows a shortest path; edges
  carry one packet per direction per round (FIFO with random priorities).
  Simple and good when congestion is low, but hot edges serialize —
  no load-balancing structure.
* **Blind random-walk delivery**: each packet walks until it happens to
  hit its destination.  Demonstrates why raw walks do not route (the
  paper's opening observation): expected hitting time ``Theta(m / d(t))``
  per packet.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..rng import resolve_rng
from ..walks.engine import run_lazy_walks

__all__ = [
    "StoreAndForwardResult",
    "bfs_store_and_forward",
    "schedule_paths",
    "RandomWalkDeliveryResult",
    "random_walk_delivery",
]


@dataclass
class StoreAndForwardResult:
    """Outcome of the store-and-forward schedule.

    Attributes:
        rounds: rounds until the last packet arrived.
        delivered: whether every packet arrived (always True on success).
        max_queue: worst per-edge queue length observed.
        total_hops: sum of path lengths.
    """

    rounds: int
    delivered: bool
    max_queue: int
    total_hops: int


def bfs_store_and_forward(
    graph: Graph,
    sources: np.ndarray,
    destinations: np.ndarray,
    rng: np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
    seed: int | None = None,
) -> StoreAndForwardResult:
    """Route packets along BFS shortest paths with unit edge capacity.

    Each directed edge forwards at most one packet per round; contended
    packets queue FIFO (arrival order randomized by ``rng``).
    """
    rng = resolve_rng(rng, seed)
    sources = np.asarray(sources, dtype=np.int64)
    destinations = np.asarray(destinations, dtype=np.int64)
    paths = _shortest_paths(graph, sources, destinations)
    return schedule_paths(paths, rng=rng, max_rounds=max_rounds)


def schedule_paths(
    paths: list[list[int]],
    rng: np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
    seed: int | None = None,
) -> StoreAndForwardResult:
    """Store-and-forward scheduling of *explicit* packet paths.

    Each directed edge (consecutive path pair) forwards one packet per
    round; contended packets queue FIFO in randomized arrival order.
    Used both for shortest-path routing and for delivering overlay
    messages along their embedded walk paths (``repro.congest.native``).
    """
    rng = resolve_rng(rng, seed)
    total_hops = sum(len(path) - 1 for path in paths)
    # Queue per directed edge (u -> v), keyed by (u, v).
    queues: dict[tuple[int, int], deque] = {}
    position = [0] * len(paths)  # index into each packet's path
    order = rng.permutation(len(paths))
    pending = 0
    for pid in order:
        path = paths[pid]
        if len(path) > 1:
            queues.setdefault((path[0], path[1]), deque()).append(pid)
            pending += 1
    rounds = 0
    max_queue = max((len(q) for q in queues.values()), default=0)
    while pending:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("store-and-forward exceeded the round budget")
        moves: list[tuple[tuple[int, int], int]] = []
        for key, queue in queues.items():
            if queue:
                moves.append((key, queue.popleft()))
        for (u, v), pid in moves:
            position[pid] += 1
            path = paths[pid]
            if position[pid] == len(path) - 1:
                pending -= 1
            else:
                nxt = (path[position[pid]], path[position[pid] + 1])
                queues.setdefault(nxt, deque()).append(pid)
        max_queue = max(
            max_queue, max((len(q) for q in queues.values()), default=0)
        )
        queues = {key: q for key, q in queues.items() if q}
    return StoreAndForwardResult(
        rounds=rounds,
        delivered=True,
        max_queue=max_queue,
        total_hops=total_hops,
    )


def _shortest_paths(
    graph: Graph, sources: np.ndarray, destinations: np.ndarray
) -> list[list[int]]:
    """One shortest path per packet, via BFS parents from each source."""
    parents_cache: dict[int, np.ndarray] = {}
    paths: list[list[int]] = []
    for src, dst in zip(sources, destinations):
        src, dst = int(src), int(dst)
        if src not in parents_cache:
            parents_cache[src] = _bfs_parents(graph, src)
        parents = parents_cache[src]
        if parents[dst] < 0 and dst != src:
            raise ValueError(f"{dst} unreachable from {src}")
        path = [dst]
        while path[-1] != src:
            path.append(int(parents[path[-1]]))
        path.reverse()
        paths.append(path)
    return paths


def _bfs_parents(graph: Graph, source: int) -> np.ndarray:
    parents = np.full(graph.num_nodes, -1, dtype=np.int64)
    parents[source] = source
    frontier = [source]
    while frontier:
        nxt = []
        for node in frontier:
            for neighbor in graph.neighbors(node):
                neighbor = int(neighbor)
                if parents[neighbor] < 0:
                    parents[neighbor] = node
                    nxt.append(neighbor)
        frontier = nxt
    parents[source] = source
    return parents


@dataclass
class RandomWalkDeliveryResult:
    """Outcome of blind random-walk delivery.

    Attributes:
        rounds: walk steps until the last packet was absorbed (or cap).
        delivered: fraction of packets that reached their destination.
        mean_hitting_time: average absorption step over delivered packets.
    """

    rounds: int
    delivered: float
    mean_hitting_time: float


def random_walk_delivery(
    graph: Graph,
    sources: np.ndarray,
    destinations: np.ndarray,
    rng: np.random.Generator | None = None,
    max_steps: int = 100_000,
    seed: int | None = None,
) -> RandomWalkDeliveryResult:
    """Let each packet walk blindly until it hits its destination."""
    rng = resolve_rng(rng, seed)
    sources = np.asarray(sources, dtype=np.int64)
    destinations = np.asarray(destinations, dtype=np.int64)
    positions = sources.copy()
    absorbed = positions == destinations
    hit_time = np.zeros(sources.shape[0], dtype=np.int64)
    step = 0
    while not absorbed.all() and step < max_steps:
        step += 1
        active = ~absorbed
        batch = run_lazy_walks(graph, positions[active], 1, rng)
        positions[active] = batch.positions
        newly = active & (positions == destinations)
        hit_time[newly] = step
        absorbed |= newly
    delivered = float(absorbed.mean()) if absorbed.size else 1.0
    mean_hit = float(hit_time[absorbed].mean()) if absorbed.any() else 0.0
    return RandomWalkDeliveryResult(
        rounds=step, delivered=delivered, mean_hitting_time=mean_hit
    )
