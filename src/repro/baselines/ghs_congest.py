"""Message-passing Boruvka (GHS-style) on the CONGEST simulator.

Unlike :mod:`repro.baselines.ghs` — which *accounts* the convergecast
schedule — this implementation actually exchanges every message through
:class:`repro.congest.Network`, with nodes acting only on their local
state and inbox.  One Boruvka iteration is driven as four sub-phases,
each a separate synchronous execution sharing per-node state:

1. **ID exchange** — every node tells neighbours its fragment id.
2. **Convergecast** — leaves send their min outgoing edge up the
   fragment tree; internal nodes wait for all children, keep the min,
   forward it; terminates at the fragment leader.
3. **Broadcast + connect** — the leader floods the chosen edge down the
   tree; the fragment-side endpoint fires a connect message over it.
4. **Leader resolution + relabel** — each connect edge whose two
   fragments chose each other is a *core*; its higher-id endpoint
   becomes the merged fragment's leader and floods the new id over tree
   and connect edges.

Rounds are the sum of the sub-phase executions — every one of them a
real message-passing run.  The result is cross-checked against Kruskal,
and the test suite compares the round count with the accounted
:func:`repro.baselines.ghs.ghs_mst` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..congest.network import Network, NodeAlgorithm
from ..graphs.graph import WeightedGraph
from .centralized_mst import kruskal

__all__ = ["CongestGhsResult", "congest_ghs_mst"]


@dataclass
class _NodeState:
    """Mutable per-node state shared across sub-phase executions."""

    fragment: int
    parent: Optional[int] = None  # tree neighbour towards the leader
    tree_neighbors: set[int] = field(default_factory=set)
    neighbor_fragments: dict[int, int] = field(default_factory=dict)
    candidate: Optional[tuple[float, int, int, int]] = None
    chosen: Optional[tuple[float, int, int, int]] = None  # (w, eid, u, v)
    connect_neighbors: set[int] = field(default_factory=set)


@dataclass
class CongestGhsResult:
    """Outcome of the message-passing Boruvka run.

    Attributes:
        edge_ids: the MST edge ids (verified equal to Kruskal's).
        rounds: total CONGEST rounds over all sub-phase executions.
        messages: total messages sent.
        iterations: Boruvka iterations.
    """

    edge_ids: list[int]
    rounds: int
    messages: int
    iterations: int


class _ExchangeIds(NodeAlgorithm):
    """Sub-phase 1: learn every neighbour's fragment id."""

    def __init__(self, context, state: _NodeState):
        super().__init__(context)
        self.state = state

    def initialize(self) -> Mapping[int, tuple]:
        self.finished = True
        return {
            w: ("frag", self.state.fragment)
            for w in self.context.neighbors
        }

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            self.state.neighbor_fragments[sender] = payload[1]
        return {}


class _Convergecast(NodeAlgorithm):
    """Sub-phase 2: min outgoing edge flows up the fragment tree."""

    def __init__(self, context, state: _NodeState):
        super().__init__(context)
        self.state = state
        self.waiting_for = set(state.tree_neighbors)
        if state.parent is not None:
            self.waiting_for.discard(state.parent)
        self.best = self._local_candidate()
        self.sent = False

    def _local_candidate(self):
        state = self.state
        best = None
        for index, neighbor in enumerate(self.context.neighbors):
            if state.neighbor_fragments.get(neighbor) == state.fragment:
                continue
            weight = self.context.edge_weights[index]
            key = (
                weight,
                min(self.context.node_id, neighbor),
                max(self.context.node_id, neighbor),
            )
            candidate = (weight, self.context.node_id, neighbor)
            if best is None or key < (best[0], min(best[1], best[2]),
                                      max(best[1], best[2])):
                best = candidate
        return best

    def _try_report(self) -> Mapping[int, tuple]:
        if self.waiting_for or self.sent:
            return {}
        self.sent = True
        self.finished = True
        if self.state.parent is None:
            # Leader: record the fragment's choice.
            self.state.chosen = self.best
            return {}
        payload = self.best if self.best is not None else (-1.0, -1, -1)
        return {self.state.parent: ("up",) + tuple(payload)}

    def initialize(self) -> Mapping[int, tuple]:
        return self._try_report()

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            if payload[0] != "up":
                continue
            self.waiting_for.discard(sender)
            if payload[2] >= 0:
                candidate = (payload[1], int(payload[2]), int(payload[3]))
                if self.best is None or self._key(candidate) < self._key(
                    self.best
                ):
                    self.best = candidate
        return self._try_report()

    @staticmethod
    def _key(candidate):
        weight, u, v = candidate
        return (weight, min(u, v), max(u, v))


class _BroadcastConnect(NodeAlgorithm):
    """Sub-phase 3: flood the chosen edge; its endpoint fires connect."""

    def __init__(self, context, state: _NodeState):
        super().__init__(context)
        self.state = state
        self.informed = state.parent is None  # leader starts informed

    def _act_on_choice(self) -> Mapping[int, tuple]:
        self.finished = True
        outbox = {}
        chosen = self.state.chosen
        payload = (
            ("edge",) + tuple(chosen)
            if chosen is not None
            else ("edge", -1.0, -1, -1)
        )
        for child in self.state.tree_neighbors:
            if child != self.state.parent:
                outbox[child] = payload
        if chosen is not None and chosen[1] == self.context.node_id:
            outbox[chosen[2]] = ("connect", self.state.fragment)
        return outbox

    def initialize(self) -> Mapping[int, tuple]:
        if self.informed:
            return self._act_on_choice()
        return {}

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        outbox: dict[int, tuple] = {}
        for sender, payload in inbox.items():
            if payload[0] == "edge" and not self.informed:
                self.informed = True
                if payload[2] >= 0:
                    self.state.chosen = (
                        payload[1], int(payload[2]), int(payload[3])
                    )
                else:
                    self.state.chosen = None
                outbox.update(self._act_on_choice())
            elif payload[0] == "connect":
                self.state.connect_neighbors.add(sender)
        return outbox


class _Relabel(NodeAlgorithm):
    """Sub-phase 4: the core endpoint floods the merged fragment's id.

    Tree and connect edges together form the merged fragment; parents are
    re-oriented towards whoever relayed the new id.
    """

    def __init__(self, context, state: _NodeState):
        super().__init__(context)
        self.state = state
        self.new_fragment: Optional[int] = None
        self.is_core_leader = self._detect_core_leader()

    def _detect_core_leader(self) -> bool:
        chosen = self.state.chosen
        if chosen is None or chosen[1] != self.context.node_id:
            return False
        # Our fragment's chosen edge leaves from this node to `other`.
        other = chosen[2]
        # Core edge: the other fragment chose the same edge back at us.
        if other not in self.state.connect_neighbors:
            return False
        return self.context.node_id > other

    def _links(self) -> set[int]:
        links = set(self.state.tree_neighbors)
        links |= self.state.connect_neighbors
        chosen = self.state.chosen
        if chosen is not None and chosen[1] == self.context.node_id:
            links.add(chosen[2])
        return links

    def initialize(self) -> Mapping[int, tuple]:
        if self.is_core_leader:
            self.new_fragment = self.context.node_id
            self.state.parent = None
            self.finished = True
            return {
                w: ("newid", self.new_fragment) for w in self._links()
            }
        return {}

    def receive(self, round_number, inbox) -> Mapping[int, tuple]:
        for sender, payload in inbox.items():
            if payload[0] != "newid" or self.new_fragment is not None:
                continue
            self.new_fragment = payload[1]
            self.state.parent = sender
            self.finished = True
            return {
                w: ("newid", self.new_fragment)
                for w in self._links()
                if w != sender
            }
        return {}

    def result(self):
        return self.new_fragment


def congest_ghs_mst(
    graph: WeightedGraph,
    max_iterations: int | None = None,
    validate: str = "full",
) -> CongestGhsResult:
    """Run message-passing Boruvka to completion on ``graph``.

    ``validate`` selects the outbox-validation mode of
    :meth:`repro.congest.network.Network.run`; results are identical
    across modes (the equivalence suite asserts this).
    """
    if not isinstance(graph, WeightedGraph):
        raise TypeError("congest_ghs_mst needs a WeightedGraph")
    if len(set(graph.weights.tolist())) != graph.num_edges:
        raise ValueError(
            "congest_ghs_mst requires distinct edge weights (its in-band "
            "tie-break is by endpoint ids, which cannot match Kruskal's "
            "edge-id tie-break on duplicate weights)"
        )
    network = Network(graph)
    n = graph.num_nodes
    states = [_NodeState(fragment=v) for v in range(n)]
    edge_ids: set[int] = set()
    rounds = 0
    messages = 0
    if max_iterations is None:
        max_iterations = 4 * max(2, n).bit_length() + 8

    def run_phase(cls) -> None:
        nonlocal rounds, messages
        algorithms = [cls(network.context(v), states[v]) for v in range(n)]
        stats = network.run(
            algorithms, max_rounds=50 * n + 100, validate=validate
        )
        rounds += stats.rounds
        messages += stats.messages
        return algorithms

    edge_id_of = {}
    for eid, (u, v) in enumerate(graph.edges()):
        edge_id_of[(u, v)] = eid
        edge_id_of[(v, u)] = eid

    for _iteration in range(max_iterations):
        if len({state.fragment for state in states}) == 1:
            break
        for state in states:
            state.neighbor_fragments.clear()
            state.candidate = None
            state.chosen = None
            state.connect_neighbors.clear()
        run_phase(_ExchangeIds)
        run_phase(_Convergecast)
        run_phase(_BroadcastConnect)
        relabel = run_phase(_Relabel)
        # Commit: new fragment ids and the tree edges added by connects.
        for v, algorithm in enumerate(relabel):
            state = states[v]
            new_fragment = algorithm.new_fragment
            if new_fragment is None:
                continue  # fragment did not merge this iteration
            state.fragment = new_fragment
            chosen = state.chosen
            # Tree membership: connect edges become tree edges.
            for other in state.connect_neighbors:
                state.tree_neighbors.add(other)
                edge_ids.add(edge_id_of[(v, other)])
            if chosen is not None and chosen[1] == v:
                state.tree_neighbors.add(chosen[2])
                edge_ids.add(edge_id_of[(v, chosen[2])])
    else:
        if len({state.fragment for state in states}) != 1:
            raise RuntimeError("message-passing Boruvka did not converge")
    result_ids = sorted(edge_ids)
    if result_ids != kruskal(graph):
        raise AssertionError(
            "message-passing Boruvka diverged from Kruskal"
        )
    iterations = _iteration
    return CongestGhsResult(
        edge_ids=result_ids,
        rounds=rounds,
        messages=messages,
        iterations=iterations,
    )
