"""MST verification via the cycle property.

A spanning tree ``T`` is minimum iff every non-tree edge is a maximum-
weight edge on the cycle it closes (with ``(weight, id)`` tie-breaking,
*the* strict maximum).  This gives an ``O(n m)`` certificate check that
is independent of how the tree was computed — the verification problem
whose distributed hardness (Das Sarma et al.) frames the paper's lower-
bound discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import WeightedGraph
from .centralized_mst import is_spanning_tree

__all__ = ["MstCertificate", "verify_mst"]


@dataclass
class MstCertificate:
    """Outcome of a verification pass.

    Attributes:
        valid: the tree is the (unique, tie-broken) MST.
        violations: non-tree edges that are lighter than some tree edge
            on their cycle, as ``(non_tree_edge, heavier_tree_edge)``.
        checked_edges: number of non-tree edges examined.
    """

    valid: bool
    violations: list[tuple[int, int]] = field(default_factory=list)
    checked_edges: int = 0


def verify_mst(
    graph: WeightedGraph, tree_edge_ids: list[int]
) -> MstCertificate:
    """Check the cycle property for every non-tree edge.

    Args:
        graph: the weighted graph.
        tree_edge_ids: candidate MST edge ids.

    Returns:
        An :class:`MstCertificate`; ``valid`` is False both for wrong
        trees and for non-spanning-tree inputs.
    """
    if not is_spanning_tree(graph, tree_edge_ids):
        return MstCertificate(valid=False)
    n = graph.num_nodes
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    tree_set = set(tree_edge_ids)
    for eid in tree_edge_ids:
        u, v = graph.edge_array[eid]
        adjacency[int(u)].append((int(v), eid))
        adjacency[int(v)].append((int(u), eid))
    # Root the tree and precompute parents for path walks.
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    parent[0] = 0
    order = [0]
    for node in order:
        for neighbor, eid in adjacency[node]:
            if parent[neighbor] < 0:
                parent[neighbor] = node
                parent_edge[neighbor] = eid
                depth[neighbor] = depth[node] + 1
                order.append(neighbor)

    def key(eid: int) -> tuple[float, int]:
        return (float(graph.weights[eid]), int(eid))

    certificate = MstCertificate(valid=True)
    for eid in range(graph.num_edges):
        if eid in tree_set:
            continue
        certificate.checked_edges += 1
        u, v = (int(x) for x in graph.edge_array[eid])
        # Walk the tree path u..v, tracking the heaviest tree edge.
        heaviest = None
        a, b = u, v
        while a != b:
            if depth[a] < depth[b]:
                a, b = b, a
            edge_on_path = int(parent_edge[a])
            if heaviest is None or key(edge_on_path) > key(heaviest):
                heaviest = edge_on_path
            a = int(parent[a])
        if heaviest is not None and key(eid) < key(heaviest):
            certificate.valid = False
            certificate.violations.append((eid, heaviest))
    return certificate
