"""Centralized MST oracles: Kruskal and Prim.

Used as correctness references for the distributed algorithms.  Ties are
broken by ``(weight, edge_id)`` everywhere, so all implementations in
this library agree on a unique MST.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.graph import WeightedGraph

__all__ = ["kruskal", "prim", "is_spanning_tree", "mst_weight"]


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self.rank[rx] < self.rank[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        if self.rank[rx] == self.rank[ry]:
            self.rank[rx] += 1
        return True


def kruskal(graph: WeightedGraph) -> list[int]:
    """MST edge ids by Kruskal's algorithm (``(weight, id)`` ties)."""
    order = sorted(
        range(graph.num_edges), key=lambda eid: (graph.weights[eid], eid)
    )
    uf = _UnionFind(graph.num_nodes)
    chosen: list[int] = []
    for eid in order:
        u, v = graph.edge_array[eid]
        if uf.union(int(u), int(v)):
            chosen.append(eid)
    if len(chosen) != graph.num_nodes - 1:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return sorted(chosen)


def prim(graph: WeightedGraph, root: int = 0) -> list[int]:
    """MST edge ids by Prim's algorithm (``(weight, id)`` ties)."""
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    heap: list[tuple[float, int, int]] = []

    def push(node: int) -> None:
        for arc in graph.arcs_of(node):
            eid = int(graph.arc_edge[arc])
            other = int(graph.indices[arc])
            if not visited[other]:
                heapq.heappush(heap, (float(graph.weights[eid]), eid, other))

    push(root)
    chosen: list[int] = []
    while heap and len(chosen) < graph.num_nodes - 1:
        _w, eid, node = heapq.heappop(heap)
        u, v = graph.edge_array[eid]
        if visited[u] and visited[v]:
            continue
        target = int(v) if visited[u] else int(u)
        visited[target] = True
        chosen.append(eid)
        push(target)
    if len(chosen) != graph.num_nodes - 1:
        raise ValueError("graph is disconnected; no spanning tree exists")
    return sorted(chosen)


def is_spanning_tree(graph: WeightedGraph, edge_ids: list[int]) -> bool:
    """Whether the edge ids form a spanning tree of the graph."""
    if len(edge_ids) != graph.num_nodes - 1:
        return False
    uf = _UnionFind(graph.num_nodes)
    for eid in edge_ids:
        u, v = graph.edge_array[eid]
        if not uf.union(int(u), int(v)):
            return False
    return True


def mst_weight(graph: WeightedGraph) -> float:
    """Weight of the (unique) MST."""
    return graph.total_weight(kruskal(graph))
