"""Centralized min-cut oracles: exact (small n) and Karger contraction.

Verification references for :mod:`repro.core.mincut`.  The exact oracle
enumerates cuts (``n <= 22``); the randomized oracle runs Karger's
contraction ``O(n^2 log n)`` times for a w.h.p.-exact answer at the sizes
we test (and is itself validated against the exact oracle).
"""

from __future__ import annotations

import math

import numpy as np

from ..graphs.graph import Graph
from ..graphs.properties import cut_size

__all__ = ["exact_min_cut", "karger_min_cut"]


def exact_min_cut(graph: Graph) -> tuple[int, np.ndarray]:
    """Exact minimum cut by enumeration (``n <= 22``).

    Returns:
        ``(cut value, membership mask of one side)``.
    """
    n = graph.num_nodes
    if n > 22:
        raise ValueError("exact min cut is exponential; use karger_min_cut")
    if n < 2:
        raise ValueError("min cut needs at least two nodes")
    best_value = graph.num_edges + 1
    best_side = None
    edges = graph.edge_array
    for bits in range(1, 1 << (n - 1)):  # node n-1 pinned to side 0
        side = np.zeros(n, dtype=bool)
        for v in range(n - 1):
            if bits >> v & 1:
                side[v] = True
        value = int(np.sum(side[edges[:, 0]] != side[edges[:, 1]]))
        if value < best_value:
            best_value = value
            best_side = side
    return best_value, best_side


def karger_min_cut(
    graph: Graph,
    rng: np.random.Generator,
    trials: int | None = None,
) -> tuple[int, np.ndarray]:
    """Karger's randomized contraction, repeated to w.h.p. exactness.

    Args:
        graph: connected graph with at least 2 nodes.
        rng: randomness source.
        trials: contraction runs (default ``ceil(n^2 ln n / 2)``-capped
            budget suitable for ``n <= ~100``).

    Returns:
        ``(cut value, membership mask of one side)``.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("min cut needs at least two nodes")
    if trials is None:
        trials = min(4000, int(math.ceil(n * n * math.log(max(2, n)) / 2)))
    edges = graph.edge_array
    best_value = graph.num_edges + 1
    best_side = None
    for _ in range(trials):
        side = _one_contraction(n, edges, rng)
        value = int(np.sum(side[edges[:, 0]] != side[edges[:, 1]]))
        if value < best_value:
            best_value = value
            best_side = side
    assert best_side is not None
    assert cut_size(graph, best_side) == best_value
    return best_value, best_side


def _one_contraction(
    n: int, edges: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """One run of random contraction down to two super-nodes."""
    parent = np.arange(n)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    remaining = n
    order = rng.permutation(edges.shape[0])
    for eid in order:
        if remaining == 2:
            break
        u, v = find(int(edges[eid, 0])), find(int(edges[eid, 1]))
        if u != v:
            parent[u] = v
            remaining -= 1
    roots = np.fromiter((find(v) for v in range(n)), dtype=np.int64, count=n)
    side_root = roots[0]
    return roots == side_root
