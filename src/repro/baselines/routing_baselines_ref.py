"""Reference (scalar) store-and-forward scheduler.

This is the original dict-and-deque implementation of
:func:`repro.baselines.routing_baselines.schedule_paths`, retained
verbatim as the semantic oracle for the vectorized scheduler.  The two
implementations are property-tested to produce *identical*
``rounds``/``delivered``/``max_queue``/``total_hops`` on the same seed
(``tests/baselines/test_scheduler_equivalence.py``); any change to the
scheduling discipline must land in both.

The discipline, spelled out (the vectorized version replicates it
packet-for-packet):

* every directed edge (a consecutive node pair of some path) holds a
  FIFO queue and forwards exactly one packet per round;
* packets enter their first queue in an ``rng.permutation`` order;
* each round, the nonempty queues are drained head-first in *dict
  insertion order* (a queue's key is inserted when its first packet
  arrives and dropped once the queue empties at the end of a round),
  and forwarded packets join their next queue in that same order.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..rng import resolve_rng
from .routing_baselines import StoreAndForwardResult

__all__ = ["schedule_paths_ref"]


def schedule_paths_ref(
    paths: list[list[int]],
    rng: np.random.Generator | None = None,
    max_rounds: int = 1_000_000,
    seed: int | None = None,
) -> StoreAndForwardResult:
    """Scalar store-and-forward scheduling of explicit packet paths.

    Semantics are the contract; see the module docstring.  Consumes
    exactly one ``rng.permutation`` call, like the vectorized version.
    """
    rng = resolve_rng(rng, seed)
    total_hops = sum(len(path) - 1 for path in paths)
    # Queue per directed edge (u -> v), keyed by (u, v).
    queues: dict[tuple[int, int], deque] = {}
    position = [0] * len(paths)  # index into each packet's path
    order = rng.permutation(len(paths))
    pending = 0
    for pid in order:
        path = paths[pid]
        if len(path) > 1:
            queues.setdefault((path[0], path[1]), deque()).append(pid)
            pending += 1
    rounds = 0
    max_queue = max((len(q) for q in queues.values()), default=0)
    while pending:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("store-and-forward exceeded the round budget")
        moves: list[tuple[tuple[int, int], int]] = []
        for key, queue in queues.items():
            if queue:
                moves.append((key, queue.popleft()))
        for (u, v), pid in moves:
            position[pid] += 1
            path = paths[pid]
            if position[pid] == len(path) - 1:
                pending -= 1
            else:
                nxt = (path[position[pid]], path[position[pid] + 1])
                queues.setdefault(nxt, deque()).append(pid)
        max_queue = max(
            max_queue, max((len(q) for q in queues.values()), default=0)
        )
        queues = {key: q for key, q in queues.items() if q}
    return StoreAndForwardResult(
        rounds=rounds,
        delivered=True,
        max_queue=max_queue,
        total_hops=total_hops,
    )
