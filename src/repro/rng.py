"""Seeded-randomness helpers: every generator traces back to a seed.

The experiments are reproducible only if no code path ever touches an
unseeded RNG.  ``reprolint`` (rule R001) forbids the old
``rng or np.random.default_rng()`` fallback; this module provides the
replacement: an explicit resolution step whose no-argument default is a
*fixed* seed, so a caller that passes nothing still gets a deterministic
stream — and a caller that wants a distinct stream passes ``seed=``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["DEFAULT_SEED", "resolve_rng"]

#: Seed used when a caller supplies neither ``rng`` nor ``seed``.
DEFAULT_SEED = 0


def resolve_rng(
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.random.Generator:
    """Return ``rng`` if given, else a generator seeded with ``seed``.

    Args:
        rng: an already-seeded generator; returned unchanged when given
            (``seed`` is then ignored).
        seed: seed for a fresh generator (default :data:`DEFAULT_SEED`).

    Returns:
        A :class:`numpy.random.Generator` that is deterministic for a
        fixed ``(rng, seed)`` choice — never an OS-entropy stream.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(
        DEFAULT_SEED if seed is None else seed
    )
