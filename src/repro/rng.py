"""Seeded-randomness helpers: every generator traces back to a seed.

The experiments are reproducible only if no code path ever touches an
unseeded RNG.  ``reprolint`` (rule R001) forbids the old
``rng or np.random.default_rng()`` fallback; this module provides the
replacement: an explicit resolution step whose no-argument default is a
*fixed* seed, so a caller that passes nothing still gets a deterministic
stream — and a caller that wants a distinct stream passes ``seed=``.

This module is also the single place where *composite* seed material may
be turned into a generator.  Rule R006 forbids the historical ad-hoc
``np.random.default_rng((seed, k))`` tuple spelling everywhere except
here and :mod:`repro.runtime`; call sites use :func:`derive_rng` (for
integer sub-stream labels, e.g. one stream per simulated node) or
:meth:`repro.runtime.RunContext.stream` (for named streams).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np

__all__ = ["DEFAULT_SEED", "derive_rng", "resolve_rng", "stream_entropy"]

#: Seed used when a caller supplies neither ``rng`` nor ``seed``.
DEFAULT_SEED = 0


def derive_rng(*parts: int) -> np.random.Generator:
    """A generator seeded from a tuple of integer labels.

    ``derive_rng(seed, k)`` is bit-for-bit identical to the historical
    ``np.random.default_rng((seed, k))`` spelling (numpy's
    ``SeedSequence`` consumes the tuple as entropy), so converting a call
    site does not change its stream.  Use it for structured sub-streams
    with integer labels — one stream per simulated node, per trial, per
    problem size.  For *named* streams, use
    :meth:`repro.runtime.RunContext.stream` instead.
    """
    return np.random.default_rng(tuple(int(part) for part in parts))


def stream_entropy(name: str) -> int:
    """Stable 64-bit entropy word for a named RNG stream.

    Hash-based (SHA-256 prefix), so it is independent of
    ``PYTHONHASHSEED`` and stable across processes, platforms, and
    releases — renaming a stream changes it, nothing else does.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def resolve_rng(
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.random.Generator:
    """Return ``rng`` if given, else a generator seeded with ``seed``.

    Args:
        rng: an already-seeded generator; returned unchanged when given
            (``seed`` is then ignored).
        seed: seed for a fresh generator (default :data:`DEFAULT_SEED`).

    Returns:
        A :class:`numpy.random.Generator` that is deterministic for a
        fixed ``(rng, seed)`` choice — never an OS-entropy stream.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(
        DEFAULT_SEED if seed is None else seed
    )
