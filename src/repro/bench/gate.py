"""The uniform regression gate: one comparison policy for every suite.

Before PR 9 each committed baseline grew its own ad-hoc check —
``bench_baseline.py --check`` validated schema only, and
``perf_tripwire.py`` hard-coded one wall budget.  The gate replaces all
of them with a single rule set, applied identically to every suite:

* **exact columns** — seed-deterministic values (``rounds`` and any
  listed deterministic metrics) must match the committed baseline
  bit-for-bit.  Rounds are the paper's currency; they may only change
  when a PR *means* to change them, in which case the baseline is
  refreshed in the same commit.
* **coverage** — every baseline row must appear in the current run and
  vice versa, keyed by ``(kernel, n, seed)``.  A silently vanishing
  kernel is a regression, not a cleanup.
* **wall budgets** — optional absolute ceilings on machine-dependent
  wall time per kernel (the old tripwire, generalized).  Budgets are
  the only wall-clock comparison; everything else ignores ``wall_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Number
from typing import Any, Mapping

__all__ = ["GatePolicy", "GateResult", "compare_records"]

#: Relative tolerance for float metric equality (serialization jitter
#: only — deterministic metrics are computed, not measured).
_FLOAT_RTOL = 1e-9


@dataclass(frozen=True)
class GatePolicy:
    """Which parts of a suite's record the gate compares.

    Attributes:
        exact: row columns compared exactly against the baseline.
        exact_metrics: keys under ``row["metrics"]`` compared exactly
            (missing on both sides is fine; missing on one side fails).
        wall_budget_s: absolute wall-second ceilings by kernel name,
            applied to the *current* run only.
    """

    exact: tuple = ("rounds",)
    exact_metrics: tuple = ()
    wall_budget_s: Mapping[str, float] = field(default_factory=dict)


@dataclass
class GateResult:
    """Outcome of one baseline comparison."""

    suite: str
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        if self.ok:
            return f"{self.suite}: OK"
        lines = [f"{self.suite}: {len(self.failures)} regression(s)"]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


def _row_key(row: Mapping[str, Any]) -> tuple:
    return (row["kernel"], row["n"], row["seed"])


def _values_equal(baseline: Any, current: Any) -> bool:
    if isinstance(baseline, Number) and isinstance(current, Number):
        base = float(baseline)
        cur = float(current)
        if base == cur:
            return True
        scale = max(abs(base), abs(cur), 1.0)
        return abs(base - cur) <= _FLOAT_RTOL * scale
    return bool(baseline == current)


def compare_records(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    policy: GatePolicy,
) -> GateResult:
    """Gate ``current`` against the committed ``baseline`` record."""
    result = GateResult(suite=str(current.get("suite", "?")))
    if baseline.get("suite") != current.get("suite"):
        result.failures.append(
            f"suite mismatch: baseline {baseline.get('suite')!r} vs "
            f"current {current.get('suite')!r}"
        )
    base_rows = {_row_key(row): row for row in baseline["rows"]}
    cur_rows = {_row_key(row): row for row in current["rows"]}

    for key in sorted(base_rows):
        if key not in cur_rows:
            result.failures.append(
                f"row {key} present in baseline but missing from the "
                "current run"
            )
    for key in sorted(cur_rows):
        if key not in base_rows:
            result.failures.append(
                f"row {key} not in the baseline — refresh the committed "
                "record if the new row is intentional"
            )

    for key in sorted(set(base_rows) & set(cur_rows)):
        base = base_rows[key]
        cur = cur_rows[key]
        for column in policy.exact:
            if not _values_equal(base[column], cur[column]):
                result.failures.append(
                    f"row {key}: {column} drifted from baseline "
                    f"{base[column]!r} to {cur[column]!r}"
                )
        if policy.exact_metrics:
            base_metrics = base.get("metrics", {})
            cur_metrics = cur.get("metrics", {})
            for metric in policy.exact_metrics:
                in_base = metric in base_metrics
                in_cur = metric in cur_metrics
                if not in_base and not in_cur:
                    continue
                if in_base != in_cur:
                    side = "baseline" if in_base else "current run"
                    result.failures.append(
                        f"row {key}: metric {metric!r} only present in "
                        f"the {side}"
                    )
                    continue
                if not _values_equal(
                    base_metrics[metric], cur_metrics[metric]
                ):
                    result.failures.append(
                        f"row {key}: metric {metric!r} drifted from "
                        f"baseline {base_metrics[metric]!r} to "
                        f"{cur_metrics[metric]!r}"
                    )

    for key in sorted(cur_rows):
        kernel = key[0]
        budget = policy.wall_budget_s.get(kernel)
        if budget is not None and cur_rows[key]["wall_s"] > budget:
            result.failures.append(
                f"row {key}: wall_s {cur_rows[key]['wall_s']:.3f}s "
                f"exceeds the {budget:.3f}s budget"
            )
    return result
