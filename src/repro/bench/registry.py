"""The declarative benchmark registry: every suite behind one front door.

Each :class:`Suite` pins a runner (graph family, sizes, seeds, scenario,
score extractors), the :class:`~repro.bench.gate.GatePolicy` its
committed baseline is compared under, and where that baseline lives —
``benchmarks/results/<suite>.json`` for the full tier and
``benchmarks/results/<suite>.quick.json`` for the quick tier CI gates
against.  ``repro bench`` (and the ``scripts/bench_baseline.py`` /
``scripts/perf_tripwire.py`` deprecation shims) dispatch purely through
this table, so adding a benchmark means adding a registry entry — not a
new script, flag, or tripwire.

Suites:

* the five historical kernel suites (``kernels``, ``faults``,
  ``recovery``, ``engine``, ``serve``) wrapping
  :mod:`repro.analysis.perf`;
* ``tripwire`` — the native-build wall-budget canary (the old
  ``perf_tripwire.py``), same workload in both tiers;
* ``serve-soak`` — the PR 9 workload engine: a sustained multi-epoch
  open-loop run with concurrent churn + wire faults against one warm
  session, in both serving modes, plus the throughput-vs-fault-rate
  curve;
* ``load-curve`` — throughput and sojourn latency vs. offered load;
* ``chaos`` — the PR 10 resilience gate: a seeded kill/corrupt/truncate
  campaign over a journaled session (recovery must keep served rounds
  bit-identical), a governed burst (deadlines + admission), and
  mid-stream fault windows under a retry budget.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Optional, Sequence

from ..analysis import perf
from ..graphs import random_regular
from ..rng import derive_rng
from ..runtime.chaos import ChaosSpec
from ..runtime.resilience import ResiliencePolicy
from ..workloads import fault_rate_curve, get_scenario, run_workload
from ..workloads.engine import WorkloadReport
from .gate import GatePolicy, GateResult, compare_records
from .schema import load_record, make_record

__all__ = [
    "SUITES",
    "Suite",
    "baseline_path",
    "check_suite",
    "default_results_dir",
    "get_suite",
    "run_suite",
    "tripwire_measurement",
]

#: Where committed baselines live, relative to the repo root.
RESULTS_DIR = os.path.join("benchmarks", "results")

#: The native-build tripwire budget: 20% of the pre-vectorization 27 s.
TRIPWIRE_BUDGET_S = 5.4

#: Deterministic workload metrics the gate compares exactly (wall-clock
#: metrics are reported but never gated).
_WORKLOAD_EXACT_METRICS = (
    "requests",
    "served",
    "errors",
    "updates",
    "rebuilds",
    "total_rounds",
    "rounds_p50",
    "rounds_p95",
    "rounds_p99",
    "fault_rate",
    "offered_rate",
    "scenario",
    "mode",
)


@dataclass(frozen=True)
class Suite:
    """One registry entry.

    Attributes:
        name: registry key (the ``repro bench`` argument).
        title: one-line human description.
        runner: ``(seed, quick) -> serialized rows`` (dicts in the
            unified row shape).
        gate: the comparison policy for this suite's baselines.
        legacy_source: the pre-PR-9 artifact this suite's full-tier
            baseline was migrated from, if any.
    """

    name: str
    title: str
    runner: Callable[[int, bool], list[dict]]
    gate: GatePolicy = GatePolicy()
    legacy_source: Optional[str] = None


def _perf_runner(
    suite_fn: Callable[..., list],
) -> Callable[[int, bool], list[dict]]:
    def run(seed: int, quick: bool) -> list[dict]:
        return [asdict(row) for row in suite_fn(seed=seed, quick=quick)]

    return run


def tripwire_measurement(seed: int = 0, n: int = 256) -> dict:
    """One native-build row at the tripwire's pinned size.

    The same G0 + level-1 workload :func:`perf.run_bench_suite` times,
    but always at ``n`` regardless of tier — the budget canary must run
    the size the budget was pinned for.
    """
    from ..congest.native import build_native_g0, build_native_level1
    from ..graphs import mixing_time

    graph = random_regular(n, 6, derive_rng(seed, n))
    tau = mixing_time(graph)

    def build():
        g0 = build_native_g0(
            graph,
            walks_per_vnode=12,
            degree=6,
            length=2 * tau,
            seed=seed + n,
        )
        level1 = build_native_level1(
            g0, beta=3, degree=4, length=8, seed=seed + n + 1
        )
        return g0, level1

    wall, (g0, level1) = perf._timed(build, repeats=1)
    return {
        "kernel": "native_build",
        "n": n,
        "seed": seed,
        "wall_s": wall,
        "rounds": g0.build_rounds + level1.build_rounds,
    }


def _tripwire_runner(seed: int, quick: bool) -> list[dict]:
    del quick  # the canary runs the pinned size in both tiers
    return [tripwire_measurement(seed=seed)]


def _workload_row(kernel: str, report: WorkloadReport) -> dict:
    summary = report.summary()
    metrics = {
        key: value
        for key, value in summary.items()
        if key not in ("n", "seed")
    }
    return {
        "kernel": kernel,
        "n": report.n,
        "seed": report.seed,
        "wall_s": round(report.total_wall_s, 6),
        "rounds": float(report.total_rounds),
        "metrics": metrics,
    }


def _soak_runner(seed: int, quick: bool) -> list[dict]:
    """The workload-engine acceptance run (see ``docs/workloads.md``).

    One sustained multi-epoch soak (Zipf keys, diurnal load, periodic
    churn, ``drop=0.01`` wire faults) against a warm session through
    both serving surfaces, then the throughput-vs-fault-rate curve over
    the same deterministic request stream.
    """
    n = 32 if quick else 64
    graph = random_regular(n, 6, derive_rng(seed, n))
    scenario = get_scenario("soak").scaled(quick=quick)
    rows = []
    for mode in ("session", "jsonl"):
        report = run_workload(graph, scenario, seed=seed, mode=mode)
        rows.append(_workload_row(f"workload_soak_{mode}", report))
    rates = (0.0, 0.02) if quick else (0.0, 0.01, 0.05)
    for point in fault_rate_curve(graph, scenario, rates, seed=seed):
        rate = point.pop("fault_rate")
        metrics = {
            key: value
            for key, value in point.items()
            if key not in ("n", "seed")
        }
        metrics["fault_rate"] = rate
        rows.append(
            {
                "kernel": f"workload_soak_drop{rate:g}",
                "n": n,
                "seed": seed,
                "wall_s": round(float(point["total_wall_s"]), 6),
                "rounds": float(point["total_rounds"]),
                "metrics": metrics,
            }
        )
    return rows


def _load_curve_runner(seed: int, quick: bool) -> list[dict]:
    """Throughput / sojourn vs. offered load on the Zipf scenario.

    The key stream is independent of the arrival stream, so every point
    routes the *same* demands — the curve isolates the load knob, and
    the rounds columns are identical across points by construction.
    """
    from ..workloads import offered_load_curve

    n = 32 if quick else 64
    graph = random_regular(n, 6, derive_rng(seed, n))
    scenario = get_scenario("zipf").scaled(quick=quick)
    rates = (100.0, 1600.0) if quick else (50.0, 200.0, 800.0, 3200.0)
    rows = []
    for point in offered_load_curve(graph, scenario, rates, seed=seed):
        rate = point.pop("offered_rate")
        metrics = {
            key: value
            for key, value in point.items()
            if key not in ("n", "seed")
        }
        metrics["offered_rate"] = rate
        rows.append(
            {
                "kernel": f"workload_load_r{rate:g}",
                "n": n,
                "seed": seed,
                "wall_s": round(float(point["total_wall_s"]), 6),
                "rounds": float(point["total_rounds"]),
                "metrics": metrics,
            }
        )
    return rows


_WORKLOAD_GATE = GatePolicy(
    exact=("rounds",), exact_metrics=_WORKLOAD_EXACT_METRICS
)

#: The chaos suite additionally gates the governed/chaos counters —
#: all seed-deterministic under the virtual clock.  Time-to-recover
#: percentiles (``recover_s_p*``) are wall-clock: reported, never
#: gated.
_CHAOS_EXACT_METRICS = _WORKLOAD_EXACT_METRICS + (
    "goodput",
    "deadline_miss",
    "shed",
    "circuit_open",
    "timeouts",
    "retries",
    "breaker_trips",
    "kills",
    "recoveries",
    "corruptions",
    "truncations",
    "fault_windows",
)

_CHAOS_GATE = GatePolicy(
    exact=("rounds",), exact_metrics=_CHAOS_EXACT_METRICS
)


def _chaos_runner(seed: int, quick: bool) -> list[dict]:
    """The resilience acceptance run (see ``docs/robustness.md``).

    Three rows, all seed-deterministic:

    * ``chaos_lifecycle`` — churn traffic over a journaled session
      while a seeded campaign kills the process, corrupts the store
      entry, and truncates the journal tail; recovery must keep every
      served round bit-identical (gated via ``rounds``/``total_rounds``
      equality with the committed baseline, which matches a clean run).
    * ``chaos_burst_governed`` — the burst scenario under deadlines +
      admission control; shed/deadline-miss/goodput counts are exact.
    * ``chaos_fault_windows`` — mid-stream drop windows against a
      retry budget; retries and timeouts are exact.
    """
    n = 32 if quick else 64
    graph = random_regular(n, 6, derive_rng(seed, n))
    rows = []

    lifecycle_policy = ResiliencePolicy(
        retry_budget=2, max_inflight=16, round_time_s=1e-6
    )
    lifecycle_chaos = ChaosSpec(
        kill_rate=0.15,
        max_kills=2,
        corrupt_store=1.0,
        truncate_journal=1.0,
    )
    report = run_workload(
        graph,
        get_scenario("churn").scaled(quick=quick),
        seed=seed,
        policy=lifecycle_policy,
        chaos=lifecycle_chaos,
    )
    rows.append(_workload_row("chaos_lifecycle", report))

    burst_policy = ResiliencePolicy(
        deadline_rounds=2e6,
        max_inflight=4,
        round_time_s=1e-6,
    )
    report = run_workload(
        graph,
        get_scenario("burst").scaled(quick=quick),
        seed=seed,
        policy=burst_policy,
    )
    rows.append(_workload_row("chaos_burst_governed", report))

    window_policy = ResiliencePolicy(retry_budget=2, round_time_s=1e-6)
    window_chaos = ChaosSpec(
        fault_rate=0.2, fault_spec="drop=0.3", fault_window=3
    )
    report = run_workload(
        graph,
        get_scenario("steady").scaled(quick=quick),
        seed=seed,
        policy=window_policy,
        chaos=window_chaos,
    )
    rows.append(_workload_row("chaos_fault_windows", report))
    return rows

SUITES: dict[str, Suite] = {
    suite.name: suite
    for suite in (
        Suite(
            name="kernels",
            title="pinned kernel suite (walks, scheduler, simulator, "
            "native build, end-to-end)",
            runner=_perf_runner(perf.run_bench_suite),
            legacy_source="BENCH_PR2.json",
        ),
        Suite(
            name="faults",
            title="fault-injection suite (clean vs drop=0.01 reliable "
            "forwarding)",
            runner=_perf_runner(perf.run_fault_suite),
            legacy_source="BENCH_PR4.json",
        ),
        Suite(
            name="recovery",
            title="self-healing suite (detection, parking, re-homing, "
            "portal failover)",
            runner=_perf_runner(perf.run_recovery_suite),
            legacy_source="BENCH_PR5.json",
        ),
        Suite(
            name="engine",
            title="vectorized-engine suite (scalar-vs-array walks, "
            "large native builds, sharded delivery)",
            runner=_perf_runner(perf.run_pr7_suite),
            legacy_source="BENCH_PR7.json",
        ),
        Suite(
            name="serve",
            title="session-layer suite (cold vs warm serving, build, "
            "cache-hit re-open)",
            runner=_perf_runner(perf.run_serve_suite),
            legacy_source="BENCH_PR8.json",
        ),
        Suite(
            name="tripwire",
            title="native-build wall-budget canary (n=256, "
            f"{TRIPWIRE_BUDGET_S}s)",
            runner=_tripwire_runner,
            gate=GatePolicy(
                exact=("rounds",),
                wall_budget_s={"native_build": TRIPWIRE_BUDGET_S},
            ),
        ),
        Suite(
            name="serve-soak",
            title="sustained open-loop soak with churn+faults over a "
            "warm session, both serving modes, fault-rate curve",
            runner=_soak_runner,
            gate=_WORKLOAD_GATE,
        ),
        Suite(
            name="load-curve",
            title="throughput and sojourn latency vs offered load "
            "(open-loop hockey stick)",
            runner=_load_curve_runner,
            gate=_WORKLOAD_GATE,
        ),
        Suite(
            name="chaos",
            title="resilience gate: kill/corrupt/truncate recovery, "
            "governed burst, mid-stream fault windows",
            runner=_chaos_runner,
            gate=_CHAOS_GATE,
        ),
    )
}


def get_suite(name: str) -> Suite:
    """The registry entry for ``name``, or ``ValueError`` listing all."""
    try:
        return SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {name!r}; choose from "
            f"{tuple(sorted(SUITES))}"
        ) from None


def default_results_dir(root: Optional[str] = None) -> str:
    """``<root>/benchmarks/results`` (root defaults to the cwd)."""
    return os.path.join(root or os.getcwd(), RESULTS_DIR)


def baseline_path(
    name: str, *, quick: bool, results_dir: Optional[str] = None
) -> str:
    """Where the committed baseline record for ``name`` lives."""
    get_suite(name)
    directory = (
        results_dir
        if results_dir is not None
        else default_results_dir()
    )
    stem = f"{name}.quick.json" if quick else f"{name}.json"
    return os.path.join(directory, stem)


def run_suite(
    name: str, *, seed: int = 0, quick: bool = False
) -> dict[str, Any]:
    """Run one suite; return its unified v1 record."""
    suite = get_suite(name)
    rows = suite.runner(seed, quick)
    return make_record(
        name,
        rows,
        seed=seed,
        quick=quick,
        meta={"title": suite.title},
    )


def check_suite(
    name: str,
    *,
    seed: int = 0,
    results_dir: Optional[str] = None,
) -> GateResult:
    """Run ``name``'s quick tier and gate it against its baseline.

    A missing baseline is itself a failure (the gate cannot vouch for a
    suite nothing was committed for) — refresh with
    ``repro bench <suite> --quick``.
    """
    suite = get_suite(name)
    path = baseline_path(name, quick=True, results_dir=results_dir)
    if not os.path.exists(path):
        result = GateResult(suite=name)
        result.failures.append(
            f"no committed baseline at {path} — run "
            f"`repro bench {name} --quick` and commit the record"
        )
        return result
    baseline = load_record(path, suite=name)
    current = run_suite(name, seed=seed, quick=True)
    return compare_records(baseline, current, suite.gate)
