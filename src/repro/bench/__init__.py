"""Unified benchmark registry, record schema, and regression gate.

One front door for every benchmark in the repo:

* :mod:`repro.bench.schema` — the versioned ``repro-bench/v1`` JSON
  record every suite writes (and a loader that still reads the legacy
  ``BENCH_PR*.json`` bare-list format);
* :mod:`repro.bench.gate` — the uniform regression gate: exact
  comparison of seed-deterministic columns, row coverage, and absolute
  wall budgets;
* :mod:`repro.bench.registry` — the declarative suite table behind
  ``repro bench SUITE [--check] [--quick]``.

Committed baselines live under ``benchmarks/results/`` — ``<suite>.json``
for the full tier, ``<suite>.quick.json`` for the quick tier CI gates
against.  See ``docs/performance.md`` and ``docs/workloads.md``.
"""

from .gate import GatePolicy, GateResult, compare_records
from .registry import (
    SUITES,
    TRIPWIRE_BUDGET_S,
    Suite,
    baseline_path,
    check_suite,
    default_results_dir,
    get_suite,
    run_suite,
    tripwire_measurement,
)
from .schema import (
    ROW_KEYS,
    SCHEMA_VERSION,
    load_record,
    make_record,
    validate_record,
    write_record,
)

__all__ = [
    "ROW_KEYS",
    "SCHEMA_VERSION",
    "SUITES",
    "TRIPWIRE_BUDGET_S",
    "GatePolicy",
    "GateResult",
    "Suite",
    "baseline_path",
    "check_suite",
    "compare_records",
    "default_results_dir",
    "get_suite",
    "load_record",
    "make_record",
    "run_suite",
    "tripwire_measurement",
    "validate_record",
    "write_record",
]
