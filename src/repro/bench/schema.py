"""The unified benchmark record: one versioned JSON schema for all suites.

Before PR 9 every benchmark PR invented its own committed artifact —
``BENCH_PR2.json`` through ``BENCH_PR8.json``, each a bare list of rows
with no self-description.  This module defines the one record shape
every suite now writes:

.. code-block:: json

    {
      "schema": "repro-bench/v1",
      "suite": "kernels",
      "seed": 0,
      "quick": false,
      "rows": [
        {"kernel": "walk_engine", "n": 1024, "seed": 0,
         "wall_s": 0.047, "rounds": 100,
         "metrics": {"rounds_p50": 100.0}}
      ],
      "meta": {"title": "..."}
    }

Rows keep the historical five-column core (``kernel``, ``n``, ``seed``,
``wall_s``, ``rounds``) so every legacy consumer keeps working, plus an
optional ``metrics`` mapping for suites that report more than a single
scalar (percentiles, error counts, curve coordinates).  ``rounds`` and
every ``metrics`` value except ``wall``-prefixed ones are expected to be
seed-deterministic — that is what the regression gate compares exactly.

:func:`load_record` reads both formats: a bare list (the legacy files)
is wrapped into a v1 record with ``meta.legacy = true``.  New code only
ever *writes* the new schema.
"""

from __future__ import annotations

import json
from numbers import Number
from typing import Any, Mapping, Optional, Sequence

__all__ = [
    "ROW_KEYS",
    "SCHEMA_VERSION",
    "load_record",
    "make_record",
    "validate_record",
    "write_record",
]

#: The current record schema identifier.
SCHEMA_VERSION = "repro-bench/v1"

#: The required row columns, in serialization order.
ROW_KEYS = ("kernel", "n", "seed", "wall_s", "rounds")


def make_record(
    suite: str,
    rows: Sequence[Mapping[str, Any]],
    *,
    seed: int = 0,
    quick: bool = False,
    meta: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble (and validate) one v1 record from serialized rows."""
    record = {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "seed": int(seed),
        "quick": bool(quick),
        "rows": [_normalize_row(row) for row in rows],
        "meta": dict(meta) if meta else {},
    }
    validate_record(record)
    return record


def _normalize_row(row: Mapping[str, Any]) -> dict[str, Any]:
    """Project a row onto the schema's column order."""
    missing = [key for key in ROW_KEYS if key not in row]
    if missing:
        raise ValueError(
            f"bench row is missing the columns {missing}; rows need "
            f"exactly {ROW_KEYS} (plus optional 'metrics')"
        )
    out: dict[str, Any] = {key: row[key] for key in ROW_KEYS}
    metrics = row.get("metrics")
    if metrics:
        out["metrics"] = {
            str(key): metrics[key] for key in sorted(metrics)
        }
    return out


def validate_record(payload: object) -> None:
    """Assert ``payload`` is a well-formed v1 record.

    Raises ``ValueError`` describing the first violation.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"bench record must be a dict, got {type(payload).__name__}"
        )
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"bench record schema must be {SCHEMA_VERSION!r}, "
            f"got {payload.get('schema')!r}"
        )
    suite = payload.get("suite")
    if not isinstance(suite, str) or not suite:
        raise ValueError("bench record needs a non-empty suite name")
    if not isinstance(payload.get("seed"), int):
        raise ValueError("bench record seed must be an int")
    if not isinstance(payload.get("quick"), bool):
        raise ValueError("bench record quick must be a bool")
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ValueError("bench record rows must be a non-empty list")
    for index, row in enumerate(rows):
        _validate_row(index, row)
    if not isinstance(payload.get("meta"), dict):
        raise ValueError("bench record meta must be a dict")


def _validate_row(index: int, row: object) -> None:
    if not isinstance(row, dict):
        raise ValueError(f"row {index} must be a dict, got {row!r}")
    allowed = ROW_KEYS + ("metrics",)
    core = tuple(key for key in row if key != "metrics")
    if core != ROW_KEYS:
        raise ValueError(
            f"row {index} must have exactly the columns {ROW_KEYS} "
            f"(plus optional 'metrics'), got {tuple(row)!r}"
        )
    unknown = sorted(set(row) - set(allowed))
    if unknown:
        raise ValueError(f"row {index} has unknown keys {unknown}")
    if not isinstance(row["kernel"], str) or not row["kernel"]:
        raise ValueError(f"row {index}: kernel must be a non-empty str")
    for key in ("n", "seed"):
        if not isinstance(row[key], int) or isinstance(row[key], bool):
            raise ValueError(f"row {index}: {key} must be an int")
    if not isinstance(row["wall_s"], Number) or row["wall_s"] < 0:
        raise ValueError(f"row {index}: wall_s must be a number >= 0")
    if not isinstance(row["rounds"], Number) or row["rounds"] < 0:
        raise ValueError(f"row {index}: rounds must be a number >= 0")
    if row["n"] <= 0:
        raise ValueError(f"row {index}: n must be > 0")
    metrics = row.get("metrics")
    if metrics is None:
        return
    if not isinstance(metrics, dict):
        raise ValueError(f"row {index}: metrics must be a dict")
    for key, value in metrics.items():
        if not isinstance(key, str):
            raise ValueError(f"row {index}: metric keys must be str")
        if not isinstance(value, (Number, str)) or isinstance(value, bool):
            raise ValueError(
                f"row {index}: metric {key!r} must be a number or str, "
                f"got {value!r}"
            )


def write_record(record: Mapping[str, Any], path: str) -> None:
    """Serialize a validated record to ``path`` as diffable JSON."""
    validate_record(dict(record))
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")


def load_record(
    path: str, *, suite: Optional[str] = None
) -> dict[str, Any]:
    """Read a bench file in either format; return a v1 record.

    A bare list of rows (the pre-PR-9 ``BENCH_PR*.json`` format) is
    wrapped into a v1 record: the suite name comes from ``suite`` (or
    the filename stem), the seed from the rows, and ``meta.legacy`` is
    set so consumers can tell a migrated record from a native one.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        seeds = {
            row.get("seed")
            for row in payload
            if isinstance(row, dict)
        }
        seed = seeds.pop() if len(seeds) == 1 else 0
        name = suite
        if name is None:
            stem = path.rsplit("/", 1)[-1]
            name = stem.split(".", 1)[0]
        return make_record(
            name,
            payload,
            seed=int(seed) if isinstance(seed, int) else 0,
            quick=False,
            meta={"legacy": True, "source": path},
        )
    validate_record(payload)
    return payload
