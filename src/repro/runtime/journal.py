"""Crash-safe write-ahead journal for live sessions.

A :class:`~repro.runtime.Session` is warm state: applied churn updates
and the served-request high-water mark live only in process memory (the
content-addressed store persists *snapshots*, not the request stream).
A crashed ``repro serve`` therefore used to lose everything since the
last snapshot.  The :class:`Journal` closes that gap with the classic
database recipe, sized for this codebase:

* **append-only JSONL** — one JSON object per line, human-inspectable;
* **write-ahead** — an update is journaled *before* it is applied, so
  the journal is always a superset of the applied state;
* **fsync'd appends** — every append is flushed and fsync'd before the
  caller proceeds, so an acknowledged write survives the process;
* **torn-tail tolerance** — a crash mid-append leaves a truncated last
  line; the reader stops at the first malformed line and discards the
  tail, never refusing the journal.

The line vocabulary::

    {"journal": 1, "fingerprint": ..., "seed": ..., "backend": ...}
    {"update": {"edges_added": [...], "edges_removed": [...],
                "nodes_down": [...]}, "record": <input record index>}
    {"served": <session.served>, "record": <records consumed>}

An update's ``record`` stamp (0 when the update came through the Python
API rather than a record stream) makes replay *exactly-once*: if a torn
tail loses the high-water mark that followed an update but keeps the
update line itself, recovery still advances the resume point past the
update's input record — replaying the update **and** re-consuming its
record would double-apply it.

Recovery (:meth:`repro.runtime.Session.recover`) = warm snapshot (store
hit or rebuild) + deterministic replay of the journaled updates.  Replay
is bit-identical because update ``k`` repairs from the
``serve-update-k`` fresh stream — a pure function of (seed, k), not of
when or in which process the update ran.  A torn tail can only lose the
*latest* entries, so recovery converges to a prefix of the dead
session's state and the serve loop simply re-serves from the journaled
high-water mark (at-least-once, with deterministic responses).
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional, TextIO

__all__ = ["JOURNAL_VERSION", "Journal", "read_journal"]

#: Format version stamped into every journal header line.
JOURNAL_VERSION = 1


JournalState = tuple[
    Optional[dict[str, Any]], list[dict[str, Any]], list[int], int, int
]


def read_journal(path: str) -> JournalState:
    """Parse a journal file, tolerating a torn tail.

    Returns ``(header, updates, update_records, served_high_water,
    record_high_water)``.  The header is ``None`` for an empty/new
    file; ``update_records[i]`` is the input-record stamp of
    ``updates[i]`` (0 = applied outside a record stream).  Parsing
    stops at the first malformed line (a crash mid-append), discarding
    the tail — a journal is never *invalid*, only shorter than hoped.
    The record high-water mark covers update stamps, so a replayed
    update's input record is never re-consumed (exactly-once).
    """
    header: Optional[dict[str, Any]] = None
    updates: list[dict[str, Any]] = []
    update_records: list[int] = []
    served = 0
    record_mark = 0
    if not os.path.exists(path):
        return header, updates, update_records, served, record_mark
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    for index, line in enumerate(raw.split("\n")):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail: keep the intact prefix
        if not isinstance(entry, dict):
            break
        if index == 0 and "journal" in entry:
            header = entry
        elif "update" in entry:
            updates.append(dict(entry["update"]))
            update_records.append(int(entry.get("record", 0)))
            record_mark = max(record_mark, update_records[-1])
        elif "served" in entry:
            served = int(entry["served"])
            record_mark = max(
                record_mark, int(entry.get("record", record_mark))
            )
        else:
            break  # unknown vocabulary: treat like corruption
    return header, updates, update_records, served, record_mark


class Journal:
    """One session's write-ahead journal, open for appending.

    Opening an existing file replays its intact prefix into
    :attr:`updates` / :attr:`served` / :attr:`record_mark` (and
    truncates a torn tail in place, so the file ends on a line
    boundary); opening a fresh file writes the identity header.  The
    ``identity`` mapping (graph fingerprint, seed, backend) guards
    against replaying a journal onto the wrong session — a mismatch
    raises ``ValueError`` instead of deterministically corrupting it.
    """

    def __init__(
        self,
        path: str,
        *,
        identity: Optional[dict[str, Any]] = None,
    ) -> None:
        self.path = path
        header, updates, update_records, served, record_mark = (
            read_journal(path)
        )
        self.updates = updates
        self.update_records = update_records
        self.served = served
        self.record_mark = record_mark
        if header is not None and identity is not None:
            for key, value in identity.items():
                if key in header and header[key] != value:
                    raise ValueError(
                        f"journal {path!r} was written for a different "
                        f"session ({key}={header[key]!r}, expected "
                        f"{value!r})"
                    )
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Rewrite the intact prefix so a torn tail never precedes new
        # appends; then keep the handle for fsync'd appends.
        intact_lines = self._intact_lines(header, identity)
        self._handle: TextIO = open(path, "w", encoding="utf-8")
        for line in intact_lines:
            self._handle.write(line + "\n")
        self._sync()

    def _intact_lines(
        self,
        header: Optional[dict[str, Any]],
        identity: Optional[dict[str, Any]],
    ) -> list[str]:
        if header is None:
            header = {"journal": JOURNAL_VERSION}
            header.update(identity or {})
        lines = [json.dumps(header, separators=(",", ":"))]
        for update, record in zip(self.updates, self.update_records):
            entry: dict[str, Any] = {"update": update}
            if record:
                entry["record"] = record
            lines.append(json.dumps(entry, separators=(",", ":")))
        if self.served or self.record_mark:
            lines.append(
                json.dumps(
                    {"served": self.served, "record": self.record_mark},
                    separators=(",", ":"),
                )
            )
        return lines

    # -- appends -------------------------------------------------------------

    def append_update(
        self, update: dict[str, Any], *, record: int = 0
    ) -> None:
        """Journal one churn update (write-ahead: call *before* apply).

        ``record`` stamps the input record the update came from so
        replaying it also advances the resume point past that record
        (0 = not part of a record stream).
        """
        self.updates.append(dict(update))
        self.update_records.append(int(record))
        entry: dict[str, Any] = {"update": update}
        if record:
            entry["record"] = int(record)
            self.record_mark = max(self.record_mark, int(record))
        self._append(entry)

    def mark_served(self, served: int, *, record: int) -> None:
        """Advance the high-water mark: ``served`` requests submitted,
        ``record`` input records fully consumed."""
        self.served = int(served)
        self.record_mark = int(record)
        self._append({"served": self.served, "record": self.record_mark})

    def _append(self, entry: dict[str, Any]) -> None:
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._sync()

    def _sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._sync()
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Journal({self.path!r}, updates={len(self.updates)}, "
            f"served={self.served}, record={self.record_mark})"
        )
