"""Crash-safe write-ahead journal for live sessions.

A :class:`~repro.runtime.Session` is warm state: applied churn updates
and the served-request high-water mark live only in process memory (the
content-addressed store persists *snapshots*, not the request stream).
A crashed ``repro serve`` therefore used to lose everything since the
last snapshot.  The :class:`Journal` closes that gap with the classic
database recipe, sized for this codebase:

* **append-only JSONL** — one JSON object per line, human-inspectable;
* **write-ahead** — an update is journaled *before* it is applied, so
  the journal is always a superset of the applied state;
* **fsync'd appends** — every append is flushed and fsync'd before the
  caller proceeds, so an acknowledged write survives the process;
* **torn-tail tolerance** — a crash mid-append leaves a truncated last
  line; the reader stops at the first malformed line and discards the
  tail, never refusing the journal.

The line vocabulary::

    {"journal": 1, "fingerprint": ..., "seed": ..., "backend": ...}
    {"update": {"edges_added": [...], "edges_removed": [...],
                "nodes_down": [...]}, "record": <input record index>}
    {"served": <session.served>, "record": <records consumed>}

An update's ``record`` stamp (0 when the update came through the Python
API rather than a record stream) makes replay *exactly-once*: if a torn
tail loses the high-water mark that followed an update but keeps the
update line itself, recovery still advances the resume point past the
update's input record — replaying the update **and** re-consuming its
record would double-apply it.

Recovery (:meth:`repro.runtime.Session.recover`) = warm snapshot (store
hit or rebuild) + deterministic replay of the journaled updates.  Replay
is bit-identical because update ``k`` repairs from the
``serve-update-k`` fresh stream — a pure function of (seed, k), not of
when or in which process the update ran.  A torn tail can only lose the
*latest* entries, so recovery converges to a prefix of the dead
session's state and the serve loop simply re-serves from the journaled
high-water mark (at-least-once, with deterministic responses).
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional, TextIO

__all__ = ["JOURNAL_VERSION", "Journal", "read_journal"]

#: Format version stamped into every journal header line.
JOURNAL_VERSION = 1


JournalState = tuple[
    Optional[dict[str, Any]], list[dict[str, Any]], list[int], int, int
]


def _fsync_directory(directory: str) -> None:
    """Make a directory entry durable (POSIX: fsync the directory fd).

    Creating or renaming a file only becomes crash-durable once its
    *directory* is synced; platforms that refuse directory fds (e.g.
    Windows) make the rename durable on their own.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


def _scan_lines(lines: list[str]) -> tuple[JournalState, int]:
    """Parse decoded journal lines up to the first malformed one.

    Returns ``(state, intact)`` where ``state`` is the
    :data:`JournalState` tuple and ``intact`` counts the leading lines
    that parsed cleanly (blank lines included) — everything past that
    is a torn tail.
    """
    header: Optional[dict[str, Any]] = None
    updates: list[dict[str, Any]] = []
    update_records: list[int] = []
    served = 0
    record_mark = 0
    intact = 0
    first = True
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            intact = index + 1
            continue
        try:
            entry = json.loads(stripped)
        except json.JSONDecodeError:
            break  # torn tail: keep the intact prefix
        if not isinstance(entry, dict):
            break
        if first and "journal" in entry:
            header = entry
        elif "update" in entry:
            updates.append(dict(entry["update"]))
            update_records.append(int(entry.get("record", 0)))
            record_mark = max(record_mark, update_records[-1])
        elif "served" in entry:
            served = int(entry["served"])
            record_mark = max(
                record_mark, int(entry.get("record", record_mark))
            )
        else:
            break  # unknown vocabulary: treat like corruption
        first = False
        intact = index + 1
    state = (header, updates, update_records, served, record_mark)
    return state, intact


def read_journal(path: str) -> JournalState:
    """Parse a journal file, tolerating a torn tail.

    Returns ``(header, updates, update_records, served_high_water,
    record_high_water)``.  The header is ``None`` for an empty/new
    file; ``update_records[i]`` is the input-record stamp of
    ``updates[i]`` (0 = applied outside a record stream).  Parsing
    stops at the first malformed line (a crash mid-append), discarding
    the tail — a journal is never *invalid*, only shorter than hoped.
    The record high-water mark covers update stamps, so a replayed
    update's input record is never re-consumed (exactly-once).
    """
    if not os.path.exists(path):
        return None, [], [], 0, 0
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    state, _ = _scan_lines(raw.split("\n"))
    return state


class Journal:
    """One session's write-ahead journal, open for appending.

    Opening an existing file replays its intact prefix into
    :attr:`updates` / :attr:`served` / :attr:`record_mark` and
    truncates only the torn tail in place, so the file ends on a line
    boundary — the intact prefix itself is **never rewritten**: a crash
    at any point during reopen can lose at most the already-torn tail,
    never an acknowledged append.  Opening a fresh file writes the
    identity header (and fsyncs the directory so the new file's entry
    is durable).  The ``identity`` mapping (graph fingerprint, seed,
    backend) guards against replaying a journal onto the wrong
    session — a mismatch raises ``ValueError`` instead of
    deterministically corrupting it.
    """

    def __init__(
        self,
        path: str,
        *,
        identity: Optional[dict[str, Any]] = None,
    ) -> None:
        self.path = path
        raw = b""
        existed = os.path.exists(path)
        if existed:
            with open(path, "rb") as handle:
                raw = handle.read()
        # Scan for the intact prefix in *bytes*, so the torn tail can
        # be truncated at an exact byte boundary.  The final chunk (no
        # trailing newline) may still be a complete entry — a torn
        # write that lost only the newline — in which case it is kept
        # and re-terminated below.
        chunks = raw.split(b"\n")
        tail = chunks.pop()
        lines = [chunk.decode("utf-8", errors="replace") for chunk in chunks]
        if tail:
            lines.append(tail.decode("utf-8", errors="replace"))
        state, intact = _scan_lines(lines)
        header, updates, update_records, served, record_mark = state
        self.updates = updates
        self.update_records = update_records
        self.served = served
        self.record_mark = record_mark
        if header is None and (updates or served or record_mark):
            raise ValueError(
                f"journal {path!r} has entries but no identity header; "
                "refusing to append to a file this session cannot claim"
            )
        if header is not None and identity is not None:
            for key, value in identity.items():
                if key in header and header[key] != value:
                    raise ValueError(
                        f"journal {path!r} was written for a different "
                        f"session ({key}={header[key]!r}, expected "
                        f"{value!r})"
                    )
        if intact <= len(chunks):
            intact_bytes = sum(
                len(chunks[i]) + 1 for i in range(intact)
            )
            unterminated = False
        else:  # the newline-less tail itself parsed as an intact entry
            intact_bytes = len(raw)
            unterminated = True
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        if existed and intact_bytes < len(raw):
            # Drop the torn tail in place; the intact prefix is
            # untouched on disk, so no window exists in which acked
            # appends could be lost.
            with open(path, "r+b") as handle:
                handle.truncate(intact_bytes)
                os.fsync(handle.fileno())
        self._handle: TextIO = open(path, "a", encoding="utf-8")
        if unterminated:
            self._handle.write("\n")
        if header is None:
            fresh = {"journal": JOURNAL_VERSION}
            fresh.update(identity or {})
            self._handle.write(
                json.dumps(fresh, separators=(",", ":")) + "\n"
            )
        self._sync()
        if not existed:
            _fsync_directory(directory)

    # -- appends -------------------------------------------------------------

    def append_update(
        self, update: dict[str, Any], *, record: int = 0
    ) -> None:
        """Journal one churn update (write-ahead: call *before* apply).

        ``record`` stamps the input record the update came from so
        replaying it also advances the resume point past that record
        (0 = not part of a record stream).
        """
        self.updates.append(dict(update))
        self.update_records.append(int(record))
        entry: dict[str, Any] = {"update": update}
        if record:
            entry["record"] = int(record)
            self.record_mark = max(self.record_mark, int(record))
        self._append(entry)

    def mark_served(self, served: int, *, record: int) -> None:
        """Advance the high-water mark: ``served`` requests submitted,
        ``record`` input records fully consumed."""
        self.served = int(served)
        self.record_mark = int(record)
        self._append({"served": self.served, "record": self.record_mark})

    def _append(self, entry: dict[str, Any]) -> None:
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._sync()

    def _sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._sync()
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Journal({self.path!r}, updates={len(self.updates)}, "
            f"served={self.served}, record={self.record_mark})"
        )
