"""Seeded chaos for the serve stack: kills, corruption, fault windows.

The resilience layer (:mod:`repro.runtime.resilience`) and the journal
(:mod:`repro.runtime.journal`) claim to survive the real world; this
module is the adversary that proves it.  A :class:`ChaosSpec` describes
a reproducible failure campaign against a live serve loop:

* **kills** — simulated process death between requests: the session is
  dropped without a graceful close (its journal file handle is severed
  mid-stream) and rebuilt via :meth:`repro.runtime.Session.recover`;
* **store corruption** — a kill may also overwrite bytes in the store
  entry the recovery would warm-start from, forcing the corrupt-entry
  miss path (delete + deterministic rebuild);
* **journal truncation** — a kill may also chop the journal's tail,
  exercising torn-tail tolerance (recovery converges to the intact
  prefix);
* **fault windows** — mid-stream :class:`~repro.congest.faults.FaultSpec`
  windows opened around a span of requests via
  :meth:`repro.runtime.Session.fault_window`.

Determinism contract: a :class:`ChaosPlan` draws **exclusively** from
the named ``"chaos"`` RNG stream (reprolint R013, the mirror of R007
for fault plans), and draws a *fixed* number of values per request —
five, regardless of which actions fire — so the decision at request
``k`` is a pure function of ``(seed, k)``, never of earlier outcomes.
Enabling chaos therefore cannot perturb any other stream, and the same
seed replays the same campaign bit for bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from ..congest.faults import FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import Session
    from .store import HierarchyStore

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "ChaosSpec",
    "corrupt_store_entry",
    "kill_session",
    "truncate_journal_tail",
]

#: Uniform draws consumed per request (fixed for stream alignment).
_DRAWS_PER_REQUEST = 4


@dataclass(frozen=True)
class ChaosSpec:
    """One reproducible failure campaign, decided once and immutable.

    Attributes:
        kill_rate: per-request probability of a simulated process kill
            *before* serving the request (0 = never).
        max_kills: cap on total kills per run (recovery is expensive;
            the cap keeps campaigns bounded).
        corrupt_store: probability, given a kill, that the store entry
            recovery would warm-start from is corrupted first.
        truncate_journal: probability, given a kill, that the journal
            tail is truncated first.
        truncate_bytes: bytes chopped off the journal tail.
        fault_rate: per-request probability that a fault window opens
            at this request (requires ``fault_spec``).
        fault_spec: the :class:`FaultSpec` (or spec string) injected
            inside fault windows.
        fault_window: consecutive requests each window covers.
    """

    kill_rate: float = 0.0
    max_kills: int = 2
    corrupt_store: float = 0.0
    truncate_journal: float = 0.0
    truncate_bytes: int = 64
    fault_rate: float = 0.0
    fault_spec: Union[None, str, FaultSpec] = None
    fault_window: int = 1

    def __post_init__(self) -> None:
        for name in (
            "kill_rate",
            "corrupt_store",
            "truncate_journal",
            "fault_rate",
        ):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if int(self.max_kills) < 0:
            raise ValueError(
                f"max_kills must be >= 0, got {self.max_kills}"
            )
        if int(self.truncate_bytes) < 1:
            raise ValueError(
                f"truncate_bytes must be >= 1, got {self.truncate_bytes}"
            )
        if int(self.fault_window) < 1:
            raise ValueError(
                f"fault_window must be >= 1, got {self.fault_window}"
            )
        if isinstance(self.fault_spec, str):
            object.__setattr__(
                self, "fault_spec", FaultSpec.parse(self.fault_spec)
            )
        elif self.fault_spec is not None and not isinstance(
            self.fault_spec, FaultSpec
        ):
            raise TypeError(
                "fault_spec must be None, a spec string, or a "
                f"FaultSpec, got {type(self.fault_spec).__name__}"
            )
        if self.fault_rate > 0.0 and self.fault_spec is None:
            raise ValueError("fault_rate > 0 requires a fault_spec")

    @property
    def is_null(self) -> bool:
        """True when the campaign can never act."""
        return self.kill_rate == 0.0 and self.fault_rate == 0.0

    def describe(self) -> str:
        """A compact, stable description (reports and baselines)."""
        parts = []
        if self.kill_rate > 0.0:
            parts.append(f"kill={self.kill_rate:g}x{self.max_kills}")
            if self.corrupt_store > 0.0:
                parts.append(f"corrupt={self.corrupt_store:g}")
            if self.truncate_journal > 0.0:
                parts.append(
                    f"truncate={self.truncate_journal:g}"
                    f"@{self.truncate_bytes}B"
                )
        if self.fault_rate > 0.0 and self.fault_spec is not None:
            parts.append(
                f"faults={self.fault_rate:g}"
                f"x{self.fault_window}({self.fault_spec.describe()})"
            )
        return ",".join(parts) if parts else "null"


@dataclass(frozen=True)
class ChaosAction:
    """What the plan decided for one request (pre-serve)."""

    index: int
    kill: bool = False
    corrupt: bool = False
    truncate: bool = False
    open_window: bool = False
    entropy: int = 0


class ChaosPlan:
    """Binds a :class:`ChaosSpec` to the named ``"chaos"`` stream.

    ``rng`` must be minted from the ``"chaos"`` stream (``derive_rng``
    with ``stream_entropy("chaos")`` or a context's
    ``stream("chaos")``/``fresh_stream("chaos")`` — reprolint R013
    checks the call site), so a campaign cannot perturb construction,
    workload, or fault randomness.  Exactly five values are drawn per
    request whatever happens, so decision ``k`` depends only on
    ``(seed, k)``.
    """

    def __init__(self, spec: ChaosSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self.kills = 0
        self.windows_opened = 0
        self._window_left = 0

    def action(self, index: int) -> ChaosAction:
        """Decide the campaign's moves before serving request ``index``.

        Always consumes the same number of draws; the returned action
        already respects ``max_kills`` and open-window exclusion (a new
        window cannot open while one is active — the caller tracks the
        active window via ``fault_window`` request counts).
        """
        draws = self.rng.random(_DRAWS_PER_REQUEST)
        entropy = int(self.rng.integers(1 << 62))
        spec = self.spec
        kill = (
            spec.kill_rate > 0.0
            and self.kills < spec.max_kills
            and bool(draws[0] < spec.kill_rate)
        )
        corrupt = kill and bool(draws[1] < spec.corrupt_store)
        truncate = kill and bool(draws[2] < spec.truncate_journal)
        open_window = False
        if self._window_left > 0:
            self._window_left -= 1
        elif spec.fault_rate > 0.0 and bool(draws[3] < spec.fault_rate):
            open_window = True
            self.windows_opened += 1
            self._window_left = spec.fault_window - 1
        if kill:
            self.kills += 1
        return ChaosAction(
            index=index,
            kill=kill,
            corrupt=corrupt,
            truncate=truncate,
            open_window=open_window,
            entropy=entropy,
        )


# -- the chaos verbs ----------------------------------------------------------


def kill_session(session: "Session") -> None:
    """Simulate process death: sever the session without grace.

    The journal's OS handle is closed raw — no final mark, no close
    event — which is exactly the state a SIGKILL leaves behind (every
    acknowledged append was already fsync'd, anything else is gone).
    The session object must not be used afterwards.
    """
    if session.journal is not None:
        handle = session.journal._handle
        if not handle.closed:
            handle.close()
    # Mark closed so accidental reuse fails loudly instead of serving
    # from a "dead" process.
    session._closed = True


def corrupt_store_entry(store: "HierarchyStore", key: str) -> bool:
    """Damage a store entry with a torn write (if it exists).

    Deterministic damage — the file is truncated to half its size, the
    canonical shape of a write that lost power mid-flush — so campaigns
    replay bit for bit and the damage is always *detectable*: a torn
    pickle fails to load, the store converts the
    :class:`~repro.runtime.checkpoint.CheckpointError` into a delete +
    miss, and recovery rebuilds deterministically.  (An in-place byte
    splat can land inside array data and load silently, which would
    make the campaign's behaviour depend on pickle layout.)  Returns
    whether an entry was damaged.
    """
    path = store.path_for(key)
    if not os.path.exists(path):
        return False
    size = os.path.getsize(path)
    if size == 0:
        return False
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
    return True


def truncate_journal_tail(path: str, nbytes: int) -> bool:
    """Chop ``nbytes`` off a journal file's tail (torn-write model).

    Returns whether anything was removed.  The journal reader tolerates
    the resulting torn last line by design; at-least-once semantics
    cover any acknowledged-but-truncated marks.
    """
    if not os.path.exists(path):
        return False
    size = os.path.getsize(path)
    if size == 0:
        return False
    keep = max(0, size - int(nbytes))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return True
