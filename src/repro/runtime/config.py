"""One front door for the pipeline: ``repro.run(op, graph, config=...)``.

Before this module, every entry point threaded the same knobs by hand —
``params=``, ``rng=``, ``seed=``, ``validate=``, ``backend=`` sprinkled
across :func:`~repro.core.hierarchy.build_hierarchy`,
:class:`~repro.core.router.Router`,
:func:`~repro.core.mst.minimum_spanning_tree`, and friends.
:class:`RunConfig` freezes those decisions into one immutable value, and
:func:`run` executes any of the paper's operations under it:

    >>> from repro import run, RunConfig
    >>> outcome = run("route", graph, config=RunConfig(seed=7))
    >>> outcome.result.delivered
    True

One config = one reproducible run: the seed feeds the context's named
RNG streams, ``faults`` (a spec string or
:class:`~repro.congest.faults.FaultSpec`) binds a fault plan to the
dedicated ``"faults"`` stream, ``trace`` captures the structured event
stream, and ``backend``/``validate`` choose how walk batches execute.
The legacy call signatures keep working as thin shims (see
:mod:`repro.__init__`) but new code should come through here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

from ..congest.faults import FaultSpec
from ..graphs.graph import Graph
from ..params import Params
from .backends import BACKENDS, Backend, make_backend
from .checkpoint import write_checkpoint
from .context import RECOVERY_MODES, RunContext
from .events import EventSink, JsonlSink, MemorySink, TraceEvent
from .ops import OP_TABLE, OPS, validate_request
from .resilience import ResiliencePolicy

__all__ = ["OPS", "RunConfig", "RunOutcome", "run"]

_VALIDATE_MODES = ("full", "first_round", "off")


@dataclass(frozen=True)
class RunConfig:
    """Everything one run needs, decided once and immutable.

    Attributes:
        seed: base seed; every named RNG stream derives from it.
        params: construction constants (``None`` =
            :meth:`Params.default`).
        backend: ``"oracle"`` (vectorized) or ``"native"`` (real message
            passing).
        validate: simulator outbox-validation mode, native backend only.
        trace: where structured events go — ``None`` (discard), a path
            string (JSONL file), or any
            :class:`~repro.runtime.EventSink`.
        faults: fault injection — ``None`` (clean), a spec string in the
            ``--faults`` grammar (``"drop=0.01,crash=3@rounds:10-20"``),
            or a :class:`FaultSpec`.  Normalized to a ``FaultSpec``.
        beta: partition branching-factor override.
        recovery: ``"fail-fast"`` (crash windows that defeat reliable
            delivery raise :class:`DeliveryTimeout` — the historical
            contract, bit-identical to runs before recovery existed) or
            ``"self-heal"`` (the failure detector publishes a crash
            view; delivery waits out transient windows, re-homes or
            orphans traffic of permanently dead nodes, and routing
            fails over to redundant portals — all charged under the
            ``recovery/*`` ledger namespace).
        checkpoint: optional path; when set, the run snapshots its full
            state there after the build phase and
            :func:`repro.runtime.checkpoint.resume` can continue it
            deterministically.
        workers: message-delivery shards for the native backend's
            simulator (see :meth:`repro.congest.network.Network.run`);
            results, rounds and ledger charges are identical at any
            worker count — only wall-clock changes.  Ignored by the
            oracle backend.
        cache: content-addressed hierarchy cache — ``"off"`` (default),
            ``"auto"`` (``$REPRO_CACHE_DIR`` or the XDG cache dir), or
            an explicit directory path.  With caching on, :func:`run`
            opens a warm session from the store when the (graph, seed,
            params, backend) content hash matches, skipping the build
            phase entirely; misses build once and persist.
        resilience: optional
            :class:`~repro.runtime.resilience.ResiliencePolicy` the
            serving layer governs requests under (deadlines, retry
            budget, admission control, circuit breaker).  ``None``
            (default) serves ungoverned — bit-identical to configs
            from before the policy existed.
    """

    seed: int = 0
    params: Optional[Params] = None
    backend: str = "oracle"
    validate: str = "full"
    trace: Union[None, str, EventSink] = None
    faults: Union[None, str, FaultSpec] = None
    beta: Optional[int] = None
    recovery: str = "fail-fast"
    checkpoint: Optional[str] = None
    workers: int = 1
    cache: Optional[str] = "off"
    resilience: Optional[ResiliencePolicy] = None

    def __post_init__(self):
        object.__setattr__(self, "seed", int(self.seed))
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {sorted(BACKENDS)}, "
                f"got {self.backend!r}"
            )
        if self.validate not in _VALIDATE_MODES:
            raise ValueError(
                f"validate must be one of {_VALIDATE_MODES}, "
                f"got {self.validate!r}"
            )
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_MODES}, "
                f"got {self.recovery!r}"
            )
        object.__setattr__(self, "workers", int(self.workers))
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.checkpoint is not None and not isinstance(
            self.checkpoint, str
        ):
            raise TypeError(
                "checkpoint must be None or a path string, "
                f"got {type(self.checkpoint).__name__}"
            )
        if self.cache is None:
            object.__setattr__(self, "cache", "off")
        elif not isinstance(self.cache, str):
            raise TypeError(
                "cache must be 'off', 'auto', or a directory path, "
                f"got {type(self.cache).__name__}"
            )
        if isinstance(self.faults, str):
            object.__setattr__(self, "faults", FaultSpec.parse(self.faults))
        elif self.faults is not None and not isinstance(
            self.faults, FaultSpec
        ):
            raise TypeError(
                "faults must be None, a spec string, or a FaultSpec, "
                f"got {type(self.faults).__name__}"
            )
        if self.resilience is not None and not isinstance(
            self.resilience, ResiliencePolicy
        ):
            raise TypeError(
                "resilience must be None or a ResiliencePolicy, "
                f"got {type(self.resilience).__name__}"
            )

    def make_context(self) -> RunContext:
        """A fresh :class:`RunContext` configured by this value.

        A path-string ``trace`` opens a new :class:`JsonlSink` per call;
        a sink *instance* is shared (the caller owns its lifetime).
        """
        sink: Optional[EventSink]
        if isinstance(self.trace, str):
            sink = JsonlSink(self.trace)
        else:
            sink = self.trace
        return RunContext(
            seed=self.seed,
            params=self.params,
            sink=sink,
            faults=self.faults,
            recovery=self.recovery,
        )

    def make_backend(
        self, graph: Graph, context: Optional[RunContext] = None
    ) -> Backend:
        """The configured backend over ``graph`` (fresh context unless
        one is supplied)."""
        return make_backend(
            self.backend,
            graph,
            context if context is not None else self.make_context(),
            beta=self.beta,
            validate=self.validate,
            workers=self.workers,
        )


@dataclass(frozen=True)
class RunOutcome:
    """What :func:`run` hands back: the result plus the run's machinery.

    Attributes:
        op: the operation that ran (one of :data:`OPS`).
        config: the :class:`RunConfig` it ran under.
        result: the operation's native result object
            (:class:`~repro.core.hierarchy.Hierarchy`,
            :class:`~repro.core.router.RoutingResult`, ...).
        context: the run's :class:`RunContext` — ledger, streams, sink.
        backend: the backend the run executed on (its cached hierarchy
            is reusable).
    """

    op: str
    config: RunConfig
    result: Any
    context: RunContext
    backend: Backend

    @property
    def ledger(self):
        """The run-wide :class:`~repro.core.ledger.RoundLedger`."""
        return self.context.ledger

    @property
    def events(self) -> list[TraceEvent]:
        """Captured trace events (empty unless ``trace`` was a
        :class:`MemorySink`)."""
        sink = self.context.sink
        if isinstance(sink, MemorySink):
            return sink.events
        return []

    def fault_rounds(self) -> float:
        """Total rounds charged under the ``faults/`` ledger category."""
        return float(
            sum(
                charge.rounds
                for charge in self.ledger.charges
                if charge.label.startswith("faults/")
            )
        )

    def recovery_rounds(self) -> float:
        """Total rounds charged under the ``recovery/`` ledger category
        (detection, waits, failover, re-election, repair, redundancy)."""
        return float(
            sum(
                charge.rounds
                for charge in self.ledger.charges
                if charge.label.startswith("recovery/")
            )
        )


#: Compatibility alias: the op runners now live in
#: :data:`repro.runtime.ops.OP_TABLE` (one dispatch surface for the
#: one-shot, resume, and session paths); ``OPS`` is re-exported above.
_OP_RUNNERS = {name: spec.runner for name, spec in OP_TABLE.items()}


def run(
    op: str,
    graph: Graph,
    *,
    config: Optional[RunConfig] = None,
    **op_args,
) -> RunOutcome:
    """Execute one of the paper's operations under a :class:`RunConfig`.

    Args:
        op: ``"build"``, ``"route"``, ``"mst"``, ``"mincut"``, or
            ``"clique"``.
        graph: the topology (a :class:`WeightedGraph` for ``mst`` unless
            ``weights=`` is passed; unweighted graphs get i.i.d. uniform
            weights from the ``"weights"`` stream).
        config: the run configuration (default: ``RunConfig()``).
        **op_args: operation-specific inputs — ``route``:
            ``sources``/``destinations`` arrays, or ``packets=k`` for a
            random demand, or nothing for a full permutation;
            ``trace_hops=True`` records per-packet hop counts.  ``mst``:
            optional ``weights``.  ``mincut``: ``eps``, ``num_trees``,
            ``two_respecting``, ``use_weights``.  ``clique``:
            ``sample_fraction``.

    Returns:
        A :class:`RunOutcome`; ``outcome.result`` is the operation's
        native result object, ``outcome.ledger`` the round accounting,
        ``outcome.backend.hierarchy`` the (cached) structure.

    Raises:
        ValueError: unknown ``op`` or malformed demand arguments.
        DeliveryTimeout: if an active fault plan defeats reliable
            delivery (never a silent partial result).
    """
    from .session import Request, Session

    if config is None:
        config = RunConfig()
    # Fail on an unknown op or argument keyword before any work —
    # session construction, context creation, or builds.
    validate_request(op, op_args)
    # One-shot = open a (possibly cached) session, serve one request.
    # The session restores its warm RNG/router snapshot before the
    # request, so the outcome is bit-identical to the historical
    # build-inline path; ``quiet`` keeps the trace free of per-request
    # session bookends.
    session = Session.open(graph, config, announce=op)
    context = session.context
    backend = session.backend
    if config.checkpoint is not None:
        # Snapshot at the build/operate phase boundary.  The session
        # warm-up pre-built the structure, which is stream-neutral:
        # construction and workload sampling draw from independent
        # named streams, so the outcome is bit-identical to a run
        # without a checkpoint.
        write_checkpoint(
            config.checkpoint,
            op=op,
            op_args=op_args,
            config=config,
            graph=graph,
            context=context,
            backend=backend,
        )
    try:
        response = session.submit(
            Request(op=op, args=op_args), quiet=True
        )
        result = response.result
    finally:
        context.emit(
            "run_end",
            op,
            total_rounds=float(context.ledger.total()),
        )
        if isinstance(config.trace, str):
            # We opened the JSONL sink; we close it.  Caller-supplied
            # sink instances stay open (their owner decides).
            context.close()
    return RunOutcome(
        op=op,
        config=config,
        result=result,
        context=context,
        backend=backend,
    )
