"""Execution backends: one protocol, two ways to run the pipeline.

A :class:`Backend` binds a graph to a :class:`~repro.runtime.RunContext`
and exposes the paper's operations (hierarchy build, routing, MST, min
cut, clique emulation) behind one interface:

* :class:`OracleBackend` — the fast path: vectorized walk engines and
  measured-schedule accounting (the existing ``core/`` pipeline).
* :class:`NativeBackend` — the same *random process*, executed as real
  message passing: every construction / preparation walk batch is
  recorded and replayed token-by-token through
  :meth:`repro.congest.network.Network.run` (respecting the one-message-
  per-edge-per-direction CONGEST constraint, with the simulator's
  ``validate`` modes), and the executed round count is asserted equal to
  the engine's Lemma 2.5 charge.

Because both backends draw from the context's named streams and consume
them identically, a fixed seed yields the *same* G0 edge multiset,
hierarchy, and routing decisions on either backend — the cross-backend
equivalence contract (``tests/runtime/test_backends.py``).  Operations
the native path does not cover raise :class:`UnsupportedOnBackend` with
a pointer to the oracle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..congest.native import replay_walk_run
from ..core.clique import CliqueEmulationResult, emulate_clique
from ..core.hierarchy import Hierarchy, build_hierarchy
from ..core.mincut import MinCutResult, approximate_min_cut
from ..core.mst import MstResult, MstRunner
from ..core.router import Router, RoutingResult
from ..graphs.graph import Graph, WeightedGraph
from ..walks.correlated import run_correlated_walks
from ..walks.engine import run_lazy_walks
from .context import RunContext

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendMismatch",
    "NativeBackend",
    "OracleBackend",
    "UnsupportedOnBackend",
    "make_backend",
]


class UnsupportedOnBackend(NotImplementedError):
    """The operation is not implemented on this backend."""

    def __init__(self, backend: "Backend", operation: str):
        super().__init__(
            f"{operation} is not supported on the {backend.name!r} backend; "
            "use --backend oracle (OracleBackend) for this operation"
        )
        self.backend = backend.name
        self.operation = operation


class BackendMismatch(RuntimeError):
    """The native execution disagreed with the accounted schedule."""


class Backend:
    """Base class: a graph bound to a context, with a cached hierarchy.

    Subclasses set :attr:`name` and implement :meth:`_walk_runner` (how
    walk batches execute); everything else is shared.  The hierarchy is
    built lazily on first use and cached, so ``route`` / ``mst`` / ...
    calls on one backend share a structure.
    """

    name = "abstract"

    #: Backend methods this backend can actually execute; the op table
    #: (:func:`repro.runtime.ops.check_backend_support`) consults this
    #: *before* the build phase, so an unsupported (op, backend) pair
    #: fails in milliseconds instead of after an expensive construction.
    supported_ops: frozenset[str] = frozenset({"build", "route"})

    def __init__(
        self,
        graph: Graph,
        context: RunContext,
        beta: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.context = context
        self._beta = beta
        self._hierarchy: Optional[Hierarchy] = None
        self._router: Optional[Router] = None

    @property
    def built(self) -> bool:
        """Whether the hierarchy has been constructed (or adopted)."""
        return self._hierarchy is not None

    # -- walk execution strategy (the backend difference) --------------------

    def _walk_runner(self):
        """Walk-execution override for build/prep batches (None = engine)."""
        return None

    # -- operations ----------------------------------------------------------

    @property
    def hierarchy(self) -> Hierarchy:
        """The routing structure, built on first access."""
        if self._hierarchy is None:
            self._hierarchy = self.build()
        return self._hierarchy

    @property
    def router(self) -> Router:
        """The backend's router over :attr:`hierarchy` (cached)."""
        if self._router is None:
            self._router = Router(
                self.hierarchy,
                context=self.context,
                walk_runner=self._walk_runner(),
            )
        return self._router

    def build(self) -> Hierarchy:
        """Build (and cache) the hierarchical routing structure."""
        if self._hierarchy is None:
            ctx = self.context
            with ctx.phase("build/hierarchy", backend=self.name):
                self._hierarchy = build_hierarchy(
                    self.graph,
                    beta=self._beta,
                    context=ctx,
                    walk_runner=self._walk_runner(),
                )
        return self._hierarchy

    def route(
        self,
        sources: np.ndarray,
        destinations: np.ndarray,
        trace: bool = False,
    ) -> RoutingResult:
        """Route one packet per (source, destination) pair."""
        with self.context.phase("route", backend=self.name):
            return self.router.route(sources, destinations, trace=trace)

    def mst(self, weighted: WeightedGraph) -> MstResult:
        """Distributed MST of ``weighted`` over this backend's structure."""
        raise UnsupportedOnBackend(self, "mst")

    def min_cut(self, **kwargs) -> MinCutResult:
        """Approximate min cut of the backend's graph."""
        raise UnsupportedOnBackend(self, "min_cut")

    def clique(self, sample_fraction: float = 1.0) -> CliqueEmulationResult:
        """Emulate one congested-clique round on the backend's graph."""
        raise UnsupportedOnBackend(self, "clique")

    def g0_edge_multiset(self) -> list[tuple[int, int]]:
        """Sorted G0 overlay edges — the cross-backend equivalence probe."""
        overlay = self.hierarchy.g0.overlay
        return sorted(
            (int(u), int(v)) for u, v in map(tuple, overlay.edge_array)
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(graph={self.graph!r})"


class OracleBackend(Backend):
    """The vectorized `core/` pipeline with measured-schedule accounting."""

    name = "oracle"
    supported_ops = frozenset(
        {"build", "route", "mst", "min_cut", "clique"}
    )

    def mst(self, weighted: WeightedGraph) -> MstResult:
        ctx = self.context
        with ctx.phase("mst", backend=self.name):
            runner = MstRunner(
                weighted, hierarchy=self.hierarchy, context=ctx
            )
            return runner.run()

    def min_cut(self, **kwargs) -> MinCutResult:
        ctx = self.context
        with ctx.phase("mincut", backend=self.name):
            return approximate_min_cut(
                self.graph, hierarchy=self.hierarchy, context=ctx, **kwargs
            )

    def clique(self, sample_fraction: float = 1.0) -> CliqueEmulationResult:
        ctx = self.context
        with ctx.phase("clique", backend=self.name):
            # A dedicated context-free router: the emulation charges one
            # aggregate "clique/emulation" entry, not per-route charges.
            router = Router(
                self.hierarchy,
                params=ctx.params,
                rng=ctx.stream("clique"),
                faults=ctx.fault_plan,
            )
            return emulate_clique(
                self.hierarchy,
                router=router,
                sample_fraction=sample_fraction,
                context=ctx,
            )


class NativeBackend(Backend):
    """Executes walk batches as real CONGEST message passing.

    Covers hierarchy/G0 build and routing.  Each walk batch is sampled
    by the same engine as the oracle (hence bit-identical structures),
    recorded, and replayed through :func:`repro.congest.replay_walk_run`
    under ``validate``; the executed rounds must equal the engine's
    ``schedule_rounds()`` charge or :class:`BackendMismatch` is raised.
    MST / min-cut / clique raise :class:`UnsupportedOnBackend`.
    """

    name = "native"

    def __init__(
        self,
        graph: Graph,
        context: RunContext,
        beta: Optional[int] = None,
        validate: str = "full",
        workers: int = 1,
    ) -> None:
        super().__init__(graph, context, beta=beta)
        self.validate = validate
        self.workers = int(workers)
        self.executed_rounds = 0
        self.executed_messages = 0

    def _walk_runner(self):
        engine = (
            run_correlated_walks
            if self.context.params.use_correlated_walks
            else run_lazy_walks
        )

        def native_runner(graph, starts, steps, rng, record_trajectory=False):
            run = engine(
                graph, starts, steps, rng, record_trajectory=True
            )
            # With faults on, the replay runs each step over the
            # reliable ARQ path: same trajectories (retries resend, they
            # never resample), more rounds.  The surplus over the
            # engine's clean Lemma 2.5 charge *is* the fault overhead,
            # charged under faults/ — so the clean equality assertion is
            # replaced by surplus accounting, not silently skipped.
            plan = self.context.fault_plan
            replay = replay_walk_run(
                graph, run, validate=self.validate, faults=plan,
                workers=self.workers,
            )
            charged = run.schedule_rounds()
            if plan is None:
                if replay.rounds != charged:
                    raise BackendMismatch(
                        f"native execution took {replay.rounds} rounds but "
                        f"the engine charged {charged} for the same walk "
                        "batch"
                    )
            else:
                self.context.charge(
                    "faults/retry-rounds",
                    float(max(0, replay.rounds - charged)),
                    stage="native/walk-batch",
                    rounds_total=int(replay.rounds),
                    ideal_rounds=int(charged),
                )
            self.executed_rounds += replay.rounds
            self.executed_messages += replay.messages
            self.context.emit(
                "backend",
                "native/walk-batch",
                walks=int(np.asarray(starts).shape[0]),
                steps=int(steps),
                executed_rounds=int(replay.rounds),
                messages=int(replay.messages),
                validate=self.validate,
            )
            return run

        return native_runner


BACKENDS = {"oracle": OracleBackend, "native": NativeBackend}


def make_backend(
    name: str,
    graph: Graph,
    context: RunContext,
    beta: Optional[int] = None,
    validate: str = "full",
    workers: int = 1,
) -> Backend:
    """Instantiate a backend by name (``"oracle"`` or ``"native"``).

    ``validate`` and ``workers`` only apply to the native backend (the
    oracle has no message passing to validate or shard).
    """
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    if cls is NativeBackend:
        return cls(
            graph, context, beta=beta, validate=validate, workers=workers
        )
    return cls(graph, context, beta=beta)
