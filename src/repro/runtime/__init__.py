"""The execution layer: run contexts, trace events, and backends.

Everything the repository can run — CLI commands, the
:class:`~repro.system.ExpanderNetwork` façade, benchmarks, tests — goes
through a :class:`RunContext` (seed → named RNG streams, shared
:class:`~repro.params.Params`, one :class:`~repro.core.ledger.RoundLedger`,
structured trace events) and a :class:`Backend` (oracle = vectorized
engines, native = real message passing).  See ``docs/architecture.md``
for the trace-event schema.
"""

from .backends import (
    BACKENDS,
    Backend,
    BackendMismatch,
    NativeBackend,
    OracleBackend,
    UnsupportedOnBackend,
    make_backend,
)
from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    resume,
    write_checkpoint,
)
from .config import OPS, RunConfig, RunOutcome, run
from .context import RECOVERY_MODES, RunContext
from .ops import OP_TABLE, OpSpec, check_backend_support, validate_request
from .events import (
    EVENT_KINDS,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceEvent,
    read_jsonl_trace,
    sum_ledger_charges,
)
from .session import (
    Request,
    Session,
    SessionResponse,
    UpdateReport,
    serve_jsonl,
)
from .store import HierarchyStore, StoreStats, open_store, store_key

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendMismatch",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "EVENT_KINDS",
    "HierarchyStore",
    "RECOVERY_MODES",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NativeBackend",
    "NullSink",
    "OPS",
    "OP_TABLE",
    "OpSpec",
    "OracleBackend",
    "Request",
    "RunConfig",
    "RunContext",
    "RunOutcome",
    "Session",
    "SessionResponse",
    "StoreStats",
    "TraceEvent",
    "UnsupportedOnBackend",
    "UpdateReport",
    "check_backend_support",
    "load_checkpoint",
    "make_backend",
    "open_store",
    "read_jsonl_trace",
    "resume",
    "run",
    "serve_jsonl",
    "store_key",
    "sum_ledger_charges",
    "validate_request",
    "write_checkpoint",
]
