"""The execution layer: run contexts, trace events, and backends.

Everything the repository can run — CLI commands, the
:class:`~repro.system.ExpanderNetwork` façade, benchmarks, tests — goes
through a :class:`RunContext` (seed → named RNG streams, shared
:class:`~repro.params.Params`, one :class:`~repro.core.ledger.RoundLedger`,
structured trace events) and a :class:`Backend` (oracle = vectorized
engines, native = real message passing).  See ``docs/architecture.md``
for the trace-event schema.
"""

from .backends import (
    BACKENDS,
    Backend,
    BackendMismatch,
    NativeBackend,
    OracleBackend,
    UnsupportedOnBackend,
    make_backend,
)
from .config import OPS, RunConfig, RunOutcome, run
from .context import RunContext
from .events import (
    EVENT_KINDS,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceEvent,
    read_jsonl_trace,
    sum_ledger_charges,
)

__all__ = [
    "BACKENDS",
    "Backend",
    "BackendMismatch",
    "EVENT_KINDS",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NativeBackend",
    "NullSink",
    "OPS",
    "OracleBackend",
    "RunConfig",
    "RunContext",
    "RunOutcome",
    "TraceEvent",
    "UnsupportedOnBackend",
    "make_backend",
    "read_jsonl_trace",
    "run",
    "sum_ledger_charges",
]
