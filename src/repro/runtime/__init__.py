"""The execution layer: run contexts, trace events, and backends.

Everything the repository can run — CLI commands, the
:class:`~repro.system.ExpanderNetwork` façade, benchmarks, tests — goes
through a :class:`RunContext` (seed → named RNG streams, shared
:class:`~repro.params.Params`, one :class:`~repro.core.ledger.RoundLedger`,
structured trace events) and a :class:`Backend` (oracle = vectorized
engines, native = real message passing).  See ``docs/architecture.md``
for the trace-event schema.
"""

from .backends import (
    BACKENDS,
    Backend,
    BackendMismatch,
    NativeBackend,
    OracleBackend,
    UnsupportedOnBackend,
    make_backend,
)
from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    resume,
    write_checkpoint,
)
from .chaos import ChaosPlan, ChaosSpec
from .config import OPS, RunConfig, RunOutcome, run
from .context import RECOVERY_MODES, RunContext
from .journal import JOURNAL_VERSION, Journal, read_journal
from .ops import OP_TABLE, OpSpec, check_backend_support, validate_request
from .events import (
    EVENT_KINDS,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TraceEvent,
    read_jsonl_trace,
    sum_ledger_charges,
)
from .resilience import (
    BREAKER_STATES,
    CircuitOpen,
    DeadlineExceeded,
    Governor,
    LoadShed,
    ResiliencePolicy,
    ServeRejection,
)
from .session import (
    Request,
    Session,
    SessionResponse,
    UpdateReport,
    serve_jsonl,
)
from .store import HierarchyStore, StoreStats, open_store, store_key

__all__ = [
    "BACKENDS",
    "BREAKER_STATES",
    "Backend",
    "BackendMismatch",
    "CHECKPOINT_VERSION",
    "ChaosPlan",
    "ChaosSpec",
    "CheckpointError",
    "CircuitOpen",
    "DeadlineExceeded",
    "EVENT_KINDS",
    "Governor",
    "HierarchyStore",
    "JOURNAL_VERSION",
    "Journal",
    "LoadShed",
    "RECOVERY_MODES",
    "EventSink",
    "JsonlSink",
    "MemorySink",
    "NativeBackend",
    "NullSink",
    "OPS",
    "OP_TABLE",
    "OpSpec",
    "OracleBackend",
    "Request",
    "ResiliencePolicy",
    "RunConfig",
    "RunContext",
    "RunOutcome",
    "ServeRejection",
    "Session",
    "SessionResponse",
    "StoreStats",
    "TraceEvent",
    "UnsupportedOnBackend",
    "UpdateReport",
    "check_backend_support",
    "load_checkpoint",
    "make_backend",
    "open_store",
    "read_journal",
    "read_jsonl_trace",
    "resume",
    "run",
    "serve_jsonl",
    "store_key",
    "sum_ledger_charges",
    "validate_request",
    "write_checkpoint",
]
