"""Build-once / serve-many: the warm-hierarchy session layer.

The paper's headline claim is economic: pay ``2^O(sqrt(log n))`` rounds
*once* for the expander-decomposition hierarchy, then answer routing
(and MST / min-cut / clique) instances in ``~tau_mix`` each.  The
one-shot :func:`repro.run` obscured that — every call rebuilt the
structure.  A :class:`Session` makes the amortization real: it owns a
built hierarchy + router + :class:`~repro.runtime.RunContext` and
serves a stream of requests against the warm structure.

**The equivalence oracle.**  Every served request is bit-identical to a
cold ``repro.run()`` with the same (graph, seed, config): same result
object, same ledger charges.  The mechanism is the named-stream
discipline plus a warm snapshot:

1. ``Session.open`` builds the hierarchy and router exactly as a cold
   run would, then snapshots the position of every RNG stream, the
   router's cross-call state, and the fault plan's RNG positions.
2. Before each request the snapshot is restored, and streams created
   *since* the snapshot are forgotten (so they re-derive at their
   origin — where a cold run would first meet them).
3. The request runs through the same :data:`~repro.runtime.ops.OP_TABLE`
   runner the one-shot path uses, and its charges are sliced off the
   session ledger as a per-request ledger.

Streams are independent by name, so the restore is exact, not
approximate: a request cannot observe how many requests ran before it.
(One documented exception: under ``recovery="self-heal"`` with crash
windows, the warm-up pays the one-time ``recovery/detection`` charge
that a cold non-route run would never incur, because the session
eagerly builds failover structures.)

``Session.open`` also fronts the content-addressed
:class:`~repro.runtime.store.HierarchyStore`: a hit adopts the stored
context + backend and skips the build phase entirely;
``Session.apply_update`` patches the warm structure around churn
(overlay repair + portal re-election, charged under ``serve/``) and
re-persists under the updated content hash.

Two optional robustness layers ride on top (see ``docs/robustness.md``):
a :class:`~repro.runtime.resilience.ResiliencePolicy` (deadlines, retry
budget, admission control, circuit breaker — enforced by
:meth:`Session.serve`), and a :class:`~repro.runtime.journal.Journal`
(crash-safe write-ahead log of applied updates + the served high-water
mark) that :meth:`Session.recover` replays deterministically.  Both
layers are additive for *request serving*: with neither attached,
served responses are bit-identical to a session without this
machinery.  :meth:`Session.apply_update`, however, now restores the
warm snapshot before every update for *all* sessions — journaled or
not — so that replay is a pure function of (seed, update index); this
intentionally changes update repair results relative to pre-journal
sessions (the serve-soak baselines were regenerated accordingly).
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from ..congest.faults import FaultSpec
from ..core.hierarchy import repair_overlay
from ..core.ledger import RoundLedger
from ..graphs.graph import Graph, WeightedGraph
from ..hashing import graph_fingerprint
from .backends import Backend
from .context import RunContext
from .events import EventSink, JsonlSink, NullSink
from .journal import Journal
from .ops import (
    check_backend_support,
    summarize_result,
    validate_request,
)
from .resilience import Governor, ResiliencePolicy
from .store import HierarchyStore, open_store, store_key

__all__ = [
    "DEFAULT_STALENESS_BOUND",
    "Request",
    "Session",
    "SessionResponse",
    "UpdateReport",
    "serve_jsonl",
]

#: Fraction of virtual nodes that may be touched by incremental updates
#: before :meth:`Session.apply_update` falls back to a full rebuild.
DEFAULT_STALENESS_BOUND = 0.25


@dataclass(frozen=True)
class Request:
    """One operation request against a warm session.

    Validation happens at *construction* — an unknown op raises
    ``ValueError`` and an unknown argument keyword raises ``TypeError``
    naming the offending key — so malformed requests never reach the
    warm structure.
    """

    op: str
    args: Mapping[str, Any] = field(default_factory=dict)
    id: Optional[str] = None

    def __post_init__(self) -> None:
        validate_request(self.op, self.args)


@dataclass(frozen=True)
class SessionResponse:
    """What one served request hands back.

    Attributes:
        op: the operation that ran.
        result: the op's native result object (same type a cold
            ``run()`` returns).
        ledger: this request's own charges — the slice of the session
            ledger between request start and end.
        rounds: ``ledger.total()``.
        wall_s: request wall-clock latency in seconds.
        index: 0-based position in the session's request sequence.
        request_id: the :attr:`Request.id`, echoed back.
        batch_size: >1 when served as part of a batched admission
            group (``rounds`` then covers the whole batch).
    """

    op: str
    result: Any
    ledger: RoundLedger
    rounds: float
    wall_s: float
    index: int
    request_id: Optional[str] = None
    batch_size: int = 1

    def summary(self) -> dict[str, Any]:
        """JSON-safe response payload (the serve wire format)."""
        payload: dict[str, Any] = {
            "index": self.index,
            "op": self.op,
            "result": summarize_result(self.op, self.result),
            "rounds": float(self.rounds),
            "wall_s": round(self.wall_s, 6),
        }
        if self.request_id is not None:
            payload["id"] = self.request_id
        if self.batch_size > 1:
            payload["batch_size"] = self.batch_size
            payload["rounds_amortized"] = float(
                self.rounds / self.batch_size
            )
        return payload


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of one :meth:`Session.apply_update`.

    Attributes:
        edges_added / edges_removed / nodes_down: the applied churn.
        rebuilt: ``True`` when the staleness bound forced a full
            rebuild instead of an incremental repair.
        staleness: stale-vnode fraction *after* this update.
        repaired / dropped: overlay edges re-embedded / removed per
            level (empty when ``rebuilt``).
        reelected: portal slots re-elected (0 when ``rebuilt``).
        cost_rounds: rounds charged under ``serve/`` (repair path) or
            the fresh build's total (rebuild path).
        cache_key: content hash the updated session persisted under
            (``None`` when the session has no store).
    """

    edges_added: tuple
    edges_removed: tuple
    nodes_down: tuple
    rebuilt: bool
    staleness: float
    repaired: dict[int, int]
    dropped: dict[int, int]
    reelected: int
    cost_rounds: float
    cache_key: Optional[str] = None

    def summary(self) -> dict[str, Any]:
        """JSON-safe report payload (the serve wire format)."""
        return {
            "update": {
                "edges_added": len(self.edges_added),
                "edges_removed": len(self.edges_removed),
                "nodes_down": len(self.nodes_down),
                "rebuilt": self.rebuilt,
                "staleness": round(self.staleness, 6),
                "repaired": int(sum(self.repaired.values())),
                "dropped": int(sum(self.dropped.values())),
                "reelected": self.reelected,
                "rounds": float(self.cost_rounds),
            }
        }


class _ServeLedger:
    """Charge adapter: books repair costs under ``serve/`` instead of
    ``recovery/`` (same amounts, the serving category — a planned
    update is maintenance, not failure recovery)."""

    def __init__(self, context: RunContext) -> None:
        self._context = context

    def charge(self, label: str, rounds: float, **detail: Any) -> None:
        if label.startswith("recovery/"):
            label = "serve/" + label.split("/", 1)[1]
        self._context.charge(label, rounds, **detail)


class Session:
    """A warm hierarchy + router serving many requests (use
    :meth:`open`)."""

    def __init__(
        self,
        graph: Graph,
        config: Any,
        context: RunContext,
        backend: Backend,
        *,
        store: Optional[HierarchyStore] = None,
        cache_key: Optional[str] = None,
        from_cache: bool = False,
        staleness_bound: float = DEFAULT_STALENESS_BOUND,
        policy: Optional[ResiliencePolicy] = None,
        journal: Optional[Journal] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.context = context
        self.backend = backend
        self.store = store
        self.cache_key = cache_key
        self.from_cache = from_cache
        self.staleness_bound = float(staleness_bound)
        self.policy = policy
        self.governor = Governor(policy) if policy is not None else None
        self.journal = journal
        self.lineage = ""
        self.served = 0
        self.updates_applied = 0
        # Input-record stamp for the next journaled update (set by
        # serve_jsonl so replay advances the resume point past the
        # update's record; 0 = update applied outside a record stream).
        self._journal_record = 0
        self._closed = False
        self._stale_vnodes = 0
        self._warm_streams: dict[str, dict] = {}
        self._warm_router: Optional[dict] = None
        self._warm_plan: Optional[dict] = None
        self._warm_ledger_len = 0
        self._warm_hierarchy_ledger_len = 0

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        graph: Graph,
        config: Any = None,
        *,
        store: Optional[HierarchyStore] = None,
        announce: Optional[str] = None,
        staleness_bound: float = DEFAULT_STALENESS_BOUND,
        policy: Optional[ResiliencePolicy] = None,
        journal: "Union[None, str, Journal]" = None,
    ) -> "Session":
        """Open a warm session: cache hit, or build + persist.

        Args:
            graph: the topology to serve.
            config: a :class:`~repro.runtime.RunConfig` (default:
                ``RunConfig()``); its ``cache`` field selects the store
                unless ``store`` is passed explicitly.
            store: explicit :class:`HierarchyStore` (overrides
                ``config.cache``).
            announce: operation name for the ``run_start`` trace event
                (the one-shot path passes its op; servers leave the
                default ``"session"``).  When given, backend support is
                checked *before* any build work.
            staleness_bound: see :meth:`apply_update`.
            policy: serve-path SLO governance (defaults to
                ``config.resilience``); see :meth:`serve`.
            journal: crash-safe write-ahead journal — a
                :class:`~repro.runtime.journal.Journal` or a path to
                open one at.  Applied updates and the served high-water
                mark are journaled so :meth:`recover` can rebuild this
                session after a crash.
        """
        from .config import RunConfig

        if config is None:
            config = RunConfig()
        if policy is None:
            policy = getattr(config, "resilience", None)
        if isinstance(journal, str):
            journal = Journal(
                journal, identity=cls._journal_identity(graph, config)
            )
        if store is None:
            store = open_store(config.cache)
        key = store_key(graph, config) if store is not None else None
        op_name = announce or "session"

        payload = None
        if store is not None and key is not None:
            payload = store.load(key, graph)

        if payload is not None:
            context = payload["context"]
            backend = payload["backend"]
            sink: EventSink
            if isinstance(config.trace, str):
                sink = JsonlSink(config.trace)
            else:
                sink = config.trace or NullSink()
            context.sink = sink
            context.record_events = config.checkpoint is not None
            context.recorded_events = []
            try:
                cls._emit_run_start(context, config, op_name)
                context.emit(
                    "cache",
                    "serve/cache-hit",
                    key=key,
                    path=store.path_for(key),
                )
                if announce is not None:
                    check_backend_support(backend, announce)
                # Adopt the *current* config's execution-only knobs:
                # they are excluded from the content key because they
                # cannot change built state.
                if hasattr(backend, "validate"):
                    backend.validate = config.validate
                if hasattr(backend, "workers"):
                    backend.workers = config.workers
                # Re-bind the walk-runner closure the pickle dropped.
                runner = backend._walk_runner()
                if backend._router is not None:
                    backend._router._walk_runner = runner
            except BaseException:
                if isinstance(config.trace, str):
                    context.close()
                raise
            session = cls(
                graph,
                config,
                context,
                backend,
                store=store,
                cache_key=key,
                from_cache=True,
                staleness_bound=staleness_bound,
                policy=policy,
                journal=journal,
            )
            session._take_warm_snapshot()
            return session

        context = config.make_context()
        if config.checkpoint is not None:
            # Every event must be replayable on resume, incl. run_start.
            context.record_events = True
        try:
            cls._emit_run_start(context, config, op_name)
            backend = config.make_backend(graph, context)
            if announce is not None:
                # Reject an impossible (op, backend) pair before paying
                # for a build it could never use.
                check_backend_support(backend, announce)
            if store is not None:
                context.emit("cache", "serve/cache-miss", key=key)
            backend.build()
            if "route" in backend.supported_ops:
                # Warm the router too: portal election draws from the
                # "router" stream, and the warm snapshot must sit after
                # every construction-time draw.
                backend.router
        except BaseException:
            if isinstance(config.trace, str):
                context.close()
            raise
        session = cls(
            graph,
            config,
            context,
            backend,
            store=store,
            cache_key=key,
            staleness_bound=staleness_bound,
            policy=policy,
            journal=journal,
        )
        session._take_warm_snapshot()
        if store is not None and key is not None:
            session._persist(key)
        return session

    @staticmethod
    def _journal_identity(graph: Graph, config: Any) -> dict[str, Any]:
        """The identity fields a journal is checked against on reopen."""
        return {
            "fingerprint": graph_fingerprint(graph),
            "seed": int(config.seed),
            "backend": str(config.backend),
        }

    @classmethod
    def recover(
        cls,
        graph: Graph,
        config: Any = None,
        *,
        journal: "Union[str, Journal]",
        store: Optional[HierarchyStore] = None,
        policy: Optional[ResiliencePolicy] = None,
        staleness_bound: float = DEFAULT_STALENESS_BOUND,
    ) -> "Session":
        """Rebuild a crashed session from its write-ahead journal.

        Opens a fresh session (store hit on the clean-build key when one
        survives, full rebuild otherwise), then replays the journaled
        updates in order with the journal detached.  Replay is
        deterministic — update ``k`` repairs from the ``serve-update-k``
        fresh stream, a pure function of (seed, k) — so the recovered
        session is bit-identical to the uninterrupted one: same warm
        structure, same store keys, same responses to the remaining
        requests.  The served high-water mark is restored so response
        indices continue where the dead process stopped.
        """
        from .config import RunConfig

        if config is None:
            config = RunConfig()
        if isinstance(journal, str):
            journal = Journal(
                journal, identity=cls._journal_identity(graph, config)
            )
        session = cls.open(
            graph,
            config,
            store=store,
            staleness_bound=staleness_bound,
            policy=policy,
        )
        from ..congest.faults import DeliveryTimeout

        replayed = failed = 0
        for update in list(journal.updates):
            try:
                session.apply_update(
                    edges_added=update.get("edges_added", ()),
                    edges_removed=update.get("edges_removed", ()),
                    nodes_down=update.get("nodes_down", ()),
                )
                replayed += 1
            except (ValueError, TypeError, DeliveryTimeout):
                # The original session saw the same deterministic
                # failure; the update changed nothing then either.
                failed += 1
        session.served = journal.served
        session.journal = journal
        session.context.emit(
            "journal",
            "serve/recovered",
            updates=replayed,
            failed_updates=failed,
            served=journal.served,
            record=journal.record_mark,
        )
        return session

    @staticmethod
    def _emit_run_start(
        context: RunContext, config: Any, op_name: str
    ) -> None:
        spec = context.fault_spec
        context.emit(
            "run_start",
            op_name,
            seed=context.seed,
            backend=config.backend,
            faults=spec.describe() if spec is not None else None,
            recovery=config.recovery,
        )

    def _take_warm_snapshot(self) -> None:
        """Freeze the post-build state every request restarts from."""
        self._warm_streams = self.context.stream_states()
        router = self.backend._router
        self._warm_router = (
            router.warm_state() if router is not None else None
        )
        plan = self.context._fault_plan
        self._warm_plan = plan.warm_state() if plan is not None else None
        self._warm_ledger_len = len(self.context.ledger)
        # Per-request routers (e.g. the clique op's dedicated one)
        # charge their portal build to the hierarchy's own ledger;
        # remember its post-build length so requests can rewind it.
        hierarchy = self.backend._hierarchy
        self._warm_hierarchy_ledger_len = (
            len(hierarchy.ledger) if hierarchy is not None else 0
        )

    def _persist(self, key: str) -> None:
        """Write the warm snapshot to the store (recorded events are
        transient run state, not built state — kept out of the entry)."""
        assert self.store is not None
        context = self.context
        saved = (context.record_events, context.recorded_events)
        context.record_events = False
        context.recorded_events = []
        try:
            path = self.store.save(
                key,
                config=self.config,
                graph=self.graph,
                context=context,
                backend=self.backend,
            )
        finally:
            context.record_events, context.recorded_events = saved
        self.cache_key = key
        context.emit("cache", "serve/cache-store", key=key, path=path)

    @property
    def build_ledger(self) -> RoundLedger:
        """The warm-up's charges (everything before the first request;
        on a cache hit these are the *stored* build charges)."""
        ledger = RoundLedger()
        charges = self.context.ledger.charges[: self._warm_ledger_len]
        for charge in charges:
            ledger.charge(charge.label, charge.rounds, **charge.detail)
        return ledger

    def close(self) -> None:
        """Emit the session-close event; close the sink if we own it."""
        if self._closed:
            return
        self._closed = True
        self.context.emit(
            "session",
            "serve/close",
            served=self.served,
            updates=self.updates_applied,
        )
        if self.journal is not None:
            self.journal.close()
        if isinstance(self.config.trace, str):
            self.context.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- request serving -----------------------------------------------------

    def request(self, op: str, **args: Any) -> SessionResponse:
        """Serve one operation (convenience wrapper over
        :meth:`submit`)."""
        return self.submit(Request(op=op, args=args))

    def serve(
        self,
        request: Request,
        *,
        arrival_s: Optional[float] = None,
        quiet: bool = False,
    ) -> dict[str, Any]:
        """Serve one request under the session's resilience policy.

        With a :class:`~repro.runtime.resilience.ResiliencePolicy`
        attached, the request runs through the governor — breaker
        fast-fail, admission control, the retry loop, and the deadline
        check — and the return value is either a response summary or a
        structured error record (``kind`` in ``{"shed",
        "deadline_exceeded", "circuit_open", "delivery_timeout"}``).
        Without a policy this is exactly ``submit(...).summary()``.
        ``arrival_s`` is the request's open-loop arrival second, which
        admission control and the deterministic sojourn clock need.
        """
        if self.governor is not None:
            return self.governor.serve(
                self, request, arrival_s=arrival_s, quiet=quiet
            )
        return self.submit(request, quiet=quiet).summary()

    def submit(
        self, request: Request, *, quiet: bool = False
    ) -> SessionResponse:
        """Serve one :class:`Request` against the warm structure.

        Restores the warm RNG/router/fault-plan snapshot first, so the
        outcome is bit-identical to a cold ``repro.run()`` of the same
        request — regardless of what was served before it.  ``quiet``
        suppresses the per-request trace bookends (the one-shot path
        uses it to keep traces identical to pre-session runs).
        """
        self._ensure_serving()
        spec = validate_request(request.op, request.args)
        check_backend_support(self.backend, request.op)
        start = self._begin_request()
        index = self.served
        self.served += 1
        if not quiet:
            self.context.emit(
                "session",
                "serve/request",
                op=request.op,
                index=index,
                id=request.id,
            )
        began = time.perf_counter()  # reprolint: disable=R003 (latency)
        result = spec.runner(
            self.backend, self.context, self.graph, dict(request.args)
        )
        wall_s = time.perf_counter() - began  # reprolint: disable=R003
        ledger = self.context.ledger.slice_from(start)
        rounds = float(ledger.total())
        if not quiet:
            self.context.emit(
                "session",
                "serve/response",
                op=request.op,
                index=index,
                rounds=rounds,
                wall_s=round(wall_s, 6),
            )
        return SessionResponse(
            op=request.op,
            result=result,
            ledger=ledger,
            rounds=rounds,
            wall_s=wall_s,
            index=index,
            request_id=request.id,
        )

    def route_batch(
        self, requests: Sequence[Request]
    ) -> list[SessionResponse]:
        """Serve several explicit-demand route requests as one instance.

        Batched admission: the demands are concatenated and forwarded
        through a single router invocation, so the batch pays one
        preparation-walk phase instead of ``len(requests)`` — riding
        the native backend's ``workers=`` sharding for the wall-clock
        win.  Every request must be ``op="route"`` with explicit
        ``sources``/``destinations`` (random demands need their own
        stream draws and are served individually).  A batch is one
        routing instance: per-request responses share the batch result
        and report amortized rounds via :meth:`SessionResponse.summary`.
        """
        if not requests:
            return []
        if len(requests) == 1:
            return [self.submit(requests[0])]
        self._ensure_serving()
        sources_parts: list[np.ndarray] = []
        dest_parts: list[np.ndarray] = []
        for request in requests:
            if request.op != "route":
                raise ValueError(
                    "route_batch only serves route requests, got "
                    f"{request.op!r}"
                )
            args = dict(request.args)
            sources = args.pop("sources", None)
            destinations = args.pop("destinations", None)
            args.pop("trace_hops", None)
            if args:
                raise ValueError(
                    "route_batch requests cannot carry "
                    f"{sorted(args)} arguments"
                )
            if sources is None or destinations is None:
                raise ValueError(
                    "route_batch requires explicit sources and "
                    "destinations on every request"
                )
            sources_parts.append(np.asarray(sources, dtype=np.int64))
            dest_parts.append(np.asarray(destinations, dtype=np.int64))
        start = self._begin_request()
        first = self.served
        self.served += len(requests)
        self.context.emit(
            "session",
            "serve/batch",
            size=len(requests),
            packets=int(sum(part.size for part in sources_parts)),
        )
        began = time.perf_counter()  # reprolint: disable=R003 (latency)
        self.backend.build()
        result = self.backend.route(
            np.concatenate(sources_parts), np.concatenate(dest_parts)
        )
        wall_s = time.perf_counter() - began  # reprolint: disable=R003
        ledger = self.context.ledger.slice_from(start)
        rounds = float(ledger.total())
        return [
            SessionResponse(
                op="route",
                result=result,
                ledger=ledger,
                rounds=rounds,
                wall_s=wall_s,
                index=first + position,
                request_id=request.id,
                batch_size=len(requests),
            )
            for position, request in enumerate(requests)
        ]

    def _begin_request(self) -> int:
        """Restore the warm snapshot; return the ledger slice start."""
        self.context.restore_streams(self._warm_streams)
        router = self.backend._router
        if router is not None and self._warm_router is not None:
            router.restore_warm_state(self._warm_router)
        plan = self.context._fault_plan
        if plan is not None and self._warm_plan is not None:
            plan.restore_warm_state(self._warm_plan)
        hierarchy = self.backend._hierarchy
        if hierarchy is not None:
            hierarchy.ledger.truncate(self._warm_hierarchy_ledger_len)
        return len(self.context.ledger)

    def _ensure_serving(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- incremental updates -------------------------------------------------

    @property
    def staleness(self) -> float:
        """Stale-vnode fraction accumulated by updates since the last
        (re)build — what :meth:`apply_update` compares against
        :attr:`staleness_bound` and the circuit breaker's
        ``staleness_trip`` watches."""
        virtual = self.backend.hierarchy.g0.virtual
        return self._stale_vnodes / max(1, virtual.count)

    def refresh(self) -> float:
        """Proactively rebuild the warm structure on the current graph.

        The explicit repair the circuit breaker triggers when staleness
        approaches the bound: bit-identical to a fresh
        ``Session.open`` of the current graph (same contract as the
        staleness-forced rebuild inside :meth:`apply_update`).  Returns
        the rebuild's total rounds.
        """
        self._ensure_serving()
        return self._rebuild(self.graph)

    @contextmanager
    def fault_window(
        self, spec: "FaultSpec", *, entropy: int
    ) -> Iterator[None]:
        """Serve requests inside the block under an extra fault spec.

        Pushes a fresh :class:`~repro.congest.faults.FaultPlan` seeded
        from ``entropy`` (chaos windows mint it from their own named
        stream) onto the context and swaps the warm-plan snapshot to
        the new plan's origin, so every request in the window restores
        *its* RNG positions — requests outside the window are untouched
        and stay bit-identical.
        """
        self._ensure_serving()
        token = self.context.push_faults(spec, entropy=entropy)
        saved_warm = self._warm_plan
        plan = self.context._fault_plan
        self._warm_plan = plan.warm_state() if plan is not None else None
        try:
            yield
        finally:
            self._warm_plan = saved_warm
            self.context.pop_faults(token)

    def apply_update(
        self,
        edges_added: Iterable = (),
        edges_removed: Iterable = (),
        nodes_down: Iterable = (),
    ) -> UpdateReport:
        """Patch the warm structure around graph churn.

        Removed edges and downed nodes kill their virtual nodes; the
        overlay is repaired around them
        (:func:`~repro.core.hierarchy.repair_overlay`) and portal slots
        pointing at dead virtual nodes are re-elected from live
        boundary candidates — all charged under ``serve/``.  Added
        edges only accrue staleness (the embedding does not carry
        traffic over them until a rebuild).  When the cumulative stale
        fraction exceeds :attr:`staleness_bound`, the session falls
        back to a full rebuild on the updated graph — bit-identical to
        a fresh ``Session.open`` of that graph.  Either way the session
        re-persists under the updated content hash.
        """
        self._ensure_serving()
        # Start from the canonical warm snapshot, exactly like a
        # request: the repair must be a pure function of (seed, update
        # index), not of whatever stream state the previous request
        # left behind — otherwise a journal replay (which serves no
        # requests first) diverges from the live session it rebuilds.
        self._begin_request()
        added = tuple(tuple(edge) for edge in edges_added)
        removed = tuple(
            (int(edge[0]), int(edge[1])) for edge in edges_removed
        )
        down = tuple(int(node) for node in nodes_down)
        if self.journal is not None:
            # Write-ahead: the journal always holds a superset of the
            # applied churn, so a crash mid-apply replays this update.
            self.journal.append_update(
                {
                    "edges_added": [list(edge) for edge in added],
                    "edges_removed": [list(edge) for edge in removed],
                    "nodes_down": list(down),
                },
                record=self._journal_record,
            )
        new_graph = self._updated_graph(added, removed)
        removed_eids = self._edge_ids(removed)
        virtual = self.backend.hierarchy.g0.virtual
        dead_mask = np.isin(virtual.graph.arc_edge, removed_eids)
        if down:
            dead_mask |= np.isin(
                virtual.host, np.asarray(down, dtype=np.int64)
            )
        dead_vnodes = np.flatnonzero(dead_mask)
        self._stale_vnodes += int(dead_vnodes.size) + 2 * len(added)
        staleness = self._stale_vnodes / max(1, virtual.count)
        self.updates_applied += 1
        self.context.emit(
            "session",
            "serve/update",
            edges_added=len(added),
            edges_removed=len(removed),
            nodes_down=len(down),
            staleness=round(staleness, 6),
        )

        if staleness > self.staleness_bound:
            cost = self._rebuild(new_graph)
            return UpdateReport(
                edges_added=added,
                edges_removed=removed,
                nodes_down=down,
                rebuilt=True,
                staleness=0.0,
                repaired={},
                dropped={},
                reelected=0,
                cost_rounds=cost,
                cache_key=self.cache_key,
            )

        start = len(self.context.ledger)
        repair_rng = self.context.fresh_stream(
            f"serve-update-{self.updates_applied}"
        )
        report = repair_overlay(
            self.backend.hierarchy,
            dead_vnodes,
            repair_rng,
            context=_ServeLedger(self.context),
        )
        reelected = self._reelect_dead_portals(dead_vnodes, repair_rng)
        cost = float(
            self.context.ledger.slice_from(start).total()
        )
        self.graph = new_graph
        self._advance_lineage(added, removed, down)
        if self.store is not None:
            key = store_key(new_graph, self.config, lineage=self.lineage)
            self._persist(key)
        # The warm state moved: future requests restart from the
        # repaired structure, not the pre-update snapshot.
        self._take_warm_snapshot()
        return UpdateReport(
            edges_added=added,
            edges_removed=removed,
            nodes_down=down,
            rebuilt=False,
            staleness=staleness,
            repaired=dict(report.replaced),
            dropped=dict(report.dropped),
            reelected=reelected,
            cost_rounds=cost,
            cache_key=self.cache_key,
        )

    def _updated_graph(
        self, added: tuple, removed: tuple
    ) -> Graph:
        """The post-churn topology (same node count; edge list edited)."""
        weighted = isinstance(self.graph, WeightedGraph)
        edges = [
            (int(u), int(v)) for u, v in self.graph.edge_array
        ]
        weights = (
            [float(w) for w in self.graph.weights] if weighted else None
        )
        for u, v in removed:
            try:
                position = edges.index((u, v))
            except ValueError:
                try:
                    position = edges.index((v, u))
                except ValueError:
                    raise ValueError(
                        f"cannot remove edge ({u}, {v}): not present"
                    ) from None
            edges.pop(position)
            if weights is not None:
                weights.pop(position)
        for edge in added:
            if weighted:
                if len(edge) != 3:
                    raise ValueError(
                        "weighted sessions need (u, v, weight) "
                        f"additions, got {edge!r}"
                    )
                edges.append((int(edge[0]), int(edge[1])))
                assert weights is not None
                weights.append(float(edge[2]))
            else:
                edges.append((int(edge[0]), int(edge[1])))
        if weighted:
            return WeightedGraph(
                self.graph.num_nodes, edges, np.asarray(weights)
            )
        return Graph(self.graph.num_nodes, edges)

    def _edge_ids(self, removed: tuple) -> np.ndarray:
        """Edge ids (in the *current* built graph) of removed edges."""
        if not removed:
            return np.empty(0, dtype=np.int64)
        pairs = [
            (int(u), int(v)) for u, v in self.graph.edge_array
        ]
        ids = []
        used: set[int] = set()
        for u, v in removed:
            eid = None
            for candidate, pair in enumerate(pairs):
                if candidate in used:
                    continue
                if pair == (u, v) or pair == (v, u):
                    eid = candidate
                    break
            if eid is None:
                raise ValueError(
                    f"cannot remove edge ({u}, {v}): not present"
                )
            used.add(eid)
            ids.append(eid)
        return np.asarray(ids, dtype=np.int64)

    def _reelect_dead_portals(
        self, dead_vnodes: np.ndarray, rng: np.random.Generator
    ) -> int:
        """Replace portal-table entries that point at dead vnodes."""
        router = self.backend._router
        if router is None or dead_vnodes.size == 0:
            return 0
        portals = router.portals
        hierarchy = self.backend.hierarchy
        dead = set(int(v) for v in dead_vnodes.tolist())

        def is_dead(vnode: int) -> bool:
            return int(vnode) in dead

        reelected = 0
        num_vnodes = hierarchy.g0.virtual.count
        election_rounds = float(np.log2(max(2, num_vnodes)))
        for level_index, table in enumerate(portals.tables, start=1):
            stale = np.isin(table, np.asarray(sorted(dead)))
            if not stale.any():
                continue
            parts = hierarchy.levels[level_index - 1].parts
            rows, siblings = np.nonzero(stale)
            picks: dict[tuple[int, int], int] = {}
            for row, sibling in zip(rows.tolist(), siblings.tolist()):
                part = int(parts[row])
                slot = (part, int(sibling))
                if slot not in picks:
                    picks[slot] = portals.reelect(
                        level_index,
                        part,
                        int(sibling),
                        is_dead,
                        rng=rng,
                    )
                    reelected += 1
                    self.context.charge(
                        "serve/reelect",
                        election_rounds
                        * hierarchy.emulation_to_g(level_index),
                        level=level_index,
                        part=part,
                        sibling=int(sibling),
                    )
                table[row, sibling] = picks[slot]
        return reelected

    def _advance_lineage(
        self, added: tuple, removed: tuple, down: tuple
    ) -> None:
        """Extend the content-hash lineage with this update's identity.

        A repaired structure is a fresh build *plus* an update chain —
        not a pure function of (graph, config) — so its store key must
        never collide with a clean build of the updated graph."""
        digest = hashlib.sha256()
        digest.update(self.lineage.encode())
        digest.update(graph_fingerprint(self.graph).encode())
        digest.update(repr((added, removed, down)).encode())
        self.lineage = digest.hexdigest()

    def _rebuild(self, new_graph: Graph) -> float:
        """Full rebuild on the updated graph (same seed, shared sink).

        The new epoch is bit-identical to a fresh ``Session.open`` of
        ``new_graph`` under the session's config — which is exactly
        what the equivalence tests assert.
        """
        self.context.emit("session", "serve/rebuild", n=new_graph.num_nodes)
        sink = self.context.sink
        context = RunContext(
            seed=self.config.seed,
            params=self.config.params,
            sink=sink,
            faults=self.config.faults,
            recovery=self.config.recovery,
        )
        context.record_events = self.context.record_events
        backend = self.config.make_backend(new_graph, context)
        backend.build()
        if "route" in backend.supported_ops:
            backend.router
        self.graph = new_graph
        self.context = context
        self.backend = backend
        self.lineage = ""
        self._stale_vnodes = 0
        self._take_warm_snapshot()
        if self.store is not None:
            self._persist(store_key(new_graph, self.config))
        return float(context.ledger.total())


def serve_jsonl(
    session: Session,
    records: Iterable[Mapping[str, Any]],
    *,
    batch: int = 0,
) -> Iterator[dict[str, Any]]:
    """Drive a session from decoded JSONL records; yield responses.

    Request records are ``{"op": ..., "args": {...}, "id": ...}``
    (optionally carrying ``"arrival_s"``, the open-loop arrival second
    the admission controller keys on); update records are ``{"update":
    {"edges_added": [...], "edges_removed": [...], "nodes_down":
    [...]}}``.  A malformed record — and a request a live fault plan
    defeats (:class:`~repro.congest.faults.DeliveryTimeout`) — yields
    an ``{"error": ...}`` response carrying the request ``id`` (and,
    for delivery timeouts, the ``culprits`` triples) and serving
    continues: the loop outlives any single record.  With ``batch >
    0``, consecutive explicit-demand route requests are grouped (up to
    ``batch``) into one routing instance; a session governed by a
    :class:`~repro.runtime.resilience.ResiliencePolicy` serves requests
    individually instead (admission is per-request).  When the session
    carries a journal, the served high-water mark is advanced after
    every fully consumed record.
    """
    from ..congest.faults import DeliveryTimeout

    recoverable = (ValueError, TypeError, DeliveryTimeout)
    pending: list[Request] = []

    def error_record(
        error: Exception, **identity: Any
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"error": str(error)}
        payload.update(identity)
        if isinstance(error, DeliveryTimeout):
            payload["kind"] = "delivery_timeout"
            payload["culprits"] = [
                list(culprit) for culprit in error.culprits
            ]
        return payload

    def flush() -> Iterator[dict[str, Any]]:
        if pending:
            group = list(pending)
            pending.clear()
            try:
                responses = session.route_batch(group)
            except recoverable as error:
                yield error_record(
                    error, ids=[request.id for request in group]
                )
                return
            for response in responses:
                yield response.summary()

    # After a recovery the caller skips the already-consumed records,
    # so this generator's local count continues from the journal's
    # existing high-water mark instead of regressing to zero.
    base_record = (
        session.journal.record_mark if session.journal is not None else 0
    )

    def mark(consumed: int) -> None:
        if session.journal is not None and not pending:
            session.journal.mark_served(
                session.served, record=base_record + consumed
            )

    consumed = 0
    for record in records:
        consumed += 1
        if "update" in record:
            yield from flush()
            update = dict(record["update"])
            # Stamp the journaled update with this record's index so a
            # torn tail can never double-apply it (replay + re-consume).
            session._journal_record = base_record + consumed
            try:
                report = session.apply_update(
                    edges_added=update.get("edges_added", ()),
                    edges_removed=update.get("edges_removed", ()),
                    nodes_down=update.get("nodes_down", ()),
                )
            except recoverable as error:
                yield error_record(error, record=dict(record))
                mark(consumed)
                continue
            finally:
                session._journal_record = 0
            yield report.summary()
            mark(consumed)
            continue
        try:
            request = Request(
                op=record.get("op", ""),
                args=dict(record.get("args", {})),
                id=record.get("id"),
            )
        except (ValueError, TypeError) as error:
            yield error_record(
                error, id=record.get("id"), record=dict(record)
            )
            mark(consumed)
            continue
        if session.governor is not None:
            yield from flush()
            arrival = record.get("arrival_s")
            # The governor only absorbs DeliveryTimeout; a bad request
            # (unsupported op/backend pair, malformed args) still
            # raises and must not kill the loop, same as ungoverned.
            try:
                yield session.serve(
                    request,
                    arrival_s=(
                        float(arrival) if arrival is not None else None
                    ),
                )
            except recoverable as error:
                yield error_record(
                    error, id=request.id, record=dict(record)
                )
            mark(consumed)
            continue
        batchable = (
            batch > 0
            and request.op == "route"
            and "sources" in request.args
            and "destinations" in request.args
        )
        if batchable:
            pending.append(request)
            if len(pending) >= batch:
                yield from flush()
                mark(consumed)
            continue
        yield from flush()
        try:
            yield session.submit(request).summary()
        except recoverable as error:
            yield error_record(
                error, id=request.id, record=dict(record)
            )
        mark(consumed)
    yield from flush()
    mark(consumed)
