"""Checkpoint/resume: snapshot a run at a phase boundary, continue later.

A run started with ``RunConfig(checkpoint=path)`` records every trace
event it emits and, once the build phase completes, pickles the whole
execution state — operation, arguments, config, graph, context (RNG
stream positions, ledger, fault plan, recorded events), and backend
(with its built hierarchy) — into one file.  :func:`resume` loads that
file and finishes the run:

    >>> outcome = run("route", graph, config=RunConfig(
    ...     seed=7, checkpoint="run.ckpt"))
    >>> resumed = resume("run.ckpt")          # bit-identical outcome

Everything is pickled as *one* object graph, so shared identities
survive: the context's ``"router"`` stream and the router's ``rng`` stay
the same generator after a round trip, which is what makes the resumed
run consume randomness exactly where the original left off.  The two
deliberately unpicklable members — the trace sink (an open file handle)
and the native backend's walk-runner closure — are dropped at snapshot
time and re-attached on resume.

The file format is a pickled dict with a ``version`` field; loading a
checkpoint written by a different format version fails loudly rather
than mis-resuming.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import replace
from typing import Union

from ..hashing import graph_fingerprint
from .events import EventSink, JsonlSink, NullSink
from .journal import _fsync_directory

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "load_checkpoint",
    "resume",
    "write_checkpoint",
]

#: Format version embedded in every checkpoint file.  Version 2 added
#: the mandatory ``graph_fingerprint`` integrity field.
CHECKPOINT_VERSION = 2


class CheckpointError(RuntimeError):
    """The checkpoint file is unreadable, corrupt, or incompatible."""


def write_checkpoint(
    path: str,
    *,
    op: str,
    op_args: dict,
    config,
    graph,
    context,
    backend,
) -> None:
    """Snapshot a run into ``path`` (atomic: temp file + fsync +
    rename + parent-directory fsync).

    The config's ``trace`` member may hold an open sink, so it is
    stripped (the context's recorded events carry the trace across the
    boundary); everything else is pickled as one object graph.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "op": op,
        "op_args": dict(op_args),
        "config": replace(config, trace=None),
        "graph": graph,
        "graph_fingerprint": graph_fingerprint(graph),
        "context": context,
        "backend": backend,
    }
    directory = os.path.dirname(os.path.abspath(path))
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=".ckpt-", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
            # fsync before the rename: os.replace is atomic in the
            # namespace but says nothing about the *data* reaching the
            # disk — a crash after the rename could otherwise leave a
            # torn pickle behind the final name.
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
        # ... and the rename itself is only durable once the parent
        # directory's entry is synced.
        _fsync_directory(directory)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise


def load_checkpoint(path: str, expect_graph=None) -> dict:
    """Load and validate a checkpoint file written by
    :func:`write_checkpoint`.

    Validation covers the format version, the required fields, and the
    payload's content integrity: the recorded ``graph_fingerprint``
    must match the pickled graph (a corrupted or hand-edited file fails
    here, not as a downstream shape error), and — when ``expect_graph``
    is given — must also match the graph the caller intends to resume
    against, so a checkpoint can never be silently replayed onto a
    different topology.
    """
    try:
        with open(path, "rb") as stream:
            payload = pickle.load(stream)
    except (OSError, pickle.UnpicklingError, EOFError) as error:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {error}"
        ) from error
    if not isinstance(payload, dict) or "version" not in payload:
        raise CheckpointError(
            f"{path!r} is not a repro checkpoint (no version field)"
        )
    if payload["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version "
            f"{payload['version']}, this build reads "
            f"{CHECKPOINT_VERSION}"
        )
    missing = {
        "op", "op_args", "config", "graph", "graph_fingerprint",
        "context", "backend",
    } - set(payload)
    if missing:
        raise CheckpointError(
            f"checkpoint {path!r} is missing fields {sorted(missing)}"
        )
    recorded = payload["graph_fingerprint"]
    actual = graph_fingerprint(payload["graph"])
    if recorded != actual:
        raise CheckpointError(
            f"checkpoint {path!r} failed integrity check: recorded "
            f"graph fingerprint {recorded[:12]}... does not match the "
            f"payload graph ({actual[:12]}...); the file is corrupt or "
            "was tampered with"
        )
    if expect_graph is not None:
        expected = graph_fingerprint(expect_graph)
        if recorded != expected:
            raise CheckpointError(
                f"checkpoint {path!r} was written for a different "
                f"graph (fingerprint {recorded[:12]}..., expected "
                f"{expected[:12]}...); resume it against the graph it "
                "snapshotted"
            )
    return payload


def resume(
    path: str,
    sink: Union[None, str, EventSink] = None,
):
    """Continue a checkpointed run to completion.

    Args:
        path: checkpoint file written by a ``RunConfig(checkpoint=...)``
            run.
        sink: where the resumed run's trace goes — ``None`` (discard), a
            path string (JSONL file), or an :class:`EventSink` instance.
            The events recorded *before* the snapshot are replayed into
            it first, so the resumed trace is complete, not a suffix.

    Returns:
        The :class:`~repro.runtime.config.RunOutcome`, identical (same
        results, ledger, and trace) to the outcome the uninterrupted
        run produced.
    """
    from .config import RunOutcome
    from .ops import lookup_op

    payload = load_checkpoint(path)
    op = payload["op"]
    config = payload["config"]
    graph = payload["graph"]
    context = payload["context"]
    backend = payload["backend"]
    runner = lookup_op(op).runner

    owns_sink = isinstance(sink, str)
    resolved: EventSink
    if isinstance(sink, str):
        resolved = JsonlSink(sink)
    elif sink is None:
        resolved = NullSink()
    else:
        resolved = sink
    context.sink = resolved
    # Replay the pre-snapshot trace verbatim (straight to the sink:
    # context.emit would renumber and re-record them).
    for event in context.recorded_events:
        resolved.emit(event)
    # The native walk runner is a closure over the backend and was
    # dropped at snapshot time; re-bind it on the backend's router.
    runner_closure = backend._walk_runner()
    if backend._router is not None:
        backend._router._walk_runner = runner_closure
    try:
        result = runner(backend, context, graph, dict(payload["op_args"]))
    finally:
        context.emit(
            "run_end",
            op,
            total_rounds=float(context.ledger.total()),
        )
        if owns_sink:
            context.close()
    return RunOutcome(
        op=op,
        config=config,
        result=result,
        context=context,
        backend=backend,
    )
