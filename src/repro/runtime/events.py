"""Structured trace events and pluggable sinks.

Every run executed through :class:`repro.runtime.RunContext` emits a
stream of :class:`TraceEvent` records — phase boundaries with wall time,
per-label ledger charges, walk-batch and scheduler statistics — to an
:class:`EventSink`.  Three sinks ship with the library:

* :class:`NullSink` — drops everything (the default; zero overhead).
* :class:`MemorySink` — keeps events in a list (tests, notebooks).
* :class:`JsonlSink` — appends one JSON object per event to a file,
  the format ``repro <cmd> --trace out.jsonl`` writes.

The JSONL schema is one object per line::

    {"seq": <int>, "kind": <str>, "name": <str>, "payload": {...}}

``kind`` is one of the :data:`EVENT_KINDS`; ``name`` identifies the
phase/label/batch; ``payload`` is kind-specific.  ``seq`` is a
per-context monotone counter, so a trace can be re-ordered and joined
after concatenation.  All payload values are plain JSON scalars —
numpy types are converted at emission time, so a trace file round-trips
through ``json`` without custom decoders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl_trace",
    "sum_ledger_charges",
]

#: The trace-event vocabulary (see docs/architecture.md for the schema).
EVENT_KINDS = (
    "run_start",      # payload: seed, params, backend
    "run_end",        # payload: wall_s
    "phase_start",    # payload: free-form context
    "phase_end",      # payload: wall_s + free-form context
    "ledger_charge",  # payload: rounds + the Charge.detail dict
    "walk_batch",     # payload: walks, steps, schedule_rounds, ...
    "scheduler",      # payload: paths, rounds, ...
    "backend",        # payload: backend-specific execution stats
    "fault",          # payload: round, sender, target + fault detail
    "recovery",       # payload: detection/failover/repair accounting
    "session",        # payload: session lifecycle + request bookends
    "cache",          # payload: hierarchy-store hit/miss/store/evict
    "resilience",     # payload: governor verdicts (retry/shed/trip/...)
    "journal",        # payload: write-ahead journal lifecycle + recovery
    "chaos",          # payload: injected chaos actions (kill/corrupt/...)
)


def _jsonable(value):
    """Coerce numpy scalars/arrays (and other oddballs) to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    # numpy scalars expose .item(); arrays expose .tolist().
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return _jsonable(value.tolist())
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    Attributes:
        seq: per-context monotone sequence number.
        kind: event kind, one of :data:`EVENT_KINDS`.
        name: phase / ledger label / batch identifier.
        payload: kind-specific details (JSON-scalar values only).
    """

    seq: int
    kind: str
    name: str
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSONL wire form of this event."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "payload": _jsonable(self.payload),
        }


class EventSink:
    """Where trace events go.  Subclasses override :meth:`emit`."""

    def emit(self, event: TraceEvent) -> None:
        """Record one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources (no-op by default)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(EventSink):
    """Discards every event (the default sink)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class MemorySink(EventSink):
    """Collects events in :attr:`events` for inspection."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Events with the given ``kind``, in emission order."""
        return [event for event in self.events if event.kind == kind]


class JsonlSink(EventSink):
    """Writes one JSON object per event to ``path`` (or a file object)."""

    def __init__(self, path_or_handle: "str | IO[str]") -> None:
        if isinstance(path_or_handle, str):
            self._handle: IO[str] = open(path_or_handle, "w")
            self._owns_handle = True
        else:
            self._handle = path_or_handle
            self._owns_handle = False

    def emit(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


def read_jsonl_trace(path: str) -> Iterator[TraceEvent]:
    """Parse a trace file written by :class:`JsonlSink`.

    Yields :class:`TraceEvent` records; raises ``ValueError`` on a
    malformed line (the file is a contract, not best-effort output).
    """
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: not valid JSON: {error}"
                ) from error
            missing = {"seq", "kind", "name", "payload"} - set(record)
            if missing:
                raise ValueError(
                    f"{path}:{number}: trace record is missing {sorted(missing)}"
                )
            yield TraceEvent(
                seq=int(record["seq"]),
                kind=str(record["kind"]),
                name=str(record["name"]),
                payload=dict(record["payload"]),
            )


def sum_ledger_charges(
    events: Iterable[TraceEvent], prefix: str = ""
) -> float:
    """Total ``rounds`` across ``ledger_charge`` events.

    Args:
        events: any iterable of trace events.
        prefix: only count charges whose label starts with this.
    """
    return float(
        sum(
            event.payload.get("rounds", 0.0)
            for event in events
            if event.kind == "ledger_charge" and event.name.startswith(prefix)
        )
    )
