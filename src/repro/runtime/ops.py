"""The operation table: one dispatch surface for every execution path.

Before this module, :func:`repro.runtime.config.run` owned a private
``_OP_RUNNERS`` dict, :func:`repro.runtime.checkpoint.resume` imported
it through the back door, and the session layer would have needed a
third copy.  Every way to execute an operation — one-shot ``run()``,
checkpoint resume, and :class:`~repro.runtime.session.Session` request
serving — now goes through the same :data:`OP_TABLE` of
:class:`OpSpec` entries.

Each spec declares, next to its runner, the operation's *argument
vocabulary*.  That lets :func:`validate_request` reject unknown ops and
misspelled argument keywords up front, at request-construction time,
instead of deep inside a runner after an expensive build (the
pre-session failure mode: ``run("mincut", g, nmu_trees=3)`` surfaced as
a ``TypeError`` from :func:`~repro.core.mincut.approximate_min_cut`
after the hierarchy was already built).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

from ..graphs.generators import with_random_weights
from ..graphs.graph import Graph, WeightedGraph
from .backends import Backend, UnsupportedOnBackend
from .context import RunContext

__all__ = [
    "OPS",
    "OP_TABLE",
    "OpSpec",
    "lookup_op",
    "summarize_result",
    "validate_request",
]

Runner = Callable[[Backend, RunContext, Graph, Dict[str, Any]], Any]


@dataclass(frozen=True)
class OpSpec:
    """One operation the runtime can execute.

    Attributes:
        name: the public operation name (``run(name, ...)``).
        runner: executes the op on ``(backend, context, graph, args)``;
            ``args`` is a private mutable dict the runner may pop from.
        arg_names: every argument keyword the op accepts — the
            validation vocabulary of :func:`validate_request`.
        backend_method: the :class:`Backend` method the op ultimately
            calls; used to reject unsupported (op, backend) pairs before
            any build work happens.
    """

    name: str
    runner: Runner
    arg_names: frozenset[str]
    backend_method: str


def _op_build(
    backend: Backend, context: RunContext, graph: Graph, args: Dict[str, Any]
) -> Any:
    _expect_no_args("build", args)
    return backend.build()


def _op_route(
    backend: Backend, context: RunContext, graph: Graph, args: Dict[str, Any]
) -> Any:
    sources = args.pop("sources", None)
    destinations = args.pop("destinations", None)
    packets = args.pop("packets", None)
    trace_hops = bool(args.pop("trace_hops", False))
    _expect_no_args("route", args)
    if (sources is None) != (destinations is None):
        raise ValueError(
            "route: provide both sources and destinations, or neither"
        )
    if sources is None:
        # The demand comes from its own stream: changing the workload
        # can never perturb the structure built from other streams.
        n = graph.num_nodes
        workload = context.stream("workload")
        if packets:
            sources = workload.integers(0, n, size=int(packets))
            destinations = workload.integers(0, n, size=int(packets))
        else:
            sources = np.arange(n)
            destinations = workload.permutation(n)
    elif packets is not None:
        raise ValueError("route: packets= conflicts with explicit demands")
    backend.build()
    return backend.route(
        np.asarray(sources), np.asarray(destinations), trace=trace_hops
    )


def _op_mst(
    backend: Backend, context: RunContext, graph: Graph, args: Dict[str, Any]
) -> Any:
    weights = args.pop("weights", None)
    _expect_no_args("mst", args)
    if weights is not None:
        weighted = WeightedGraph(
            graph.num_nodes, list(graph.edges()), weights
        )
    elif isinstance(graph, WeightedGraph):
        weighted = graph
    else:
        weighted = with_random_weights(graph, context.stream("weights"))
    return backend.mst(weighted)


def _op_mincut(
    backend: Backend, context: RunContext, graph: Graph, args: Dict[str, Any]
) -> Any:
    return backend.min_cut(**args)


def _op_clique(
    backend: Backend, context: RunContext, graph: Graph, args: Dict[str, Any]
) -> Any:
    sample_fraction = float(args.pop("sample_fraction", 1.0))
    _expect_no_args("clique", args)
    return backend.clique(sample_fraction=sample_fraction)


def _expect_no_args(op: str, args: Dict[str, Any]) -> None:
    if args:
        raise TypeError(
            f"run({op!r}, ...) got unexpected arguments {sorted(args)}"
        )


#: Every operation the runtime understands, keyed by name.
OP_TABLE: Dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec(
            "build",
            _op_build,
            frozenset(),
            backend_method="build",
        ),
        OpSpec(
            "route",
            _op_route,
            frozenset(
                {"sources", "destinations", "packets", "trace_hops"}
            ),
            backend_method="route",
        ),
        OpSpec(
            "mst",
            _op_mst,
            frozenset({"weights"}),
            backend_method="mst",
        ),
        OpSpec(
            "mincut",
            _op_mincut,
            frozenset(
                {"eps", "num_trees", "two_respecting", "use_weights"}
            ),
            backend_method="min_cut",
        ),
        OpSpec(
            "clique",
            _op_clique,
            frozenset({"sample_fraction"}),
            backend_method="clique",
        ),
    )
}

#: The operation names, sorted — the public catalogue.
OPS: Tuple[str, ...] = tuple(sorted(OP_TABLE))


def lookup_op(op: str) -> OpSpec:
    """The :class:`OpSpec` for ``op``, or ``ValueError`` naming it."""
    try:
        return OP_TABLE[op]
    except KeyError:
        raise ValueError(
            f"unknown operation {op!r}; choose from {OPS}"
        ) from None


def validate_request(op: str, args: Mapping[str, Any]) -> OpSpec:
    """Validate an ``(op, args)`` pair before any work happens.

    Raises:
        ValueError: unknown operation name.
        TypeError: argument keywords outside the op's vocabulary; the
            message names every offending key.
    """
    spec = lookup_op(op)
    unknown = sorted(set(args) - spec.arg_names)
    if unknown:
        raise TypeError(
            f"run({op!r}, ...) got unexpected arguments {unknown}"
        )
    return spec


def check_backend_support(backend: Backend, op: str) -> None:
    """Reject an (op, backend) pair the backend cannot execute.

    Raised *before* the build phase, so e.g. ``run("mst", g,
    config=RunConfig(backend="native"))`` fails in milliseconds instead
    of after constructing a hierarchy it could never use.
    """
    spec = lookup_op(op)
    if spec.backend_method not in backend.supported_ops:
        raise UnsupportedOnBackend(backend, spec.backend_method)


def summarize_result(op: str, result: Any) -> Dict[str, Any]:
    """A small JSON-safe summary of an op's native result object.

    This is the ``result`` payload of one ``repro serve`` JSONL
    response — the scalar facts a service client acts on, not the full
    arrays (fetch those through the Python API if needed).
    """
    if op == "build":
        return {
            "depth": int(result.depth),
            "beta": int(result.beta),
            "tau_mix": int(result.g0.tau_mix),
            "construction_rounds": float(result.construction_rounds()),
        }
    if op == "route":
        return {
            "delivered": bool(result.delivered),
            "packets": int(result.num_packets),
            "phases": int(result.num_phases),
            "rounds": float(result.cost_rounds),
        }
    if op == "mst":
        return {
            "total_weight": float(result.total_weight),
            "edges": len(result.edge_ids),
            "iterations": int(result.num_iterations),
            "rounds": float(result.rounds),
        }
    if op == "mincut":
        return {
            "cut_value": float(result.cut_value),
            "trees": int(result.num_trees),
            "rounds": float(result.rounds),
        }
    if op == "clique":
        return {
            "delivered": bool(result.delivered),
            "messages": int(result.num_messages),
            "phases": int(result.num_phases),
            "rounds": float(result.rounds),
        }
    raise ValueError(f"unknown operation {op!r}; choose from {OPS}")
