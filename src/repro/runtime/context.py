"""The execution context: one object that owns a run's shared state.

Before this layer existed, every entry point hand-rolled the same
wiring: an ad-hoc ``np.random.default_rng((seed, k))`` per component
(with magic offsets ``k``), a :class:`~repro.params.Params`, and a
:class:`~repro.core.ledger.RoundLedger` threaded positionally through
the pipeline.  :class:`RunContext` replaces all three:

* **Named RNG streams** — ``ctx.stream("hierarchy")`` derives a
  deterministic generator from ``(seed, sha256(name))``.  Streams are
  independent by name, so adding a consumer (or drawing more from one
  stream) never perturbs another — the bug class where ``--packets``
  changed the routing *structure* because workload sampling shared the
  construction stream.
* **One ledger** — every operation's round charges accumulate in
  ``ctx.ledger``; each charge is also emitted as a ``ledger_charge``
  trace event.
* **Structured tracing** — ``ctx.phase("route")`` brackets a pipeline
  stage with ``phase_start``/``phase_end`` events carrying wall time;
  ``ctx.emit(...)`` records walk-batch/scheduler/backend stats.
"""

from __future__ import annotations

import copy
import time
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from ..congest.detector import CrashView, crash_view
from ..congest.faults import FaultPlan, FaultRecord, FaultSpec
from ..core.ledger import Charge, RoundLedger
from ..params import Params
from ..rng import derive_rng, stream_entropy
from .events import EventSink, NullSink, TraceEvent

__all__ = ["RunContext"]

RECOVERY_MODES = ("fail-fast", "self-heal")


class RunContext:
    """Owns a run's seed, params, ledger, and trace sink.

    Attributes:
        seed: the base seed; every named stream derives from it.
        params: construction constants shared by all operations.
        ledger: the run-wide round ledger (charges from every operation
            executed through this context).
        sink: where trace events go (default: :class:`NullSink`).
        fault_spec: the run's :class:`~repro.congest.faults.FaultSpec`,
            or ``None``; :attr:`fault_plan` binds it to the context's
            dedicated ``"faults"`` RNG stream.
        recovery: ``"fail-fast"`` (crash windows that outlive retries
            raise, the PR-4 contract) or ``"self-heal"`` (the failure
            detector publishes a crash view and recovery code routes
            around / waits out the windows, charging ``recovery/*``).
    """

    def __init__(
        self,
        seed: int = 0,
        params: Optional[Params] = None,
        sink: Optional[EventSink] = None,
        faults: "Optional[FaultSpec | str]" = None,
        recovery: str = "fail-fast",
    ) -> None:
        self.seed = int(seed)
        self.params = params or Params.default()
        self.ledger = RoundLedger()
        self.sink = sink or NullSink()
        if isinstance(faults, str):
            faults = FaultSpec.parse(faults)
        self.fault_spec = faults
        if recovery not in RECOVERY_MODES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_MODES}, "
                f"got {recovery!r}"
            )
        self.recovery = recovery
        self._fault_plan: Optional[FaultPlan] = None
        self._crash_views: dict[int, Optional[CrashView]] = {}
        self._seq = 0
        self._streams: dict[str, np.random.Generator] = {}
        # Checkpoint support: when enabled, every emitted event is also
        # kept here so a resumed run can replay the trace verbatim.
        self.record_events = False
        self.recorded_events: list[TraceEvent] = []

    # -- named RNG streams ---------------------------------------------------

    def stream(self, name: str) -> np.random.Generator:
        """The named RNG stream, created on first use and then cached.

        The same name always returns the *same generator object* within
        one context, so a stream advances monotonically no matter how
        many call sites share it; two contexts with the same seed
        produce identical streams.  Distinct names are statistically
        independent (the name is hashed into the seed material).
        """
        generator = self._streams.get(name)
        if generator is None:
            generator = derive_rng(self.seed, stream_entropy(name))
            self._streams[name] = generator
        return generator

    def fresh_stream(self, name: str) -> np.random.Generator:
        """A new generator for ``name``, independent of :meth:`stream`.

        Unlike :meth:`stream` this is *not* cached: every call restarts
        the stream at its origin.  Use it when two runs must consume
        identical randomness regardless of what else the context did
        (e.g. the cross-backend equivalence contract).
        """
        return derive_rng(self.seed, stream_entropy(name))

    def stream_states(self) -> dict[str, dict]:
        """Snapshot the position of every cached stream (deep copies).

        The session layer captures this right after the warm-up build;
        restoring it before each request puts every generator back at
        the position a cold run would see after its own build, which is
        what makes warm-served results bit-identical to cold runs.
        """
        return {
            name: copy.deepcopy(generator.bit_generator.state)
            for name, generator in self._streams.items()
        }

    def restore_streams(self, states: dict[str, dict]) -> None:
        """Rewind cached streams to a :meth:`stream_states` snapshot.

        Streams present in the snapshot are repositioned; streams
        created *after* the snapshot are forgotten, so the next
        :meth:`stream` call re-derives them at their origin — exactly
        where a cold run would first meet them.
        """
        for name in list(self._streams):
            if name in states:
                self._streams[name].bit_generator.state = copy.deepcopy(
                    states[name]
                )
            else:
                del self._streams[name]

    # -- faults --------------------------------------------------------------

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        """The run's :class:`FaultPlan`, or ``None`` without faults.

        Built lazily — and only once, so all consumers (network runs,
        the router's modeled retries) share one plan and its fault log.
        The plan draws exclusively from the context's ``"faults"``
        stream, so enabling faults cannot perturb any other stream, and
        every injected fault is mirrored as a ``"fault"`` trace event.
        """
        if self.fault_spec is None or self.fault_spec.is_null:
            return None
        if self._fault_plan is None:
            self._fault_plan = FaultPlan(
                self.fault_spec,
                rng=self.stream("faults"),
                on_fault=self._emit_fault,
            )
        return self._fault_plan

    def push_faults(
        self, spec: FaultSpec, *, entropy: int
    ) -> "tuple[Optional[FaultPlan], Optional[FaultSpec]]":
        """Temporarily replace the run's fault plan with a fresh one.

        Builds a :class:`FaultPlan` for ``spec`` seeded from
        ``derive_rng(entropy)`` — chaos windows pass entropy minted
        from their own named stream, so a window cannot perturb the
        ``"faults"`` stream — installs it as the active plan, and
        returns a token (the displaced plan and spec) that
        :meth:`pop_faults` takes.  Crash views are invalidated both
        ways because they cache per-plan state.
        """
        token = (self._fault_plan, self.fault_spec)
        self.fault_spec = spec
        self._fault_plan = FaultPlan(
            spec,
            rng=derive_rng(entropy),
            on_fault=self._emit_fault,
        )
        self._crash_views.clear()
        return token

    def pop_faults(
        self,
        token: "tuple[Optional[FaultPlan], Optional[FaultSpec]]",
    ) -> None:
        """Restore the plan/spec that :meth:`push_faults` displaced."""
        self._fault_plan, self.fault_spec = token
        self._crash_views.clear()

    def crash_view_for(self, num_nodes: int) -> Optional[CrashView]:
        """The failure detector's crash view for an ``num_nodes`` wire.

        Built (and its detection rounds charged under
        ``recovery/detection``, when self-healing) once per distinct
        ``num_nodes``; recovery code must read crash state through this
        view, never from the plan (reprolint R008).  Returns ``None``
        when the run has no crash windows.
        """
        plan = self.fault_plan
        if plan is None or not plan.spec.crashes:
            return None
        view = self._crash_views.get(num_nodes)
        if view is None:
            view = crash_view(plan, num_nodes)
            self._crash_views[num_nodes] = view
            if self.recovery == "self-heal":
                self.charge(
                    "recovery/detection",
                    view.detection_rounds,
                    windows=len(view.windows),
                    num_nodes=num_nodes,
                )
                self.emit(
                    "recovery",
                    "recovery/detection",
                    windows=len(view.windows),
                    num_nodes=num_nodes,
                    rounds=view.detection_rounds,
                )
        return view

    def _emit_fault(self, record: FaultRecord) -> None:
        self.emit(
            "fault",
            f"faults/{record.kind}",
            round=record.round,
            sender=record.sender,
            target=record.target,
            **record.detail,
        )

    # -- tracing -------------------------------------------------------------

    def emit(self, kind: str, name: str, **payload) -> TraceEvent:
        """Emit one trace event to the sink; returns it."""
        event = TraceEvent(
            seq=self._seq, kind=kind, name=name, payload=payload
        )
        self._seq += 1
        self.sink.emit(event)
        if self.record_events:
            self.recorded_events.append(event)
        return event

    @contextmanager
    def phase(self, name: str, **payload) -> Iterator[None]:
        """Bracket a pipeline stage with start/end events + wall time."""
        self.emit("phase_start", name, **payload)
        began = time.perf_counter()  # reprolint: disable=R003 (trace metadata)
        try:
            yield
        finally:
            wall_s = time.perf_counter() - began  # reprolint: disable=R003
            self.emit("phase_end", name, wall_s=round(wall_s, 6), **payload)

    # -- round accounting ----------------------------------------------------

    def charge(self, label: str, rounds: float, **detail) -> None:
        """Charge the run ledger and emit a ``ledger_charge`` event."""
        self.ledger.charge(label, rounds, **detail)
        self.emit("ledger_charge", label, rounds=float(rounds), **detail)

    def absorb_ledger(self, ledger: RoundLedger) -> None:
        """Merge another ledger's charges, emitting one event per charge.

        Used to fold a component-local ledger (e.g. a hierarchy's
        construction ledger) into the run-wide accounting exactly once.
        """
        for charge in ledger.charges:
            self._absorb_charge(charge)

    def _absorb_charge(self, charge: Charge) -> None:
        self.ledger.charge(charge.label, charge.rounds, **charge.detail)
        self.emit(
            "ledger_charge",
            charge.label,
            rounds=float(charge.rounds),
            **charge.detail,
        )

    def close(self) -> None:
        """Close the sink (flushes a JSONL trace file)."""
        self.sink.close()

    def __enter__(self) -> "RunContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- checkpoint support --------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle everything except the sink (file handles don't
        survive a checkpoint; resume re-attaches one and replays
        :attr:`recorded_events`)."""
        state = self.__dict__.copy()
        state["sink"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.sink is None:
            self.sink = NullSink()

    def __repr__(self) -> str:
        return (
            f"RunContext(seed={self.seed}, streams={sorted(self._streams)}, "
            f"ledger={self.ledger!r})"
        )
