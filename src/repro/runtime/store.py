"""Content-addressed cache of built hierarchies (the serve-layer store).

The paper's economics are build-once/serve-many: the expander embedding
costs ``2^O(sqrt(log n))`` rounds and every routed instance afterwards
is nearly free.  This module persists that expensive build so even
*process* restarts amortize it.  A :class:`HierarchyStore` maps a
content key — SHA-256 over everything that determines the built
structure bit for bit — to a snapshot in the PR 5 checkpoint format:

    key = H(code salt, graph fingerprint, seed, params, backend, beta,
            faults, recovery, lineage)

Because the key covers *all* build inputs, a hit can simply adopt the
stored context + backend: same seed and graph means the stored stream
positions, ledger, and hierarchy are exactly what a fresh build would
have produced.  Anything that could change the build without changing
the key must instead bump :data:`CODE_EPOCH` (reviewed in PRs that
touch construction code), which salts every digest.

``lineage`` distinguishes *repaired* sessions: after
``Session.apply_update`` the in-memory structure is no longer a pure
function of (graph, config) — it is a fresh build plus a chain of
incremental repairs — so each update extends the lineage hash and the
session re-persists under the new key.  A fresh build always has the
empty lineage, so repaired state can never shadow a clean build.

Entries are written atomically (temp file + rename into place) and
evicted LRU by file mtime, which doubles as the access clock: loads
touch the file.  A corrupt or stale-format entry is treated as a miss
and deleted, never an error — the cache must only ever make runs
faster, not break them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..graphs.graph import Graph
from ..hashing import FINGERPRINT_VERSION, graph_fingerprint
from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    write_checkpoint,
)

__all__ = [
    "CODE_EPOCH",
    "HierarchyStore",
    "StoreStats",
    "open_store",
    "resolve_cache_root",
    "store_key",
]

#: Manually bumped whenever hierarchy/router construction changes in a
#: way that alters built state for the same inputs.  Part of every
#: cache key, so a new build epoch silently invalidates old entries
#: (they age out via LRU) instead of serving stale structures.
CODE_EPOCH = 1

#: Default maximum number of cached hierarchies per store directory.
DEFAULT_MAX_ENTRIES = 64

_ENV_ROOT = "REPRO_CACHE_DIR"


def resolve_cache_root(cache: Optional[str]) -> Optional[str]:
    """Map a ``RunConfig.cache`` value to a store directory (or None).

    ``"off"`` / ``None`` disable caching; ``"auto"`` uses
    ``$REPRO_CACHE_DIR`` or ``$XDG_CACHE_HOME/repro/hierarchies``
    (falling back to ``~/.cache``); anything else is taken as an
    explicit directory path.
    """
    if cache is None or cache == "off":
        return None
    if cache == "auto":
        root = os.environ.get(_ENV_ROOT)
        if root:
            return root
        xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser(
            "~/.cache"
        )
        return os.path.join(xdg, "repro", "hierarchies")
    return cache


def store_key(graph: Graph, config, lineage: str = "") -> str:
    """The content address of a built hierarchy (64-char hex digest).

    Covers every input the build is a deterministic function of; knobs
    that only change *how* the same state is computed (``validate``,
    ``workers``, ``trace``, ``checkpoint``, ``cache`` itself) are
    deliberately excluded, so e.g. a single-worker and a four-worker
    native build share one entry — they produce identical state.
    """
    params = config.params
    if params is None:
        from ..params import Params

        params = Params.default()
    fault_spec = config.faults
    digest = hashlib.sha256()
    for part in (
        f"store-v{CHECKPOINT_VERSION}.{FINGERPRINT_VERSION}.{CODE_EPOCH}",
        graph_fingerprint(graph),
        f"seed={config.seed}",
        f"backend={config.backend}",
        f"beta={config.beta}",
        "params=" + json.dumps(asdict(params), sort_keys=True),
        "faults=" + (fault_spec.describe() if fault_spec else ""),
        f"recovery={config.recovery}",
        f"lineage={lineage}",
    ):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class StoreStats:
    """Counters for one store's lifetime (observability, not policy)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0


@dataclass
class HierarchyStore:
    """A directory of content-addressed hierarchy snapshots.

    Attributes:
        root: the store directory (created on first write).
        max_entries: LRU eviction threshold (oldest-mtime first).
        stats: hit/miss/eviction counters for this handle.
    """

    root: str
    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: StoreStats = field(default_factory=StoreStats)

    def path_for(self, key: str) -> str:
        """The entry file for ``key`` (may not exist)."""
        return os.path.join(self.root, f"{key}.ckpt")

    def load(self, key: str, graph: Optional[Graph] = None):
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt, stale-format, or wrong-graph entry counts as a miss:
        the file is deleted and ``None`` returned, so cache damage can
        slow a run down but never fail it.  A hit touches the file's
        mtime (the LRU clock).
        """
        path = self.path_for(key)
        if not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            payload = load_checkpoint(path, expect_graph=graph)
        except CheckpointError:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._remove(path)
            return None
        os.utime(path)
        self.stats.hits += 1
        return payload

    def save(self, key: str, *, config, graph, context, backend) -> str:
        """Persist a warm session snapshot under ``key``; returns the
        entry path.  Atomic (checkpoint writer), then LRU-evicts."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(key)
        write_checkpoint(
            path,
            op="session",
            op_args={},
            config=config,
            graph=graph,
            context=context,
            backend=backend,
        )
        self.stats.stores += 1
        self._evict(keep=path)
        return path

    def keys(self) -> list[str]:
        """Keys currently stored, newest access first."""
        return [
            os.path.basename(path)[: -len(".ckpt")]
            for path in self._entries()
        ]

    def clear(self) -> None:
        """Delete every entry (the directory itself stays)."""
        for path in self._entries():
            self._remove(path)

    def __len__(self) -> int:
        return len(self._entries())

    def _entries(self) -> list[str]:
        if not os.path.isdir(self.root):
            return []
        paths = [
            os.path.join(self.root, name)
            for name in os.listdir(self.root)
            if name.endswith(".ckpt")
        ]
        return sorted(paths, key=self._mtime, reverse=True)

    def _evict(self, keep: Optional[str] = None) -> None:
        entries = self._entries()
        while len(entries) > max(1, int(self.max_entries)):
            victim = entries.pop()
            if victim == keep:
                continue
            self._remove(victim)
            self.stats.evictions += 1

    @staticmethod
    def _mtime(path: str) -> float:
        try:
            return os.stat(path).st_mtime
        except OSError:
            return 0.0

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass


def open_store(cache: Optional[str]) -> Optional[HierarchyStore]:
    """A :class:`HierarchyStore` for a ``RunConfig.cache`` value, or
    ``None`` when caching is off."""
    root = resolve_cache_root(cache)
    if root is None:
        return None
    return HierarchyStore(root)
